//! Coordinated arbitration vs. uncoordinated composition, head to head.
//!
//! The same four-application mix runs twice on the calibrated Xeon model
//! under the same machine power budget: once with every application running
//! one independent SEEC instance *per actuator* and nobody watching the cap
//! (§5.2's uncoordinated-composition baseline), and once under a
//! [`Coordinator`] whose performance market splits the budget into per-app
//! power envelopes each quantum. Halfway through, the machine budget
//! *steps down* by a third — rack-level power management the fleet gets no
//! warning about. The uncoordinated machine overshoots the budget most of
//! the run; the coordinated one holds both the original and the cut budget
//! at zero violations while delivering more goal-weighted throughput per
//! watt.
//!
//! Run with: `cargo run --release --example coordinated_vs_uncoordinated`

use angstrom_seec::experiments::fig5::{budget_watts, QUANTUM_SECONDS};
use angstrom_seec::prelude::*;
use angstrom_seec::workloads::{BudgetStep, FaultPlan, Scenario, ScenarioApp};
use angstrom_seec::xeon_sim::XeonServer;

fn main() {
    let server = XeonServer::dell_r410_calibrated();
    let scenario = Scenario {
        name: "example-mix".to_string(),
        apps: vec![
            app(SplashBenchmark::Barnes, 1, 2.0, 0, None),
            app(SplashBenchmark::OceanNonContiguous, 2, 1.0, 0, None),
            app(SplashBenchmark::Raytrace, 3, 1.0, 10, None),
            app(SplashBenchmark::Volrend, 4, 4.0, 0, Some(50)),
        ],
        quanta: 72,
        power_budget_fraction: 0.45,
        budget_steps: vec![BudgetStep {
            quantum: 36,
            fraction: 0.3,
        }],
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };
    println!(
        "four applications, {} quanta of {QUANTUM_SECONDS:.0} s, budget {:.0} W above idle \
         stepping to {:.0} W at quantum 36\n",
        scenario.quanta,
        budget_watts(&server, &scenario),
        scenario.budget_fraction_at(36)
            * (server.max_power_watts() - server.idle_power_watts()),
    );

    // Figure 5's harness runs exactly this comparison; reuse it so the
    // example and the experiment can never disagree.
    let figure =
        angstrom_seec::experiments::Figure5::compute_scenarios(std::slice::from_ref(&scenario), 42);
    let result = &figure.scenarios[0];
    println!("regime                          perf/W   goal attainment  cap violations");
    for arm in [
        &result.uncoordinated,
        &result.per_app_seec,
        &result.coordinated,
    ] {
        println!(
            "{:30}  {:.4}   {:14.1}%  {:12.1}%",
            arm.name,
            arm.performance_per_watt,
            arm.goal_attainment * 100.0,
            arm.cap_violation_rate * 100.0,
        );
    }
    let coordinated = &result.coordinated;
    let uncoordinated = &result.uncoordinated;
    println!(
        "\ncoordinated SEEC delivers {:+.0}% perf/W over uncoordinated composition \
         and cuts cap violations from {:.0}% to {:.0}% of the run",
        (coordinated.performance_per_watt / uncoordinated.performance_per_watt - 1.0) * 100.0,
        uncoordinated.cap_violation_rate * 100.0,
        coordinated.cap_violation_rate * 100.0,
    );
    assert!(coordinated.performance_per_watt > uncoordinated.performance_per_watt);
    assert_eq!(coordinated.cap_violation_rate, 0.0);
}

fn app(
    benchmark: SplashBenchmark,
    seed: u64,
    weight: f64,
    arrival: usize,
    departure: Option<usize>,
) -> ScenarioApp {
    ScenarioApp {
        benchmark,
        seed,
        weight,
        arrival,
        departure,
        target_fraction: 0.5,
        rack: 0,
    }
}
