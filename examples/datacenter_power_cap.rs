//! A power-capped server shared by several applications.
//!
//! The paper's introduction motivates SEEC with systems that must balance
//! performance against competing goals like power efficiency — and its
//! platform vision (§2) has *many* self-aware applications sharing one
//! machine. This example runs three SPLASH-2 workloads concurrently on the
//! calibrated Xeon server model under a machine-level power cap: a
//! [`Coordinator`] arbitrates the cap across the applications every quantum
//! (performance-market policy), each application's SEEC runtime decides
//! under its awarded envelope, and a [`MachineMeter`] audits whether the
//! machine ever exceeded the budget. The uncapped flat-out alternative is
//! shown for comparison.
//!
//! Run with: `cargo run --release --example datacenter_power_cap`

use angstrom_seec::experiments::driver::to_server_demand;
use angstrom_seec::experiments::fig3::{map_configuration, xeon_actuators, CONVEX_PROTOCOL_KI};
use angstrom_seec::prelude::*;
use angstrom_seec::seec::control::PiController;

const QUANTA: usize = 60;
const DT: f64 = 1.0;
const CAP_WATTS: f64 = 55.0;

fn main() {
    let server = XeonServer::dell_r410_calibrated();
    let mixes = [
        (SplashBenchmark::OceanNonContiguous, 2.0),
        (SplashBenchmark::Barnes, 1.0),
        (SplashBenchmark::Volrend, 1.0),
    ];

    let mut coordinator = Coordinator::new(CAP_WATTS, Box::new(PerformanceMarket::default()));
    let mut targets = Vec::new();
    let mut handles = Vec::new();
    let mut flat_out_watts = 0.0;
    for (index, &(benchmark, weight)) in mixes.iter().enumerate() {
        let workload = Workload::new(benchmark, 7 + index as u64);
        let average = to_server_demand(&workload.average_quantum());
        let solo = server.evaluate(&average, &server.default_configuration());
        let target_rate = 0.5 * solo.work_units / solo.seconds;
        let work_per_beat = target_rate * DT / 8.0;
        let launch = ServerConfiguration::new(1, server.pstates().len() - 1, 1.0);
        let launch_watts = server.evaluate(&average, &launch).power_above_idle_watts;
        flat_out_watts += solo.power_above_idle_watts;

        let phases = workload.quanta(QUANTA);
        let driver = HeartbeatedWorkload::with_work_per_beat(workload, work_per_beat);
        driver.set_heart_rate_goal(target_rate / work_per_beat);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(xeon_actuators(&server))
            .anchored_estimation(true)
            .controller(PiController::new(1.0, CONVEX_PROTOCOL_KI, 1.0 / 64.0, 64.0))
            .seed(7 + index as u64)
            .build()
            .expect("actuators registered");
        handles.push(coordinator.register(
            angstrom_seec::coordinator::ManagedApp::new(driver, runtime)
                .with_weight(weight)
                .with_phases(phases)
                .with_nominal_power_hint(launch_watts),
        ));
        targets.push(target_rate);
    }

    let mut meter = MachineMeter::new(CAP_WATTS);
    let mut work_done = vec![0.0f64; handles.len()];
    let mut now = 0.0;
    for quantum in 0..QUANTA {
        let start = now;
        now += DT;
        let mut machine_watts = 0.0;
        for (index, &handle) in handles.iter().enumerate() {
            let demand = coordinator
                .app(handle)
                .demand_at(quantum)
                .expect("phases cover the run")
                .clone();
            let configuration = map_configuration(
                &server,
                coordinator.app(handle).runtime().current_configuration(),
            );
            let report = server.evaluate(&to_server_demand(&demand), &configuration);
            let work = report.work_units / report.seconds * DT;
            coordinator.advance(handle, start, now, work, report.power_above_idle_watts);
            work_done[index] += work;
            machine_watts += report.power_above_idle_watts;
        }
        meter.record(DT, machine_watts);
        coordinator.step(now).expect("goals registered");
    }

    println!("machine cap: {CAP_WATTS:.0} W above idle  (flat out would draw {flat_out_watts:.0} W)");
    println!("policy: {}\n", coordinator.policy_name());
    println!("app        weight  target b/s  achieved b/s  award W  attainment");
    for (index, &handle) in handles.iter().enumerate() {
        let app = coordinator.app(handle);
        let achieved = work_done[index] / (QUANTA as f64 * DT);
        println!(
            "{:9}  {:6.1}  {:10.1}  {:12.1}  {:7.1}  {:9.0}%",
            app.name(),
            app.weight(),
            targets[index],
            achieved,
            app.awarded_watts(),
            (achieved / targets[index]).min(1.0) * 100.0,
        );
    }
    println!(
        "\nmachine: mean {:.1} W, peak {:.1} W, cap violations {:.1}% of time",
        meter.mean_watts(),
        meter.peak_watts(),
        meter.violation_rate() * 100.0,
    );
    assert!(
        !meter.violated(),
        "the coordinator must keep the machine under its power cap"
    );
}
