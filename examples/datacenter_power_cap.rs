//! A power-capped server: meet a throughput goal under an energy budget.
//!
//! The paper's introduction motivates SEEC with systems that must balance
//! performance against competing goals like power efficiency. This example
//! runs the memory-bound `ocean` workload on the Xeon server model and asks
//! SEEC to hold half the maximum throughput while the operator watches the
//! WattsUp-style power meter; the non-adaptive alternative is shown for
//! comparison.
//!
//! Run with: `cargo run --example datacenter_power_cap`

use angstrom_seec::experiments::driver::{run_fixed_on_xeon, to_server_demand};
use angstrom_seec::experiments::fig3::{map_configuration, xeon_actuators};
use angstrom_seec::prelude::*;
use angstrom_seec::seec::SeecRuntime;
use angstrom_seec::xeon_sim::PowerMeter;

fn main() {
    let server = XeonServer::dell_r410();
    let workload = Workload::new(SplashBenchmark::OceanNonContiguous, 7);
    let quanta = workload.quanta(80);

    let max_rate = run_fixed_on_xeon(&server, &quanta, &server.default_configuration()).heart_rate;
    let target = max_rate / 2.0;

    // --- Non-adaptive run: everything at full speed.
    let fixed = run_fixed_on_xeon(&server, &quanta, &server.default_configuration());

    // --- SEEC-managed run.
    let mut app = HeartbeatedWorkload::new(workload);
    app.set_heart_rate_goal(target);
    let mut runtime = SeecRuntime::builder(app.monitor())
        .actuators(xeon_actuators(&server))
        .build()
        .expect("actuators registered");
    let monitor = app.monitor();
    let mut meter = PowerMeter::wattsup();

    let mut now = 0.0;
    let mut seec_energy = 0.0;
    let mut seec_time = 0.0;
    for quantum in &quanta {
        let cfg = map_configuration(&server, runtime.current_configuration());
        let report = server.evaluate(&to_server_demand(quantum), &cfg);
        now += report.seconds;
        seec_energy += report.power_above_idle_watts * report.seconds;
        seec_time += report.seconds;
        meter.record(report.total_power_watts, report.seconds);
        app.advance(now, report.work_units);
        monitor.record_power_sample(now, report.power_above_idle_watts);
        let _ = runtime.decide(now);
    }

    let seec_rate = quanta.iter().map(|q| q.work_units).sum::<f64>() / seec_time;
    println!("target heart rate:          {target:9.1} beats/s");
    println!("non-adaptive: rate {:9.1} beats/s, {:7.1} W above idle", fixed.heart_rate, fixed.power_above_idle_watts);
    println!("SEEC:         rate {:9.1} beats/s, {:7.1} W above idle", seec_rate, seec_energy / seec_time);
    println!(
        "perf/W (capped at target): non-adaptive {:.2}, SEEC {:.2}",
        fixed.performance_per_watt(target),
        seec_rate.min(target) / (seec_energy / seec_time),
    );
    println!(
        "WattsUp meter collected {} one-second samples, mean total power {:.1} W",
        meter.samples().len(),
        meter.mean_power().unwrap_or(0.0),
    );
}
