//! Driving Angstrom's adaptive on-chip network from software.
//!
//! Section 4.2.2 of the paper describes three network adaptations exposed to
//! software: express virtual channels (EVC), bandwidth-adaptive links (BAN),
//! and application-aware oblivious routing (AOR). This example exercises that
//! software interface directly: it builds traffic matrices with different
//! shapes, computes application-aware routing tables, reconfigures the
//! bandwidth allocator, and reports how packet latency responds.
//!
//! Run with: `cargo run --example adaptive_noc_routing`

use angstrom_seec::angstrom_sim::noc::{
    MeshTopology, NocFeatures, NocModel, RoutingTable, TrafficMatrix,
};

fn main() {
    let mesh = MeshTopology::new(16, 16); // the 256-core Angstrom mesh
    let offered_load = 8.0; // flits per cycle injected chip-wide

    println!("256-core mesh, offered load {offered_load} flits/cycle\n");
    println!("traffic    network            latency(cycles)  energy/flit(pJ)");

    for (name, traffic) in [
        ("uniform", TrafficMatrix::uniform(mesh.routers())),
        ("hotspot", TrafficMatrix::hotspot(mesh.routers(), 0, 0.4)),
        ("neighbor", TrafficMatrix::neighbor(mesh.routers())),
    ] {
        for (label, features) in [
            ("baseline", NocFeatures::baseline()),
            ("EVC+BAN+AOR", NocFeatures::default()),
        ] {
            let mut noc = NocModel::new(mesh, features);
            if features.aor {
                // The online AOR computation of §4.2.2: software reads the
                // application's flow demands and installs a routing table.
                noc.install_routing_table(RoutingTable::application_aware(mesh, &traffic));
            }
            if features.ban {
                // Reconfigure the bandwidth allocator: react faster and with
                // less hysteresis for bursty traffic.
                noc.ban
                    .configure(1.0, 32, 0.02)
                    .expect("valid allocator parameters");
            }
            let latency = noc.packet_latency_cycles(4.0, offered_load, &traffic);
            let energy = noc.flit_energy() * 1.0e12;
            println!("{name:9}  {label:17}  {latency:15.1}  {energy:15.2}");
        }
    }

    // Express-route configuration: software pins an express path between two
    // tiles that exchange most of the traffic.
    let mut noc = NocModel::new(mesh, NocFeatures::default());
    let before = noc.zero_load_latency_cycles(4.0);
    noc.evc.set_express_route(0, 255, true);
    let after = noc.zero_load_latency_cycles(4.0);
    println!("\nexpress route 0 -> 255: zero-load latency {before:.1} -> {after:.1} cycles");
}
