//! A video encoder with a frames-per-second goal on the Angstrom chip.
//!
//! The paper's motivating example (§1) is a video encoder that should run at
//! thirty frames per second: the application states the goal, the hardware
//! exposes its adaptations, and SEEC keeps the encoder at 30 fps while using
//! as little power as the chip allows. Here the "encoder" is a synthetic
//! workload whose heartbeat is one frame, running on the 256-core Angstrom
//! model with core-allocation, cache, and DVFS actions.
//!
//! Run with: `cargo run --example video_encoder_qos`

use angstrom_seec::actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
use angstrom_seec::angstrom_sim::chip::{AngstromChip, ChipConfiguration};
use angstrom_seec::angstrom_sim::config::ChipConfig;
use angstrom_seec::angstrom_sim::workload::WorkloadDemand;
use angstrom_seec::heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};
use angstrom_seec::seec::SeecRuntime;
use actuation_helpers::angstrom_actuators;

fn main() {
    let mut chip = AngstromChip::new(ChipConfig::angstrom_256());
    let registry = HeartbeatRegistry::new("video-encoder");
    registry
        .issuer()
        .set_goal(Goal::Performance(PerformanceGoal::heart_rate(30.0)));

    let mut runtime = SeecRuntime::builder(registry.monitor())
        .actuators(angstrom_actuators(chip.config()))
        .build()
        .expect("actuators registered");

    // One frame of encoding work: ~40 M instructions, mostly parallel.
    let frame = WorkloadDemand::builder()
        .instructions(4.0e7)
        .parallel_fraction(0.97)
        .memory_ops_per_instruction(0.3)
        .working_set_bytes(12.0 * 1024.0 * 1024.0)
        .work_units(1.0)
        .build();

    println!("goal: 30 frames/s\n");
    println!("second  cores  cache_kb  v/f  fps(window)  chip_power_w");

    let issuer = registry.issuer();
    let monitor = registry.monitor();
    let mut now = 0.0;
    let mut frames = 0u64;
    let mut last_report_power = 0.0;
    for second in 0..20 {
        // Encode frames for roughly one second of simulated time under the
        // configuration SEEC currently has applied.
        let config = map_to_chip(chip.config(), runtime.current_configuration());
        let second_end = now + 1.0;
        while now < second_end {
            let report = chip.execute(&frame, &config);
            now = chip.now();
            frames += 1;
            issuer.heartbeat(now);
            last_report_power = report.average_power_watts;
        }
        monitor.record_power_sample(now, last_report_power);
        let _ = runtime.decide(now);

        println!(
            "{:6}  {:5}  {:8.0}  {:3}  {:11.1}  {:12.3}",
            second,
            config.cores,
            config.cache_per_core_kb,
            config.operating_point_index,
            monitor.window_heart_rate(),
            last_report_power,
        );
    }
    println!("\nencoded {frames} frames in {:.1} simulated seconds", now);
}

/// Maps a SEEC joint configuration onto the chip configuration type.
fn map_to_chip(
    config: &ChipConfig,
    joint: &angstrom_seec::actuation::Configuration,
) -> ChipConfiguration {
    let cores = config.core_allocation_options[joint.setting(0).unwrap_or(0)];
    let cache = config.cache_capacity_options_kb[joint.setting(1).unwrap_or(0)];
    let op = joint.setting(2).unwrap_or(config.operating_points.len() - 1);
    ChipConfiguration {
        cores,
        cache_per_core_kb: cache,
        operating_point_index: op,
        coherence: config.coherence,
        noc_features: None,
        decision_placement: config.decision_placement,
    }
}

/// Builds SEEC actuator descriptions for the Angstrom chip's knobs.
mod actuation_helpers {
    use super::*;
    use angstrom_seec::actuation::Actuator;

    /// One actuator per Angstrom adaptation: core allocation, cache capacity,
    /// and the voltage/frequency point, with naive declared effects that the
    /// SEEC model corrects online.
    pub fn angstrom_actuators(config: &ChipConfig) -> Vec<Box<dyn Actuator>> {
        let mut cores = ActuatorSpec::builder("cores").scope(angstrom_seec::actuation::Scope::Global);
        let min_cores = config.core_allocation_options[0] as f64;
        for &n in &config.core_allocation_options {
            cores = cores.setting(
                SettingSpec::new(format!("{n} cores"))
                    .effect(Axis::Performance, n as f64 / min_cores)
                    .effect(Axis::Power, n as f64 / min_cores),
            );
        }
        let cores = cores.nominal(0).build().expect("valid spec");

        let mut cache = ActuatorSpec::builder("cache");
        let min_cache = config.cache_capacity_options_kb[0];
        for &kb in &config.cache_capacity_options_kb {
            cache = cache.setting(
                SettingSpec::new(format!("{kb} KB"))
                    .effect(Axis::Performance, 1.0 + 0.05 * (kb / min_cache - 1.0))
                    .effect(Axis::Power, 1.0 + 0.1 * (kb / min_cache - 1.0)),
            );
        }
        let cache = cache.nominal(0).build().expect("valid spec");

        let mut dvfs = ActuatorSpec::builder("dvfs").scope(angstrom_seec::actuation::Scope::Global);
        let min_freq = config.operating_points[0].frequency;
        for point in &config.operating_points {
            let ratio = point.frequency / min_freq;
            dvfs = dvfs.setting(
                SettingSpec::new(format!("{point}"))
                    .effect(Axis::Performance, ratio)
                    .effect(
                        Axis::Power,
                        ratio * (point.voltage / config.operating_points[0].voltage).powi(2),
                    ),
            );
        }
        let dvfs = dvfs.nominal(0).build().expect("valid spec");

        vec![
            Box::new(TableActuator::new(cores)),
            Box::new(TableActuator::new(cache)),
            Box::new(TableActuator::new(dvfs)),
        ]
    }
}
