//! Quickstart: close the observe–decide–act loop around one application.
//!
//! A synthetic `barnes` workload runs on the modelled Xeon server, requests
//! half of its maximum achievable performance through the heartbeat API, and
//! SEEC meets that goal while minimising power using the paper's three
//! actions (cores, clock speed, idle cycles).
//!
//! Run with: `cargo run --example quickstart`

use angstrom_seec::experiments::driver::to_server_demand;
use angstrom_seec::experiments::fig3::{map_configuration, xeon_actuators};
use angstrom_seec::prelude::*;
use angstrom_seec::seec::SeecRuntime;

fn main() {
    let server = XeonServer::dell_r410();
    let workload = Workload::new(SplashBenchmark::Barnes, 42);
    let quanta = workload.quanta(60);

    // Measure the maximum achievable heart rate, then ask for half of it.
    let default_cfg = server.default_configuration();
    let mut max_rate_time = 0.0;
    let mut max_rate_work = 0.0;
    for q in &quanta {
        let r = server.evaluate(&to_server_demand(q), &default_cfg);
        max_rate_time += r.seconds;
        max_rate_work += r.work_units;
    }
    let target = 0.5 * max_rate_work / max_rate_time;

    // Instrument the application and build the SEEC runtime.
    let mut app = HeartbeatedWorkload::new(workload);
    app.set_heart_rate_goal(target);
    let mut runtime = SeecRuntime::builder(app.monitor())
        .actuators(xeon_actuators(&server))
        .build()
        .expect("actuators registered");

    println!("target heart rate: {target:.1} beats/s\n");
    println!("quantum  cores  pstate  duty  heart_rate  power_above_idle");

    let monitor = app.monitor();
    let mut now = 0.0;
    for (i, quantum) in quanta.iter().enumerate() {
        let cfg = map_configuration(&server, runtime.current_configuration());
        let report = server.evaluate(&to_server_demand(quantum), &cfg);
        now += report.seconds;
        app.advance(now, report.work_units);
        monitor.record_power_sample(now, report.power_above_idle_watts);
        let _ = runtime.decide(now);

        if i % 10 == 0 {
            println!(
                "{:7}  {:5}  {:6}  {:4.1}  {:10.1}  {:16.1}",
                i,
                cfg.cores,
                cfg.pstate_index,
                cfg.active_cycle_fraction,
                monitor.window_heart_rate(),
                report.power_above_idle_watts,
            );
        }
    }

    let achieved = monitor.heart_rate().global;
    println!("\nfinal window heart rate: {:.1} beats/s (target {target:.1})", achieved);
    println!("decisions taken: {}", runtime.decisions_made());
}
