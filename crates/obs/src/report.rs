//! Snapshots and the `ObsReport` JSON artifact.
//!
//! An [`ObsSnapshot`] is the plain-data fold of one [`crate::Recorder`];
//! snapshots from per-cell or per-worker recorders merge deterministically
//! (counters add, histogram buckets add, peaks max, events concatenate in
//! merge order — callers merge in cell-index order). A finished snapshot
//! renders an [`ObsReport`], the JSON document the figure binaries write
//! under `--obs`.

use serde::{Deserialize, Serialize};

use crate::event::Event;
use crate::hist::HistogramSnapshot;
use crate::recorder::{Counter, Stage};

/// Plain-data fold of a recorder: counter values (in [`Counter::ALL`]
/// order), stage histograms (in [`Stage::ALL`] order), the peak-fleet
/// gauge, and any buffered events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Counter values, indexed by [`Counter::ALL`] position.
    pub counters: Vec<u64>,
    /// Stage histograms, indexed by [`Stage::ALL`] position.
    pub stages: Vec<HistogramSnapshot>,
    /// Largest fleet size (active apps in one quantum) observed.
    pub peak_fleet_size: u64,
    /// Buffered events, in emission order.
    pub events: Vec<Event>,
}

impl Default for ObsSnapshot {
    fn default() -> Self {
        ObsSnapshot::empty()
    }
}

impl ObsSnapshot {
    /// An all-zero snapshot (the identity for [`Self::merge`]).
    pub fn empty() -> Self {
        ObsSnapshot {
            counters: vec![0; Counter::ALL.len()],
            stages: (0..Stage::ALL.len()).map(|_| HistogramSnapshot::empty()).collect(),
            peak_fleet_size: 0,
            events: Vec::new(),
        }
    }

    /// The value of `counter` in this snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(counter as usize).copied().unwrap_or(0)
    }

    /// The histogram snapshot for `stage`.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// Folds `other` into `self`: counters add, histogram buckets add,
    /// peaks max, and `other`'s events append after `self`'s. Counters and
    /// histograms are order-free; event order is the caller's contract —
    /// merge snapshots in cell-index (or rack-index) order to keep the
    /// combined stream deterministic.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += theirs;
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge(theirs);
        }
        self.peak_fleet_size = self.peak_fleet_size.max(other.peak_fleet_size);
        self.events.extend(other.events.iter().cloned());
    }

    /// Renders the snapshot as the `--obs` JSON artifact.
    pub fn to_report(&self) -> ObsReport {
        ObsReport {
            counters: Counter::ALL
                .iter()
                .map(|&counter| NamedCount {
                    name: counter.name().to_string(),
                    value: self.counter(counter),
                })
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|&stage| {
                    let snap = self.stage(stage);
                    StageReport {
                        name: stage.name().to_string(),
                        count: snap.count,
                        mean_ns: snap.mean_ns(),
                        p50_ns: snap.quantile_ns(0.50),
                        p90_ns: snap.quantile_ns(0.90),
                        p99_ns: snap.quantile_ns(0.99),
                        max_ns: snap.max_ns,
                        buckets: snap.buckets.clone(),
                    }
                })
                .collect(),
            peak_fleet_size: self.peak_fleet_size,
            events: self.events.clone(),
        }
    }
}

/// One named counter value in an [`ObsReport`]. (A vector of these, not a
/// JSON map, so the key order is the fixed [`Counter::ALL`] order.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedCount {
    /// Counter name (see [`Counter::name`]).
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One stage's latency summary in an [`ObsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name (see [`Stage::name`]).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Median latency (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency (bucket upper bound), nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency (bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Largest observed latency, nanoseconds.
    pub max_ns: u64,
    /// Raw bucket counts (fixed boundaries — see
    /// [`crate::hist::bucket_upper_ns`]).
    pub buckets: Vec<u64>,
}

/// The `--obs` JSON artifact: named counters, per-stage latency summaries,
/// the peak fleet gauge, and the structured event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Deterministic counters, in [`Counter::ALL`] order.
    pub counters: Vec<NamedCount>,
    /// Stage latency summaries, in [`Stage::ALL`] order.
    pub stages: Vec<StageReport>,
    /// Largest fleet size observed in one quantum.
    pub peak_fleet_size: u64,
    /// The structured event stream, in deterministic emission order.
    pub events: Vec<Event>,
}

impl ObsReport {
    /// The value of `name` among [`Self::counters`], if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The stage summary called `name`, if present.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::Recorder;

    #[test]
    fn merge_is_counterwise_and_keeps_event_order() {
        let a = Recorder::in_memory();
        a.count(Counter::QuantaStepped);
        a.time(Stage::Step, 10);
        a.emit(Event {
            quantum: 0,
            kind: EventKind::Register { app: "a".into() },
        });
        a.observe_fleet_size(4);
        let b = Recorder::in_memory();
        b.add(Counter::QuantaStepped, 2);
        b.time(Stage::Step, 20);
        b.emit(Event {
            quantum: 1,
            kind: EventKind::Register { app: "b".into() },
        });
        b.observe_fleet_size(9);

        let mut merged = ObsSnapshot::empty();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter(Counter::QuantaStepped), 3);
        assert_eq!(merged.stage(Stage::Step).count, 2);
        assert_eq!(merged.peak_fleet_size, 9);
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].quantum, 0);
        assert_eq!(merged.events[1].quantum, 1);
    }

    #[test]
    fn report_names_every_counter_and_stage() {
        let recorder = Recorder::in_memory();
        recorder.count(Counter::AppsDecided);
        recorder.time(Stage::Decision, 3_000);
        let report = recorder.snapshot().to_report();
        assert_eq!(report.counters.len(), Counter::ALL.len());
        assert_eq!(report.stages.len(), Stage::ALL.len());
        assert_eq!(report.counter("apps_decided"), Some(1));
        assert_eq!(report.counter("quanta_stepped"), Some(0));
        assert_eq!(report.counter("nonexistent"), None);
        let decision = report.stage("decision").unwrap();
        assert_eq!(decision.count, 1);
        assert!(decision.p50_ns >= 2048);
        assert!(report.stage("bogus").is_none());
    }

    #[test]
    fn report_serializes_to_json() {
        let report = Recorder::in_memory().snapshot().to_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("quanta_stepped"));
        assert!(json.contains("datacenter_step"));
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
