//! # Deterministic telemetry for the coordination stack
//!
//! Everything in this workspace is bit-deterministic — the same seed
//! produces the same figures at any worker count — and the telemetry layer
//! must not be the thing that breaks that. This crate therefore splits
//! observability into two strictly separated planes:
//!
//! * **Deterministic facts** — monotonic counters (quanta stepped, apps
//!   observed/decided, awards changed vs held, quarantines, meter
//!   violations by depth), gauges (peak fleet size), histogram *bucket
//!   counts*, and the structured [`Event`] stream. These are functions of
//!   the simulation alone: recorded from deterministic code paths (or as
//!   order-free atomic additions), they are identical run to run and
//!   identical at every worker count.
//! * **Wall-clock timings** — the *values* fed into the latency
//!   [`Histogram`]s (stage latencies, per-decision time, pool dispatch).
//!   These vary run to run like any benchmark; they are never read back by
//!   the simulation, so they cannot perturb results. Histogram bucket
//!   *boundaries* are fixed powers of two, so merging per-worker or
//!   per-cell histograms is associative and the merged shape depends only
//!   on the recorded values, not on merge order.
//!
//! The recording surface is [`Recorder`]: a fixed array of atomic counters,
//! one pre-allocated histogram per [`Stage`], and a [`Sink`] the event
//! stream flows into ([`NullSink`], [`MemorySink`], or [`JsonLinesSink`]).
//! Consumers hold an `Option<Arc<Recorder>>`; the disabled path is a single
//! branch on `None` with no allocation and no `Instant::now()` call, so
//! telemetry costs nothing when off (measured in `BENCH_fig5.json`).
//!
//! A finished run folds its recorders into an [`ObsSnapshot`]
//! (deterministically mergeable: counters add, buckets add, events
//! concatenate in merge order) and renders an [`ObsReport`] — the JSON
//! artifact the `--obs` flag of the figure binaries writes next to every
//! figure/bench/fuzz output.
//!
//! ```
//! use obs::{Counter, Event, EventKind, Recorder, Stage};
//!
//! let recorder = Recorder::in_memory();
//! recorder.count(Counter::QuantaStepped);
//! recorder.time(Stage::Decide, 1_500); // nanoseconds
//! recorder.emit(Event {
//!     quantum: 0,
//!     kind: EventKind::BudgetChange { watts: 50.0 },
//! });
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter(Counter::QuantaStepped), 1);
//! assert_eq!(snapshot.stage(Stage::Decide).count, 1);
//! assert_eq!(snapshot.events.len(), 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod event;
pub mod hist;
pub mod recorder;
pub mod report;

pub use event::{Event, EventKind, JsonLinesSink, MemorySink, NullSink, Sink};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{Counter, Recorder, Stage, StageClock};
pub use report::{NamedCount, ObsReport, ObsSnapshot, StageReport};
