//! The [`Recorder`]: the single recording surface consumers hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, MemorySink, NullSink, Sink};
use crate::hist::Histogram;
use crate::report::ObsSnapshot;

/// The deterministic monotonic counters a [`Recorder`] maintains.
///
/// Every counter is a pure function of the simulation (never of timing or
/// thread interleaving): increments happen either on sequential code paths
/// or as order-free atomic additions whose totals are interleaving-proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Coordinator steps executed (one per rack per quantum in a
    /// hierarchy).
    QuantaStepped,
    /// Applications observed across all steps (present or not — the
    /// observe stage snapshots the whole registered fleet).
    AppsObserved,
    /// Applications that ran a decision under an awarded envelope.
    AppsDecided,
    /// Arbitrations that moved an app's award (bit-for-bit comparison
    /// against the previous quantum's award).
    AwardsChanged,
    /// Arbitrations that left an app's award exactly where it was.
    AwardsHeld,
    /// Applications quarantined by the watchdog for the first time
    /// (matches the `quarantined_apps` figure summaries).
    Quarantines,
    /// Readmissions off the quarantine ladder (each one counted).
    Readmissions,
    /// Machine-level meter intervals above the cap (flat coordinator
    /// depth).
    MachineMeterViolations,
    /// Rack-level meter intervals above the awarded envelope.
    RackMeterViolations,
    /// Datacenter-level meter intervals above the shared budget.
    DatacenterMeterViolations,
    /// Rack-breaker clamp events ([`crate::EventKind::EnvelopeClamp`]).
    ClampEvents,
    /// Scenario-fuzzer probe executions.
    FuzzExecutions,
    /// Fuzz corpus entries successfully reloaded from disk.
    CorpusLoaded,
    /// Fuzz corpus entries rejected as unreadable.
    CorpusRejected,
    /// Applications registered with a coordinator.
    Registrations,
    /// Applications retired from a coordinator.
    Retirements,
    /// Mid-run budget replacements.
    BudgetChanges,
    /// Incremental-path apps whose requests stayed inside the tolerance
    /// and therefore skipped the whole decide quantum.
    AppsSkipped,
    /// Incremental-path apps re-arbitrated (and decided) because their
    /// request moved past the tolerance or a lifecycle/health event marked
    /// them dirty. Disjoint from [`Counter::AppsDecided`], which the full
    /// path counts: `skipped + rearbitrated + decided` sums to
    /// quanta × active fleet regardless of path.
    AppsRearbitrated,
    /// Wake-scheduled apps that slept through the whole quantum — not
    /// observed, not classified, not decided; their held award stood.
    /// Counted once per step from the engine's sleeping-active total, so
    /// `slept + skipped + rearbitrated + decided` partitions every active
    /// app-quantum exactly once on any path.
    AppsSlept,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 20] = [
        Counter::QuantaStepped,
        Counter::AppsObserved,
        Counter::AppsDecided,
        Counter::AwardsChanged,
        Counter::AwardsHeld,
        Counter::Quarantines,
        Counter::Readmissions,
        Counter::MachineMeterViolations,
        Counter::RackMeterViolations,
        Counter::DatacenterMeterViolations,
        Counter::ClampEvents,
        Counter::FuzzExecutions,
        Counter::CorpusLoaded,
        Counter::CorpusRejected,
        Counter::Registrations,
        Counter::Retirements,
        Counter::BudgetChanges,
        Counter::AppsSkipped,
        Counter::AppsRearbitrated,
        Counter::AppsSlept,
    ];

    /// The counter's snake_case report name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::QuantaStepped => "quanta_stepped",
            Counter::AppsObserved => "apps_observed",
            Counter::AppsDecided => "apps_decided",
            Counter::AwardsChanged => "awards_changed",
            Counter::AwardsHeld => "awards_held",
            Counter::Quarantines => "quarantines",
            Counter::Readmissions => "readmissions",
            Counter::MachineMeterViolations => "machine_meter_violations",
            Counter::RackMeterViolations => "rack_meter_violations",
            Counter::DatacenterMeterViolations => "datacenter_meter_violations",
            Counter::ClampEvents => "clamp_events",
            Counter::FuzzExecutions => "fuzz_executions",
            Counter::CorpusLoaded => "corpus_loaded",
            Counter::CorpusRejected => "corpus_rejected",
            Counter::Registrations => "registrations",
            Counter::Retirements => "retirements",
            Counter::BudgetChanges => "budget_changes",
            Counter::AppsSkipped => "apps_skipped",
            Counter::AppsRearbitrated => "apps_rearbitrated",
            Counter::AppsSlept => "apps_slept",
        }
    }
}

/// The latency histograms a [`Recorder`] maintains, one per instrumented
/// pipeline stage. Timings are wall-clock nanoseconds — benchmark data,
/// never fed back into the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Coordinator stage 1: observe the fleet + build requests.
    Observe,
    /// Coordinator stage 2: the sequential arbitration fold (includes the
    /// watchdog pass when enabled).
    Arbitrate,
    /// Coordinator stage 3: decide every present app under its envelope.
    Decide,
    /// Coordinator stage 4: the sequential registration-order summary fold.
    Summarise,
    /// One whole coordinator step (stages 1–4).
    Step,
    /// One application's individual decision call.
    Decision,
    /// One pooled `exec::ExecPool` batch dispatch (publish → last index
    /// done), recorded through the pool's dispatch observer.
    Dispatch,
    /// One whole datacenter step (rack requests → arbitrate → rack steps).
    DatacenterStep,
}

impl Stage {
    /// Every stage, in report order.
    pub const ALL: [Stage; 8] = [
        Stage::Observe,
        Stage::Arbitrate,
        Stage::Decide,
        Stage::Summarise,
        Stage::Step,
        Stage::Decision,
        Stage::Dispatch,
        Stage::DatacenterStep,
    ];

    /// The stage's snake_case report name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Observe => "observe",
            Stage::Arbitrate => "arbitrate",
            Stage::Decide => "decide",
            Stage::Summarise => "summarise",
            Stage::Step => "step",
            Stage::Decision => "decision",
            Stage::Dispatch => "dispatch",
            Stage::DatacenterStep => "datacenter_step",
        }
    }
}

/// A tiny stopwatch for stage timing: created only when a recorder is
/// attached, so the disabled path never calls [`Instant::now`].
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    origin: Instant,
    last: Instant,
}

impl StageClock {
    /// Starts the clock.
    pub fn start() -> Self {
        let now = Instant::now();
        StageClock {
            origin: now,
            last: now,
        }
    }

    /// Nanoseconds since the previous lap (or start), and restarts the lap.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        ns
    }

    /// Nanoseconds since the clock started (laps included).
    pub fn total(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// The recording surface: counters, per-stage histograms, a peak-fleet
/// gauge, and the event sink.
///
/// Consumers hold an `Option<Arc<Recorder>>`; all methods take `&self`
/// (everything inside is atomic or behind the sink's own synchronisation),
/// so one recorder can serve a whole sharded coordinator or a fleet of
/// racks.
pub struct Recorder {
    counters: [AtomicU64; Counter::ALL.len()],
    stages: [Histogram; Stage::ALL.len()],
    peak_fleet: AtomicU64,
    sink: Arc<dyn Sink>,
    /// Kept alongside `sink` when the recorder owns a [`MemorySink`], so
    /// [`Self::snapshot`] can fold the buffered events in.
    memory: Option<Arc<MemorySink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("quanta_stepped", &self.counter(Counter::QuantaStepped))
            .field("peak_fleet", &self.peak_fleet.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::null()
    }
}

impl Recorder {
    fn with_sinks(sink: Arc<dyn Sink>, memory: Option<Arc<MemorySink>>) -> Self {
        Recorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stages: std::array::from_fn(|_| Histogram::new()),
            peak_fleet: AtomicU64::new(0),
            sink,
            memory,
        }
    }

    /// A recorder whose event stream is discarded ([`NullSink`]); counters
    /// and histograms still record. The cheapest enabled configuration —
    /// what the overhead benchmark measures.
    pub fn null() -> Self {
        Recorder::with_sinks(Arc::new(NullSink), None)
    }

    /// A recorder buffering its event stream in memory, so
    /// [`Self::snapshot`] carries the events too.
    pub fn in_memory() -> Self {
        let memory = Arc::new(MemorySink::new());
        Recorder::with_sinks(Arc::<MemorySink>::clone(&memory) as Arc<dyn Sink>, Some(memory))
    }

    /// A recorder streaming events into an arbitrary [`Sink`].
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Recorder::with_sinks(sink, None)
    }

    /// Increments `counter` by one.
    #[inline]
    pub fn count(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `by`.
    #[inline]
    pub fn add(&self, counter: Counter, by: u64) {
        self.counters[counter as usize].fetch_add(by, Ordering::Relaxed);
    }

    /// The current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Records a wall-clock observation of `ns` nanoseconds for `stage`.
    #[inline]
    pub fn time(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record(ns);
    }

    /// The histogram behind `stage`.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Raises the peak-fleet-size gauge to at least `active_apps`.
    #[inline]
    pub fn observe_fleet_size(&self, active_apps: u64) {
        self.peak_fleet.fetch_max(active_apps, Ordering::Relaxed);
    }

    /// The peak fleet size observed so far.
    pub fn peak_fleet_size(&self) -> u64 {
        self.peak_fleet.load(Ordering::Relaxed)
    }

    /// Emits one event into the sink.
    #[inline]
    pub fn emit(&self, event: Event) {
        self.sink.record(&event);
    }

    /// Folds the recorder into a plain-data [`ObsSnapshot`] (buffered
    /// events included when the recorder is [`Self::in_memory`]).
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|counter| counter.load(Ordering::Relaxed))
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|&stage| self.stages[stage as usize].snapshot())
                .collect(),
            peak_fleet_size: self.peak_fleet.load(Ordering::Relaxed),
            events: self.memory.as_ref().map(|sink| sink.events()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn counters_and_gauges_accumulate() {
        let recorder = Recorder::null();
        recorder.count(Counter::QuantaStepped);
        recorder.add(Counter::AppsDecided, 5);
        recorder.observe_fleet_size(10);
        recorder.observe_fleet_size(7);
        assert_eq!(recorder.counter(Counter::QuantaStepped), 1);
        assert_eq!(recorder.counter(Counter::AppsDecided), 5);
        assert_eq!(recorder.counter(Counter::AwardsChanged), 0);
        assert_eq!(recorder.peak_fleet_size(), 10);
        assert!(format!("{recorder:?}").contains("Recorder"));
    }

    #[test]
    fn in_memory_snapshot_carries_events() {
        let recorder = Recorder::in_memory();
        recorder.emit(Event {
            quantum: 3,
            kind: EventKind::Register { app: "fft".into() },
        });
        recorder.time(Stage::Step, 100);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.stage(Stage::Step).count, 1);
        // A null recorder's snapshot has no events even after emits.
        let null = Recorder::null();
        null.emit(Event {
            quantum: 0,
            kind: EventKind::BudgetChange { watts: 1.0 },
        });
        assert!(null.snapshot().events.is_empty());
    }

    #[test]
    fn stage_clock_laps_monotonically() {
        let mut clock = StageClock::start();
        let a = clock.lap();
        let b = clock.lap();
        let total = clock.total();
        assert!(total >= a.saturating_add(b) / 2, "total covers the laps");
    }
}
