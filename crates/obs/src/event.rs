//! The structured event stream and its sinks.
//!
//! Events are the *discrete* facts of a run — lifecycle changes, health
//! transitions, breaker trips, fuzz incidents — stamped with the quantum
//! they happened on. They are emitted only from deterministic contexts:
//! sequential driver code, or per-coordinator buffers drained in
//! registration/rack order after the parallel phases complete (see
//! `coordinator`). The stream on any [`Sink`] is therefore byte-identical
//! run to run and at every worker count.
//!
//! Event payloads are plain strings and numbers, not coordinator types —
//! the telemetry crate sits below everything it observes, so nothing
//! upstream can depend on it cyclically.

use std::io::Write;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// What happened (see variants); stamped into an [`Event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// An application registered with a coordinator.
    Register {
        /// Application name (heartbeat registry name).
        app: String,
    },
    /// An application retired from a coordinator.
    Retire {
        /// Application name.
        app: String,
    },
    /// A coordinator's (or arbiter's) power budget was replaced mid-run.
    BudgetChange {
        /// The new budget, in watts above idle.
        watts: f64,
    },
    /// An application moved on the watchdog's degradation ladder.
    HealthTransition {
        /// Application name.
        app: String,
        /// Registration index within its coordinator.
        index: u64,
        /// Ladder state before the transition (`Debug` form).
        from: String,
        /// Ladder state after the transition.
        to: String,
    },
    /// A rack breaker throttled a report that would overdraw the envelope.
    EnvelopeClamp {
        /// Energy refused by this clamp, in joules.
        shed_joules: f64,
    },
    /// A registration was refused by the admission feasibility pre-check:
    /// the registrant's cheapest-configuration floor exceeded the
    /// remaining cap headroom.
    AdmissionRejected {
        /// Application name.
        app: String,
        /// The registrant's cheapest-configuration power floor, in watts.
        floor_watts: f64,
        /// Cap headroom remaining before this registration, in watts.
        headroom_watts: f64,
    },
    /// The scenario fuzzer raised (or replayed) an incident.
    Incident {
        /// The incident's violation classes, `+`-joined.
        classes: String,
    },
    /// A fuzz corpus file was (re)loaded from disk.
    CorpusLoad {
        /// Entries that parsed and joined the seed pool.
        loaded: u64,
        /// Entries rejected as unreadable.
        rejected: u64,
    },
}

/// One entry of the structured event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The shared quantum index the event is stamped with (iteration index
    /// for fuzzer events).
    pub quantum: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Where the event stream goes. Implementations must be cheap and
/// thread-safe; the deterministic-order guarantee is the *emitter's* job
/// (events reach the sink in a deterministic order by construction).
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
}

/// Discards every event — the zero-cost sink a disabled stream compiles
/// down to.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory, for snapshots and tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("event buffer lock").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event buffer lock").len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("event buffer lock").push(event.clone());
    }
}

/// Streams events to a file as JSON lines (one serialized [`Event`] per
/// line), for tailing long runs.
#[derive(Debug)]
pub struct JsonLinesSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonLinesSink {
    /// Creates (truncating) `path` and streams events into it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut writer = self.writer.lock().expect("jsonl writer lock");
            let _ = writeln!(writer, "{line}");
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_keeps_arrival_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        for quantum in 0..3 {
            sink.record(&Event {
                quantum,
                kind: EventKind::BudgetChange { watts: quantum as f64 },
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].quantum, 2);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn null_sink_discards() {
        NullSink.record(&Event {
            quantum: 0,
            kind: EventKind::Retire { app: "a".into() },
        });
    }

    #[test]
    fn events_serialize_round_trip() {
        let event = Event {
            quantum: 7,
            kind: EventKind::HealthTransition {
                app: "barnes".into(),
                index: 3,
                from: "Healthy".into(),
                to: "Quarantined".into(),
            },
        };
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.contains("Quarantined"));
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join("obs_jsonl_sink_test.jsonl");
        let path = path.to_str().unwrap().to_string();
        let sink = JsonLinesSink::create(&path).unwrap();
        for quantum in 0..2 {
            sink.record(&Event {
                quantum,
                kind: EventKind::Register { app: "fft".into() },
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let _: Event = serde_json::from_str(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
