//! Log-bucketed latency histograms with fixed bucket boundaries.
//!
//! Bucket `i` covers the half-open nanosecond range `[2^(i-1), 2^i)`
//! (bucket 0 holds exactly 0 ns); the last bucket absorbs everything at or
//! above `2^(BUCKETS-2)` ns (~2.3 minutes). The boundaries are compile-time
//! constants, never adapted to the data, so two histograms recorded by
//! different workers — or different figure cells — merge by plain
//! bucket-wise addition and the merged shape is independent of merge order.
//! Quantile summaries are therefore reproducible for a given multiset of
//! recorded values, to bucket resolution.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of buckets: 0 ns, then one power-of-two bucket per bit up to
/// `2^38` ns, with the final bucket open-ended.
pub const BUCKETS: usize = 40;

/// The fixed bucket index for a nanosecond value (see the module docs).
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The *exclusive* upper boundary of bucket `index`, in nanoseconds
/// (`u64::MAX` for the open-ended last bucket). Used as the quantile
/// estimate for values landing in the bucket.
pub fn bucket_upper_ns(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// A thread-safe latency histogram over fixed log2 buckets.
///
/// All fields are atomics with order-free updates (addition and max), so
/// concurrent recording from pool workers yields the same totals as
/// sequential recording — the histogram is deterministic in everything but
/// the wall-clock values themselves.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram (plain data, mergeable).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: bucket counts plus count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKETS`] entries, fixed
    /// boundaries — see [`bucket_upper_ns`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values, in nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded value, in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Folds `other` into `self` bucket-wise. Associative and commutative
    /// in every field, so merge order cannot change the result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The bucket-resolution estimate of quantile `q` in `[0, 1]`: the
    /// upper boundary of the first bucket at which the cumulative count
    /// reaches `ceil(q × count)`. 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                // The open-ended last bucket reports the observed max
                // rather than a meaningless boundary.
                return if index >= BUCKETS - 1 {
                    self.max_ns
                } else {
                    bucket_upper_ns(index)
                };
            }
        }
        self.max_ns
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_fixed_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_ns(0), 0);
        assert_eq!(bucket_upper_ns(1), 2);
        assert_eq!(bucket_upper_ns(10), 1024);
        assert_eq!(bucket_upper_ns(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let hist = Histogram::new();
        for ns in [1u64, 2, 3, 100, 1000] {
            hist.record(ns);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum_ns, 1106);
        assert_eq!(snap.max_ns, 1000);
        // rank ceil(0.5*5)=3 → cumulative reaches 3 in bucket 2 ([2,4)).
        assert_eq!(snap.quantile_ns(0.5), 4);
        assert_eq!(snap.quantile_ns(1.0), 1024);
        assert_eq!(snap.quantile_ns(0.0), 2);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = HistogramSnapshot::empty();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_ns(0.99), 0);
        assert_eq!(snap.mean_ns(), 0.0);
        assert_eq!(snap.buckets.len(), BUCKETS);
    }

    proptest! {
        /// Bucket counts must agree with a naive per-value recompute, and
        /// any split of the values across two histograms must merge to the
        /// same snapshot — the fixed-boundary determinism argument.
        #[test]
        fn bucket_counts_match_naive_recompute(
            values in proptest::collection::vec(0u64..=1u64 << 41, 0..200),
            split in 0usize..200,
        ) {
            let hist = Histogram::new();
            for &ns in &values {
                hist.record(ns);
            }
            let snap = hist.snapshot();

            // Naive recompute of every derived field.
            let mut naive = vec![0u64; BUCKETS];
            for &ns in &values {
                naive[bucket_index(ns)] += 1;
            }
            prop_assert_eq!(&snap.buckets, &naive);
            prop_assert_eq!(snap.count, values.len() as u64);
            prop_assert_eq!(snap.sum_ns, values.iter().sum::<u64>());
            prop_assert_eq!(snap.max_ns, values.iter().copied().max().unwrap_or(0));

            // Any split + merge reproduces the unsplit snapshot exactly.
            let split = split.min(values.len());
            let (left, right) = (Histogram::new(), Histogram::new());
            for &ns in &values[..split] {
                left.record(ns);
            }
            for &ns in &values[split..] {
                right.record(ns);
            }
            let mut merged = left.snapshot();
            merged.merge(&right.snapshot());
            prop_assert_eq!(merged, snap);
        }

        /// The quantile estimate brackets the true quantile: at least the
        /// bucket's lower boundary, and exactly the value's bucket upper
        /// bound for the rank-selected element.
        #[test]
        fn quantile_lands_in_the_right_bucket(
            values in proptest::collection::vec(0u64..=1u64 << 30, 1..100),
            q in 0.0f64..1.0,
        ) {
            let hist = Histogram::new();
            for &ns in &values {
                hist.record(ns);
            }
            let snap = hist.snapshot();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let estimate = snap.quantile_ns(q);
            prop_assert_eq!(estimate, bucket_upper_ns(bucket_index(truth)));
            prop_assert!(estimate >= truth);
        }
    }
}
