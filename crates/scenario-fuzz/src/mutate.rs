//! Mutation strategies over [`Scenario`] specs.
//!
//! Four named strategies, weighted toward small steps:
//!
//! * **nudge** — one small perturbation of one knob (a quantum count, a
//!   budget fraction, one app's arrival/departure/weight/target/rack, one
//!   staircase step).
//! * **swap** — two apps exchange one attribute (weights, residency
//!   windows, racks, or workloads), preserving aggregate load while
//!   re-partitioning it.
//! * **duplicate-app** — clones an app with a fresh workload seed and a
//!   shifted arrival: the cheapest way to grow arrival bursts.
//! * **fault-plan** — edits the scenario's [`workloads::FaultPlan`]:
//!   schedules a fresh fault (stall, crash, freeze, NaN, misreport)
//!   against a random app, perturbs an existing fault's window or factor,
//!   or removes one. The only strategy that grows misbehaviour, so
//!   fault-free corpus entries stay fault-free under the other four.
//! * **havoc** — several random heavy edits at once (field rewrites,
//!   app/step insertion and removal, horizon rewrites, fault edits).
//!
//! Every mutant is clamped to the fuzzer's [`MutationLimits`] and repaired
//! by [`Scenario::sanitize`], so executors only ever see well-formed
//! scenarios; the interesting part of the search happens *inside* the
//! valid envelope, not against spec validation.

use rand::rngs::StdRng;
use rand::Rng;
use workloads::{
    AppFault, BudgetStep, FaultKind, Scenario, SplashBenchmark, MAX_ARBITRATION_TOLERANCE,
    MAX_MISREPORT_FACTOR, MAX_SCENARIO_QUANTA, MAX_SCENARIO_RACKS, MAX_WAKE_HORIZON,
    MAX_WAKE_STEADY_QUANTA, MIN_MISREPORT_FACTOR, MIN_SCENARIO_QUANTA,
};

/// The named mutation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationStrategy {
    /// One small perturbation of one knob.
    Nudge,
    /// Two apps exchange one attribute.
    Swap,
    /// Clone an app with a fresh seed and shifted arrival.
    DuplicateApp,
    /// Schedule, perturb, or remove one fault in the fault plan.
    FaultPlan,
    /// Several random heavy edits at once.
    Havoc,
}

impl MutationStrategy {
    /// Every strategy, in reporting order.
    pub const ALL: [MutationStrategy; 5] = [
        MutationStrategy::Nudge,
        MutationStrategy::Swap,
        MutationStrategy::DuplicateApp,
        MutationStrategy::FaultPlan,
        MutationStrategy::Havoc,
    ];

    /// The strategy's stable name (used in corpus entries and reports).
    pub fn name(self) -> &'static str {
        match self {
            MutationStrategy::Nudge => "nudge",
            MutationStrategy::Swap => "swap",
            MutationStrategy::DuplicateApp => "duplicate-app",
            MutationStrategy::FaultPlan => "fault-plan",
            MutationStrategy::Havoc => "havoc",
        }
    }
}

/// Size ceilings the fuzzer imposes on mutants, independent of the looser
/// [`Scenario::sanitize`] envelope — execution cost scales with both apps
/// and quanta, and a time-boxed fuzz run wants many iterations more than
/// it wants huge ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationLimits {
    /// Most applications a mutant may hold.
    pub max_apps: usize,
    /// Longest horizon (quanta) a mutant may run.
    pub max_quanta: usize,
}

impl Default for MutationLimits {
    fn default() -> Self {
        MutationLimits {
            max_apps: 32,
            max_quanta: 96,
        }
    }
}

/// Applies one randomly chosen strategy to `scenario`, returning the
/// sanitized mutant and the strategy used. Deterministic given `rng`.
pub fn mutate(
    scenario: &Scenario,
    limits: &MutationLimits,
    rng: &mut StdRng,
) -> (Scenario, MutationStrategy) {
    let strategy = match rng.gen_range(0u64..100) {
        0..=34 => MutationStrategy::Nudge,
        35..=54 => MutationStrategy::Swap,
        55..=69 => MutationStrategy::DuplicateApp,
        70..=79 => MutationStrategy::FaultPlan,
        _ => MutationStrategy::Havoc,
    };
    let mut mutant = scenario.clone();
    match strategy {
        MutationStrategy::Nudge => nudge_once(&mut mutant, rng),
        MutationStrategy::Swap => swap(&mut mutant, rng),
        MutationStrategy::DuplicateApp => duplicate_app(&mut mutant, rng),
        MutationStrategy::FaultPlan => mutate_fault_plan(&mut mutant, rng),
        MutationStrategy::Havoc => havoc(&mut mutant, limits, rng),
    }
    clamp(&mut mutant, limits);
    (mutant, strategy)
}

/// Shifts `value` by a uniform offset in `[-span, span]`, clamped at 0.
fn shift(value: usize, span: i64, rng: &mut StdRng) -> usize {
    let delta = rng.gen_range(-span..span + 1);
    (value as i64 + delta).max(0) as usize
}

/// One small perturbation of one knob (shared by nudge and havoc).
fn nudge_once(scenario: &mut Scenario, rng: &mut StdRng) {
    let app_count = scenario.apps.len();
    match rng.gen_range(0u64..10) {
        0 => scenario.quanta = shift(scenario.quanta, 8, rng).max(MIN_SCENARIO_QUANTA),
        1 => scenario.power_budget_fraction *= rng.gen_range(0.75..1.3),
        2 if app_count > 0 => {
            let app = &mut scenario.apps[rng.gen_range(0..app_count)];
            app.arrival = shift(app.arrival, 8, rng);
        }
        3 if app_count > 0 => {
            let quanta = scenario.quanta;
            let app = &mut scenario.apps[rng.gen_range(0..app_count)];
            app.departure = match app.departure {
                // Mostly shift the window end; sometimes make it resident.
                Some(d) if !rng.gen_bool(0.25) => Some(shift(d, 8, rng)),
                Some(_) => None,
                None => Some(app.arrival + 1 + rng.gen_range(0..quanta)),
            };
        }
        4 if app_count > 0 => {
            let app = &mut scenario.apps[rng.gen_range(0..app_count)];
            app.weight *= rng.gen_range(0.5..2.0);
        }
        5 if app_count > 0 => {
            let app = &mut scenario.apps[rng.gen_range(0..app_count)];
            app.target_fraction *= rng.gen_range(0.5..2.0);
        }
        6 if app_count > 0 => {
            let app = &mut scenario.apps[rng.gen_range(0..app_count)];
            app.rack = rng.gen_range(0..MAX_SCENARIO_RACKS);
        }
        8 => {
            // Turn the incremental-arbitration knob: mostly pick a fresh
            // tolerance, sometimes snap it back to the legacy full path so
            // tolerance-0 corpus entries keep their omitted-field bytes.
            scenario.arbitration_tolerance = if rng.gen_bool(0.3) {
                0.0
            } else {
                rng.gen_range(0.0..MAX_ARBITRATION_TOLERANCE)
            };
        }
        9 => {
            // Turn the wake-scheduler pair: mostly draw a fresh horizon
            // and steady streak — switching the tolerance on alongside
            // when it is zero, since the scheduler rides on the
            // incremental engine — and sometimes snap the scheduler off
            // so knob-off corpus entries keep their omitted-field bytes.
            if rng.gen_bool(0.3) {
                scenario.wake_horizon = 0;
                scenario.wake_steady_quanta = 0;
            } else {
                scenario.wake_horizon = rng.gen_range(1..MAX_WAKE_HORIZON + 1);
                scenario.wake_steady_quanta = rng.gen_range(1..MAX_WAKE_STEADY_QUANTA + 1);
                if scenario.arbitration_tolerance == 0.0 {
                    scenario.arbitration_tolerance =
                        rng.gen_range(0.01..MAX_ARBITRATION_TOLERANCE);
                }
            }
        }
        7 => {
            let quanta = scenario.quanta;
            if scenario.budget_steps.is_empty() || rng.gen_bool(0.3) {
                scenario.budget_steps.push(BudgetStep {
                    quantum: rng.gen_range(0..quanta),
                    fraction: rng.gen_range(0.05..1.0),
                });
            } else {
                let step_count = scenario.budget_steps.len();
                let step = &mut scenario.budget_steps[rng.gen_range(0..step_count)];
                if rng.gen_bool(0.5) {
                    step.fraction = rng.gen_range(0.05..1.0);
                } else {
                    step.quantum = shift(step.quantum, 8, rng);
                }
            }
        }
        // An app-targeting knob on an app-less scenario: nothing to do.
        _ => {}
    }
}

/// Two apps exchange one attribute. Falls back to a nudge when the
/// scenario has fewer than two apps.
fn swap(scenario: &mut Scenario, rng: &mut StdRng) {
    let app_count = scenario.apps.len();
    if app_count < 2 {
        nudge_once(scenario, rng);
        return;
    }
    let i = rng.gen_range(0..app_count);
    let mut j = rng.gen_range(0..app_count - 1);
    if j >= i {
        j += 1;
    }
    match rng.gen_range(0u64..4) {
        0 => {
            let weight = scenario.apps[i].weight;
            scenario.apps[i].weight = scenario.apps[j].weight;
            scenario.apps[j].weight = weight;
        }
        1 => {
            let window = (scenario.apps[i].arrival, scenario.apps[i].departure);
            scenario.apps[i].arrival = scenario.apps[j].arrival;
            scenario.apps[i].departure = scenario.apps[j].departure;
            scenario.apps[j].arrival = window.0;
            scenario.apps[j].departure = window.1;
        }
        2 => {
            let rack = scenario.apps[i].rack;
            scenario.apps[i].rack = scenario.apps[j].rack;
            scenario.apps[j].rack = rack;
        }
        _ => {
            let workload = (scenario.apps[i].benchmark, scenario.apps[i].seed);
            scenario.apps[i].benchmark = scenario.apps[j].benchmark;
            scenario.apps[i].seed = scenario.apps[j].seed;
            scenario.apps[j].benchmark = workload.0;
            scenario.apps[j].seed = workload.1;
        }
    }
}

/// Clones a random app with a fresh workload seed and a shifted arrival.
/// Falls back to a nudge on an app-less scenario.
fn duplicate_app(scenario: &mut Scenario, rng: &mut StdRng) {
    let app_count = scenario.apps.len();
    if app_count == 0 {
        nudge_once(scenario, rng);
        return;
    }
    let mut clone = scenario.apps[rng.gen_range(0..app_count)];
    clone.seed = rng.next_u64();
    clone.arrival += rng.gen_range(0..scenario.quanta / 4 + 1);
    scenario.apps.push(clone);
}

/// Draws a random fault kind (factor drawn inside the sanitized band, both
/// under- and over-reports).
fn random_fault_kind(rng: &mut StdRng) -> FaultKind {
    match rng.gen_range(0u64..5) {
        0 => FaultKind::StallHeartbeats,
        1 => FaultKind::FreezeTelemetry,
        2 => FaultKind::NonFiniteTelemetry,
        3 => FaultKind::MisreportPower {
            factor: rng.gen_range(MIN_MISREPORT_FACTOR..MAX_MISREPORT_FACTOR),
        },
        _ => FaultKind::Crash,
    }
}

/// Schedules a fresh fault, perturbs an existing one (window bounds,
/// misreport factor, kind, or target app), or removes one. Scheduling is
/// the most likely edit so fault plans *grow* under fuzzing pressure;
/// [`Scenario::sanitize`] clamps whatever this produces back into the
/// well-formed envelope. Falls back to a nudge on an app-less scenario.
fn mutate_fault_plan(scenario: &mut Scenario, rng: &mut StdRng) {
    let app_count = scenario.apps.len();
    if app_count == 0 {
        nudge_once(scenario, rng);
        return;
    }
    let quanta = scenario.quanta;
    let fault_count = scenario.fault_plan.faults.len();
    match rng.gen_range(0u64..4) {
        // Schedule a fresh fault with a random onset; half the time it
        // clears mid-run (the recovery/readmission path needs `until`).
        0 | 1 => {
            let from = rng.gen_range(0..quanta);
            scenario.fault_plan.faults.push(AppFault {
                app: rng.gen_range(0..app_count),
                kind: random_fault_kind(rng),
                from,
                until: rng.gen_bool(0.5).then(|| from + 1 + rng.gen_range(0..quanta)),
            });
        }
        2 if fault_count > 0 => {
            let fault = &mut scenario.fault_plan.faults[rng.gen_range(0..fault_count)];
            match rng.gen_range(0u64..4) {
                0 => fault.from = shift(fault.from, 8, rng),
                1 => {
                    fault.until = match fault.until {
                        Some(u) if !rng.gen_bool(0.25) => Some(shift(u, 8, rng)),
                        Some(_) => None,
                        None => Some(fault.from + 1 + rng.gen_range(0..quanta)),
                    }
                }
                2 => fault.kind = random_fault_kind(rng),
                _ => fault.app = rng.gen_range(0..app_count),
            }
        }
        3 if fault_count > 0 => {
            scenario
                .fault_plan
                .faults
                .remove(rng.gen_range(0..fault_count));
        }
        // Perturb/remove on an empty plan: schedule instead.
        _ => {
            let from = rng.gen_range(0..quanta);
            scenario.fault_plan.faults.push(AppFault {
                app: rng.gen_range(0..app_count),
                kind: random_fault_kind(rng),
                from,
                until: None,
            });
        }
    }
}

/// Several random heavy edits at once.
fn havoc(scenario: &mut Scenario, limits: &MutationLimits, rng: &mut StdRng) {
    let edits = 2 + rng.gen_range(0u64..6);
    for _ in 0..edits {
        match rng.gen_range(0u64..13) {
            0..=6 => nudge_once(scenario, rng),
            7 => {
                if scenario.apps.len() > 1 {
                    let index = rng.gen_range(0..scenario.apps.len());
                    scenario.apps.remove(index);
                }
            }
            8 => duplicate_app(scenario, rng),
            9 => {
                scenario.quanta =
                    rng.gen_range(MIN_SCENARIO_QUANTA..limits.max_quanta.max(MIN_SCENARIO_QUANTA) + 1)
            }
            10 if !scenario.apps.is_empty() => {
                // Rewrite one app wholesale.
                let quanta = scenario.quanta;
                let app_count = scenario.apps.len();
                let app = &mut scenario.apps[rng.gen_range(0..app_count)];
                app.benchmark =
                    SplashBenchmark::ALL[rng.gen_range(0..SplashBenchmark::ALL.len())];
                app.seed = rng.next_u64();
                app.weight = rng.gen_range(0.1..8.0);
                app.target_fraction = rng.gen_range(0.05..1.0);
                app.arrival = rng.gen_range(0..quanta);
                app.departure = rng
                    .gen_bool(0.5)
                    .then(|| rng.gen_range(0..quanta * 2));
            }
            11 => mutate_fault_plan(scenario, rng),
            _ => {
                if !scenario.budget_steps.is_empty() {
                    let index = rng.gen_range(0..scenario.budget_steps.len());
                    scenario.budget_steps.remove(index);
                }
            }
        }
    }
}

/// Clamps a mutant to the fuzzer's size ceilings, then repairs it into the
/// well-formed envelope.
fn clamp(scenario: &mut Scenario, limits: &MutationLimits) {
    scenario.apps.truncate(limits.max_apps.max(1));
    scenario.quanta = scenario
        .quanta
        .min(limits.max_quanta)
        .clamp(MIN_SCENARIO_QUANTA, MAX_SCENARIO_QUANTA);
    scenario.sanitize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seed_scenario() -> Scenario {
        workloads::vocabulary_mixes(7).swap_remove(1) // the flash-crowd mix
    }

    #[test]
    fn mutants_are_always_well_formed_and_within_limits() {
        let limits = MutationLimits::default();
        let seed = seed_scenario();
        let mut rng = StdRng::seed_from_u64(99);
        let mut scenario = seed.clone();
        for _ in 0..500 {
            let (mutant, _) = mutate(&scenario, &limits, &mut rng);
            assert!(mutant.is_well_formed(), "mutant left the envelope: {mutant:?}");
            assert!(mutant.apps.len() <= limits.max_apps);
            assert!(mutant.quanta <= limits.max_quanta);
            scenario = mutant;
        }
    }

    #[test]
    fn mutation_is_deterministic_per_rng_seed() {
        let limits = MutationLimits::default();
        let seed = seed_scenario();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(mutate(&seed, &limits, &mut a), mutate(&seed, &limits, &mut b));
        }
    }

    #[test]
    fn every_strategy_is_reachable() {
        let limits = MutationLimits::default();
        let seed = seed_scenario();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let (_, strategy) = mutate(&seed, &limits, &mut rng);
            let index = MutationStrategy::ALL
                .iter()
                .position(|&s| s == strategy)
                .unwrap();
            seen[index] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all strategies drawn: {seen:?}");
    }

    #[test]
    fn only_fault_strategies_touch_the_fault_plan() {
        // Fault-free corpus entries must stay fault-free unless the
        // fault-plan (or havoc) strategy fires — the byte-identity of the
        // pre-fault corpus depends on plans staying absent.
        let limits = MutationLimits::default();
        let seed = seed_scenario();
        assert!(seed.fault_plan.is_empty());
        let mut rng = StdRng::seed_from_u64(11);
        let mut grown = false;
        for _ in 0..500 {
            let (mutant, strategy) = mutate(&seed, &limits, &mut rng);
            if !mutant.fault_plan.is_empty() {
                grown = true;
                assert!(
                    strategy == MutationStrategy::FaultPlan
                        || strategy == MutationStrategy::Havoc,
                    "{} must not grow faults",
                    strategy.name()
                );
            }
        }
        assert!(grown, "the fault-plan strategy never scheduled a fault");
    }

    #[test]
    fn the_tolerance_knob_is_reachable_and_stays_in_band() {
        let limits = MutationLimits::default();
        let seed = seed_scenario();
        assert_eq!(seed.arbitration_tolerance, 0.0);
        let mut rng = StdRng::seed_from_u64(41);
        let mut scenario = seed;
        let mut turned = false;
        let mut reset = false;
        for _ in 0..600 {
            let (mutant, _) = mutate(&scenario, &limits, &mut rng);
            assert!(
                (0.0..=MAX_ARBITRATION_TOLERANCE).contains(&mutant.arbitration_tolerance),
                "tolerance left the band: {}",
                mutant.arbitration_tolerance
            );
            if mutant.arbitration_tolerance > 0.0 {
                turned = true;
            } else if scenario.arbitration_tolerance > 0.0 {
                reset = true;
            }
            scenario = mutant;
        }
        assert!(turned, "the tolerance knob never turned");
        assert!(reset, "the tolerance knob never snapped back to zero");
    }

    #[test]
    fn the_wake_knobs_are_reachable_and_stay_canonical() {
        let limits = MutationLimits::default();
        let seed = seed_scenario();
        assert_eq!((seed.wake_horizon, seed.wake_steady_quanta), (0, 0));
        let mut rng = StdRng::seed_from_u64(61);
        let mut scenario = seed;
        let mut turned = false;
        let mut reset = false;
        for _ in 0..800 {
            let (mutant, _) = mutate(&scenario, &limits, &mut rng);
            assert!(mutant.wake_horizon <= MAX_WAKE_HORIZON);
            if mutant.wake_horizon > 0 {
                // An enabled scheduler always has an engine to ride on and
                // a real steady threshold (sanitize's canonical pair).
                assert!(mutant.arbitration_tolerance > 0.0, "{mutant:?}");
                assert!(
                    (1..=MAX_WAKE_STEADY_QUANTA).contains(&mutant.wake_steady_quanta),
                    "{mutant:?}"
                );
                turned = true;
            } else {
                assert_eq!(mutant.wake_steady_quanta, 0, "{mutant:?}");
                if scenario.wake_horizon > 0 {
                    reset = true;
                }
            }
            scenario = mutant;
        }
        assert!(turned, "the wake knobs never turned");
        assert!(reset, "the wake knobs never snapped back off");
    }

    #[test]
    fn fault_plan_mutants_eventually_cover_every_fault_kind() {
        let limits = MutationLimits::default();
        let mut scenario = seed_scenario();
        let mut rng = StdRng::seed_from_u64(23);
        let mut stalls = 0usize;
        let mut freezes = 0usize;
        let mut nans = 0usize;
        let mut misreports = 0usize;
        let mut crashes = 0usize;
        for _ in 0..400 {
            let (mutant, _) = mutate(&scenario, &limits, &mut rng);
            for fault in &mutant.fault_plan.faults {
                match fault.kind {
                    workloads::FaultKind::StallHeartbeats => stalls += 1,
                    workloads::FaultKind::FreezeTelemetry => freezes += 1,
                    workloads::FaultKind::NonFiniteTelemetry => nans += 1,
                    workloads::FaultKind::MisreportPower { factor } => {
                        assert!((MIN_MISREPORT_FACTOR..=MAX_MISREPORT_FACTOR).contains(&factor));
                        misreports += 1;
                    }
                    workloads::FaultKind::Crash => crashes += 1,
                }
            }
            scenario = mutant;
        }
        assert!(
            stalls > 0 && freezes > 0 && nans > 0 && misreports > 0 && crashes > 0,
            "kinds drawn: stall={stalls} freeze={freezes} nan={nans} misreport={misreports} crash={crashes}"
        );
    }
}
