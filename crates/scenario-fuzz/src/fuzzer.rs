//! The coverage-guided fuzzing loop and its machine-readable report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use workloads::Scenario;

use coordinator::invariants::InvariantViolation;

use crate::corpus::{Corpus, CorpusEntry};
use crate::mutate::{mutate, MutationLimits, MutationStrategy};
use crate::outcome::ScenarioOutcome;
use crate::shrink::shrink_incident;
use crate::signature::BehaviorSignature;

/// The workspace's seed-mixing constant (same golden-ratio multiplier the
/// experiment cells use to derive per-cell seeds).
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration of one fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Run seed; with the iteration index it fully determines every
    /// mutation drawn.
    pub seed: u64,
    /// Mutation iterations (executions are higher: seeds + shrinking).
    pub iterations: u64,
    /// Mutant size ceilings.
    pub limits: MutationLimits,
    /// Execution budget per incident shrink (0 disables shrinking).
    pub shrink_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 2012,
            iterations: 64,
            limits: MutationLimits::default(),
            shrink_budget: 200,
        }
    }
}

/// One discovered-and-shrunk incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Sorted incident labels that define the class
    /// ([`ScenarioOutcome::incident_labels`]).
    pub classes: Vec<String>,
    /// The shrunk reproducer.
    pub scenario: Scenario,
    /// The violations the shrunk reproducer triggers.
    pub violations: Vec<InvariantViolation>,
    /// The full outcome of the shrunk reproducer's execution.
    pub outcome: ScenarioOutcome,
    /// The mutation strategy that found the original incident (`None`
    /// when a seed scenario already violated).
    pub strategy: Option<String>,
    /// The fuzz iteration of discovery (`None` for seed scenarios).
    pub iteration: Option<u64>,
    /// Apps in the scenario as discovered, before shrinking.
    pub found_apps: usize,
    /// Horizon of the scenario as discovered, before shrinking.
    pub found_quanta: usize,
    /// Candidate executions the shrinker spent.
    pub shrink_executions: u64,
}

/// Per-strategy effectiveness counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyStat {
    /// Strategy name ([`MutationStrategy::name`]).
    pub name: String,
    /// Mutants drawn with this strategy.
    pub attempts: u64,
    /// Mutants that earned a corpus slot.
    pub admitted: u64,
}

/// The machine-readable result of one fuzz run. Deterministic for a given
/// `(seeds, config, executor)` triple — no timestamps, no host state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Run seed ([`FuzzConfig::seed`]).
    pub seed: u64,
    /// Mutation iterations performed.
    pub iterations: u64,
    /// Total scenario executions (seeds + mutants + shrink candidates).
    pub executions: u64,
    /// Corpus entries at the end of the run.
    pub corpus_size: usize,
    /// Sorted signature keys the corpus covers.
    pub signatures: Vec<String>,
    /// Per-strategy effectiveness, in [`MutationStrategy::ALL`] order.
    pub strategies: Vec<StrategyStat>,
    /// Discovered incidents (one per distinct class set), discovery order.
    pub incidents: Vec<Incident>,
}

/// Runs one coverage-guided fuzz campaign.
///
/// `seeds` are sanitized, executed, and admitted first (they are the
/// mutation ancestors); then `config.iterations` mutants are drawn, each
/// from an RNG seeded by `(config.seed, iteration)` so any iteration is
/// reproducible in isolation. Executions that violate an invariant are
/// incidents; the first execution of each distinct class set is shrunk
/// ([`shrink_incident`]) and recorded.
pub fn fuzz<E>(config: &FuzzConfig, seeds: &[Scenario], executor: &mut E) -> (Corpus, FuzzReport)
where
    E: FnMut(&Scenario) -> ScenarioOutcome,
{
    let mut corpus = Corpus::default();
    let mut executions = 0u64;
    let mut incidents: Vec<Incident> = Vec::new();
    let mut seen_classes: Vec<Vec<String>> = Vec::new();
    let mut attempts = [0u64; MutationStrategy::ALL.len()];
    let mut admitted = [0u64; MutationStrategy::ALL.len()];

    let record_incident = |scenario: &Scenario,
                               outcome: &ScenarioOutcome,
                               strategy: Option<MutationStrategy>,
                               iteration: Option<u64>,
                               executions: &mut u64,
                               incidents: &mut Vec<Incident>,
                               seen_classes: &mut Vec<Vec<String>>,
                               executor: &mut E| {
        let classes = outcome.incident_labels();
        if classes.is_empty() || seen_classes.contains(&classes) {
            return;
        }
        seen_classes.push(classes.clone());
        let (shrunk, shrink_executions) =
            shrink_incident(scenario, &classes, config.shrink_budget, executor);
        // One confirmation run captures the shrunk reproducer's own
        // violations and outcome for the report.
        let confirmed = executor(&shrunk);
        *executions += shrink_executions + 1;
        incidents.push(Incident {
            classes,
            violations: confirmed.violations.clone(),
            outcome: confirmed,
            scenario: shrunk,
            strategy: strategy.map(|s| s.name().to_string()),
            iteration,
            found_apps: scenario.apps.len(),
            found_quanta: scenario.quanta,
            shrink_executions,
        });
    };

    // ---- Seed phase: the hand-written and vocabulary mixes come first.
    for seed_scenario in seeds {
        let mut scenario = seed_scenario.clone();
        scenario.apps.truncate(config.limits.max_apps.max(1));
        scenario.quanta = scenario.quanta.min(config.limits.max_quanta);
        scenario.sanitize();
        let outcome = executor(&scenario);
        executions += 1;
        record_incident(
            &scenario,
            &outcome,
            None,
            None,
            &mut executions,
            &mut incidents,
            &mut seen_classes,
            executor,
        );
        corpus.admit(CorpusEntry {
            signature: BehaviorSignature::of(&outcome),
            scenario,
            strategy: None,
            parent: None,
            iteration: None,
        });
    }
    assert!(!corpus.is_empty(), "fuzzing needs at least one seed scenario");

    // ---- Mutation phase.
    for iteration in 0..config.iterations {
        let mut rng =
            StdRng::seed_from_u64(config.seed.wrapping_mul(SEED_MIX).wrapping_add(iteration + 1));
        let parent = rng.gen_range(0..corpus.len() as u64) as usize;
        let (mutant, strategy) = mutate(&corpus.entries[parent].scenario, &config.limits, &mut rng);
        let strategy_index = MutationStrategy::ALL
            .iter()
            .position(|&s| s == strategy)
            .expect("strategy is listed");
        attempts[strategy_index] += 1;
        if mutant == corpus.entries[parent].scenario {
            continue; // no-op mutation: nothing new to execute
        }
        let outcome = executor(&mutant);
        executions += 1;
        record_incident(
            &mutant,
            &outcome,
            Some(strategy),
            Some(iteration),
            &mut executions,
            &mut incidents,
            &mut seen_classes,
            executor,
        );
        let kept = corpus.admit(CorpusEntry {
            signature: BehaviorSignature::of(&outcome),
            scenario: mutant,
            strategy: Some(strategy.name().to_string()),
            parent: Some(parent),
            iteration: Some(iteration),
        });
        if kept {
            admitted[strategy_index] += 1;
        }
    }

    let strategies = MutationStrategy::ALL
        .iter()
        .enumerate()
        .map(|(index, strategy)| StrategyStat {
            name: strategy.name().to_string(),
            attempts: attempts[index],
            admitted: admitted[index],
        })
        .collect();
    let report = FuzzReport {
        seed: config.seed,
        iterations: config.iterations,
        executions,
        corpus_size: corpus.len(),
        signatures: corpus.signature_keys(),
        strategies,
        incidents,
    };
    (corpus, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::PolicyPathCounters;

    /// A synthetic probe: deterministic, cheap, with one plantable defect.
    /// Every generated seed mix keeps weights at or below the 4.0 priority
    /// tier, so the defect (an app heavier than 5) is reachable only by
    /// mutation — exactly the discovery path the fuzzer must prove out.
    fn toy_executor(scenario: &Scenario) -> ScenarioOutcome {
        let total_weight: f64 = scenario.apps.iter().map(|app| app.weight).sum();
        let violations = if scenario.apps.iter().any(|app| app.weight > 5.0) {
            vec![InvariantViolation::CapViolation {
                meter: "machine".to_string(),
                fraction: 0.5,
                limit: 0.0,
            }]
        } else {
            Vec::new()
        };
        let quanta = scenario.quanta as u64;
        ScenarioOutcome {
            violations,
            counters: PolicyPathCounters {
                decisions: quanta * scenario.apps.len() as u64,
                goal_met: quanta * scenario.apps.len() as u64 / 2,
                goal_unknown: quanta,
                budget_steps: scenario.budget_steps.len() as u64,
                ..PolicyPathCounters::default()
            },
            apps: scenario.apps.len(),
            racks: scenario.rack_count(),
            cap_violation_fraction: (total_weight / 48.0).min(1.0),
            mean_attainment: (24.0 / total_weight.max(1.0)).min(1.0),
            perf_per_watt: 0.01,
            baseline_perf_per_watt: 0.008,
        }
    }

    fn run(seed: u64) -> (Corpus, FuzzReport) {
        let config = FuzzConfig {
            seed,
            iterations: 120,
            ..FuzzConfig::default()
        };
        let seeds = workloads::vocabulary_mixes(seed);
        fuzz(&config, &seeds, &mut toy_executor)
    }

    #[test]
    fn same_seed_and_budget_give_byte_identical_corpus_and_report() {
        let (corpus_a, report_a) = run(2012);
        let (corpus_b, report_b) = run(2012);
        assert_eq!(corpus_a, corpus_b);
        assert_eq!(report_a, report_b);
        assert_eq!(
            serde_json::to_string(&report_a).unwrap(),
            serde_json::to_string(&report_b).unwrap()
        );

        let (_, report_c) = run(2013);
        assert_ne!(report_a, report_c, "different run seeds must explore differently");
    }

    #[test]
    fn coverage_grows_and_incidents_are_discovered_and_shrunk() {
        let (corpus, report) = run(2012);
        assert!(
            corpus.len() > workloads::vocabulary_mixes(2012).len(),
            "mutation must add coverage beyond the seeds"
        );
        assert_eq!(report.corpus_size, corpus.len());
        assert_eq!(report.signatures.len(), corpus.len());
        assert!(report.executions >= report.iterations);

        // The planted defect (one app heavier than weight 5) is reachable
        // only by mutation from the vocabulary seeds (all tiers are ≤ 4)
        // and must be found and shrunk to its 1-app minimal form.
        let incident = report
            .incidents
            .iter()
            .find(|incident| incident.classes == vec!["cap_violation:machine".to_string()])
            .expect("the planted over-weight defect is discovered");
        assert!(incident.iteration.is_some(), "found by mutation, not a seed");
        assert!(incident.found_apps >= incident.scenario.apps.len());
        assert!(!incident.violations.is_empty());
        assert_eq!(incident.scenario.apps.len(), 1, "one heavy app suffices");
        assert!(incident.scenario.apps[0].weight > 5.0);
        assert!(incident.scenario.budget_steps.is_empty());
        assert_eq!(
            incident.scenario.quanta,
            workloads::MIN_SCENARIO_QUANTA,
            "the horizon is irrelevant to this defect and shrinks to the floor"
        );
    }

    #[test]
    fn json_report_round_trips() {
        let (_, report) = run(5);
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: FuzzReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
