//! # Coverage-guided scenario fuzzing
//!
//! The multi-application experiments ([`workloads::Scenario`]) are only as
//! trustworthy as the scenarios someone thought to write down. This crate
//! searches the scenario space adversarially: it mutates scenario specs
//! (arrival/departure quanta, priority weights, budget staircases, rack
//! partitions, app counts), executes each mutant through a caller-supplied
//! probe, and keeps the mutants whose *behavior* — not spec — is new.
//!
//! The pieces, in pipeline order:
//!
//! * [`mod@mutate`] — named mutation strategies (`nudge`, `swap`,
//!   `duplicate-app`, `havoc`) over [`workloads::Scenario`], every mutant
//!   repaired into the well-formed envelope by
//!   [`workloads::Scenario::sanitize`].
//! * An executor: any `FnMut(&Scenario) -> ScenarioOutcome`. The crate
//!   never simulates anything itself, so the same fuzzer runs against the
//!   full Xeon pipeline (the `experiments` crate's probe) or against the
//!   cheap synthetic executors the tests here use. The outcome carries the
//!   [`coordinator::invariants`] violations the probe observed — the
//!   oracle layer is shared with the proptest suites, so the fuzzer and
//!   the property pins cannot drift apart.
//! * [`signature`] — executions are fingerprinted by a coarse behavior
//!   signature (violation classes, policy-path deciles, fleet-size
//!   bucket); a mutant earns a [`corpus`] slot only when its signature is
//!   new. This is the splax-style coverage feedback, with behavior
//!   signatures standing in for branch coverage.
//! * [`shrink`] — when an execution violates an invariant, a deterministic
//!   shrinker minimises the scenario (drop apps, flatten budget steps,
//!   shorten the horizon) while the same incident classes still reproduce,
//!   yielding the pinnable fixtures under `tests/corpus/`.
//! * [`fuzzer`] — the driving loop: seed corpus, per-iteration RNG derived
//!   from `(run seed, iteration)`, incident discovery keyed by violation
//!   class set, and a machine-readable [`fuzzer::FuzzReport`].
//!
//! Everything is deterministic by construction: the same seed scenarios,
//! run seed, and iteration budget produce byte-identical corpus and report
//! JSON, regardless of when or where the run happens (no timestamps, no
//! ambient randomness).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod corpus;
pub mod fuzzer;
pub mod mutate;
pub mod outcome;
pub mod shrink;
pub mod signature;

pub use corpus::{Corpus, CorpusEntry};
pub use fuzzer::{fuzz, FuzzConfig, FuzzReport, Incident, StrategyStat};
pub use mutate::{mutate, MutationLimits, MutationStrategy};
pub use outcome::{violation_label, PolicyPathCounters, ScenarioOutcome};
pub use shrink::shrink_incident;
pub use signature::BehaviorSignature;
