//! Deterministic incident shrinking.
//!
//! When an execution violates an invariant, the raw scenario is usually
//! far bigger than the defect needs: a 28-app flash crowd whose incident
//! survives with 3 apps, a 64-quantum staircase whose first step is the
//! only one that matters. The shrinker minimises the scenario while the
//! *same incident classes* still reproduce, in three passes repeated to a
//! fixpoint:
//!
//! 1. **drop apps** — ddmin-style: remove halves, then quarters, down to
//!    single apps;
//! 2. **flatten the budget staircase** — all steps at once, else one at a
//!    time;
//! 3. **shorten the horizon** — halve, then walk down by quarters and
//!    single quanta.
//!
//! Every candidate is re-sanitized and re-executed; a candidate is
//! accepted only when its incident labels still cover the target classes.
//! No randomness anywhere, so a shrink is reproducible from the incident
//! scenario alone.

use workloads::{Scenario, MIN_SCENARIO_QUANTA};

use crate::outcome::ScenarioOutcome;

/// Lexicographic shrink cost: apps, then staircase steps, then horizon.
fn cost(scenario: &Scenario) -> (usize, usize, usize) {
    (
        scenario.apps.len(),
        scenario.budget_steps.len(),
        scenario.quanta,
    )
}

/// Executes `candidate` and reports whether every target class still
/// fires. Charges one execution against `budget`; once the budget is
/// exhausted every candidate is rejected, freezing the current best.
fn reproduces<E>(
    candidate: &Scenario,
    classes: &[String],
    executor: &mut E,
    executions: &mut u64,
    max_executions: u64,
) -> bool
where
    E: FnMut(&Scenario) -> ScenarioOutcome,
{
    if *executions >= max_executions || !candidate.is_well_formed() {
        return false;
    }
    *executions += 1;
    let labels = executor(candidate).incident_labels();
    classes.iter().all(|class| labels.contains(class))
}

/// Minimises `scenario` while the incident `classes` keep reproducing.
///
/// Returns the shrunk scenario and the number of candidate executions
/// spent. The input is assumed to reproduce the classes (it is returned
/// unchanged if no smaller candidate does). `max_executions` bounds the
/// total work; the shrink is deterministic for a given executor.
pub fn shrink_incident<E>(
    scenario: &Scenario,
    classes: &[String],
    max_executions: u64,
    executor: &mut E,
) -> (Scenario, u64)
where
    E: FnMut(&Scenario) -> ScenarioOutcome,
{
    let mut best = scenario.clone();
    let mut executions = 0u64;

    loop {
        let before = cost(&best);

        // Pass 1: drop apps, coarsest chunks first.
        let mut chunk = (best.apps.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.apps.len() && best.apps.len() > 1 {
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.apps.len());
                candidate.apps.drain(start..end);
                if candidate.apps.is_empty() {
                    start += chunk;
                    continue;
                }
                candidate.sanitize();
                if reproduces(&candidate, classes, executor, &mut executions, max_executions) {
                    best = candidate; // retry the same window on the smaller fleet
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: flatten the budget staircase.
        if !best.budget_steps.is_empty() {
            let mut candidate = best.clone();
            candidate.budget_steps.clear();
            candidate.sanitize();
            if reproduces(&candidate, classes, executor, &mut executions, max_executions) {
                best = candidate;
            } else {
                let mut index = 0;
                while index < best.budget_steps.len() {
                    let mut candidate = best.clone();
                    candidate.budget_steps.remove(index);
                    candidate.sanitize();
                    if reproduces(&candidate, classes, executor, &mut executions, max_executions)
                    {
                        best = candidate;
                    } else {
                        index += 1;
                    }
                }
            }
        }

        // Pass 3: shorten the horizon.
        loop {
            let quanta = best.quanta;
            let mut shortened = false;
            for target in [quanta / 2, quanta * 3 / 4, quanta - 1] {
                if target < MIN_SCENARIO_QUANTA || target >= quanta {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.quanta = target;
                candidate.sanitize();
                if reproduces(&candidate, classes, executor, &mut executions, max_executions) {
                    best = candidate;
                    shortened = true;
                    break;
                }
            }
            if !shortened {
                break;
            }
        }

        if cost(&best) == before {
            return (best, executions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::PolicyPathCounters;
    use coordinator::invariants::InvariantViolation;

    /// A synthetic defect: the incident fires iff some app weighs more
    /// than 5 *and* the horizon is at least 10 quanta.
    fn toy_executor(scenario: &Scenario) -> ScenarioOutcome {
        let heavy = scenario.apps.iter().any(|app| app.weight > 5.0);
        let violations = if heavy && scenario.quanta >= 10 {
            vec![InvariantViolation::BudgetExceeded {
                total: 1.0,
                limit: 0.5,
            }]
        } else {
            Vec::new()
        };
        ScenarioOutcome {
            violations,
            counters: PolicyPathCounters::default(),
            apps: scenario.apps.len(),
            racks: scenario.rack_count(),
            cap_violation_fraction: 0.0,
            mean_attainment: 1.0,
            perf_per_watt: 0.01,
            baseline_perf_per_watt: 0.01,
        }
    }

    #[test]
    fn shrinks_to_the_minimal_reproducer() {
        let mut scenario = workloads::vocabulary_mixes(11).swap_remove(0);
        assert!(scenario.apps.len() > 2 && scenario.quanta > 10);
        scenario.apps[3].weight = 7.5; // plant the defect
        assert!(!scenario.budget_steps.is_empty());

        let classes = toy_executor(&scenario).incident_labels();
        assert_eq!(classes, vec!["budget_exceeded".to_string()]);

        let (shrunk, executions) =
            shrink_incident(&scenario, &classes, 10_000, &mut toy_executor);
        assert_eq!(shrunk.apps.len(), 1, "one heavy app suffices");
        assert!(shrunk.apps[0].weight > 5.0);
        assert!(shrunk.budget_steps.is_empty(), "staircase is irrelevant");
        assert_eq!(shrunk.quanta, 10, "horizon walks down to the threshold");
        assert!(executions > 0);
        assert!(!toy_executor(&shrunk).violations.is_empty());
    }

    #[test]
    fn shrinking_is_deterministic_and_respects_the_execution_budget() {
        let mut scenario = workloads::vocabulary_mixes(11).swap_remove(0);
        scenario.apps[0].weight = 7.9;
        let classes = vec!["budget_exceeded".to_string()];

        let (a, spent_a) = shrink_incident(&scenario, &classes, 10_000, &mut toy_executor);
        let (b, spent_b) = shrink_incident(&scenario, &classes, 10_000, &mut toy_executor);
        assert_eq!(a, b);
        assert_eq!(spent_a, spent_b);

        // A zero budget freezes the input.
        let (frozen, spent) = shrink_incident(&scenario, &classes, 0, &mut toy_executor);
        assert_eq!(frozen, scenario);
        assert_eq!(spent, 0);
    }
}
