//! Behavior signatures: the fuzzer's coverage feedback.
//!
//! An execution is fingerprinted by *what happened*, not what the spec
//! looked like: which invariant classes fired, coarse deciles of the
//! policy-path mix, and log-scale buckets of fleet and rack size. A mutant
//! joins the corpus only when its signature is new, so the corpus grows
//! along behavioral frontiers instead of accumulating near-duplicates.

use serde::{Deserialize, Serialize};

use crate::outcome::ScenarioOutcome;

/// The coarse fingerprint of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorSignature {
    /// Sorted, deduplicated incident labels
    /// ([`ScenarioOutcome::incident_labels`]); empty for a clean run.
    pub classes: Vec<String>,
    /// Bit-length of the app count (0 → 0, 1 → 1, 2–3 → 2, 4–7 → 3, …).
    pub fleet_bucket: u8,
    /// Number of racks (already small; used directly).
    pub rack_bucket: u8,
    /// Decile of `goal_met / decisions`.
    pub goal_met_decile: u8,
    /// Decile of the fraction of decisions taken before the goal could be
    /// judged (arrival churn shows up here).
    pub goal_unknown_decile: u8,
    /// Decile of the machine cap-violation fraction.
    pub violation_decile: u8,
    /// Decile of mean goal attainment.
    pub attainment_decile: u8,
    /// Whether the budget staircase actually stepped during the run.
    pub stepped: bool,
    /// Whether coordinated perf/W fell below the uncoordinated baseline.
    pub cliff: bool,
}

/// Clamps a `[0, 1]` quantity into deciles 0..=10 (NaN and negatives → 0).
fn decile(x: f64) -> u8 {
    if !x.is_finite() || x <= 0.0 {
        return 0;
    }
    (x * 10.0).floor().min(10.0) as u8
}

impl BehaviorSignature {
    /// Fingerprints one execution.
    pub fn of(outcome: &ScenarioOutcome) -> Self {
        let decisions = outcome.counters.decisions.max(1) as f64;
        BehaviorSignature {
            classes: outcome.incident_labels(),
            fleet_bucket: (usize::BITS - outcome.apps.leading_zeros()) as u8,
            rack_bucket: outcome.racks.min(u8::MAX as usize) as u8,
            goal_met_decile: decile(outcome.counters.goal_met as f64 / decisions),
            goal_unknown_decile: decile(outcome.counters.goal_unknown as f64 / decisions),
            violation_decile: decile(outcome.cap_violation_fraction),
            attainment_decile: decile(outcome.mean_attainment),
            stepped: outcome.counters.budget_steps > 0,
            cliff: outcome.baseline_perf_per_watt > 0.0
                && outcome.perf_per_watt < outcome.baseline_perf_per_watt,
        }
    }

    /// A canonical string key (used for corpus dedup and the report's
    /// sorted signature listing).
    pub fn key(&self) -> String {
        format!(
            "[{}]|a{}|r{}|g{}|u{}|v{}|t{}|s{}|c{}",
            self.classes.join("+"),
            self.fleet_bucket,
            self.rack_bucket,
            self.goal_met_decile,
            self.goal_unknown_decile,
            self.violation_decile,
            self.attainment_decile,
            u8::from(self.stepped),
            u8::from(self.cliff),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::PolicyPathCounters;

    fn clean_outcome(apps: usize) -> ScenarioOutcome {
        ScenarioOutcome {
            violations: Vec::new(),
            counters: PolicyPathCounters {
                decisions: 100,
                goal_met: 70,
                goal_missed: 20,
                goal_unknown: 10,
                ..PolicyPathCounters::default()
            },
            apps,
            racks: 1,
            cap_violation_fraction: 0.0,
            mean_attainment: 0.93,
            perf_per_watt: 0.01,
            baseline_perf_per_watt: 0.004,
        }
    }

    #[test]
    fn signatures_bucket_by_behavior_not_exact_values() {
        let a = BehaviorSignature::of(&clean_outcome(5));
        let mut almost = clean_outcome(5);
        almost.mean_attainment = 0.96; // same decile
        almost.perf_per_watt = 0.011;
        assert_eq!(a.key(), BehaviorSignature::of(&almost).key());

        let bigger = BehaviorSignature::of(&clean_outcome(9)); // 5 vs 9: new bucket
        assert_ne!(a.key(), bigger.key());
    }

    #[test]
    fn deciles_saturate_and_tolerate_nan() {
        assert_eq!(decile(1.0), 10);
        assert_eq!(decile(7.3), 10);
        assert_eq!(decile(f64::NAN), 0);
        assert_eq!(decile(-0.2), 0);
        assert_eq!(decile(0.55), 5);
    }
}
