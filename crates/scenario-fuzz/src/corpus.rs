//! The coverage corpus: one scenario per distinct behavior signature.

use serde::{Deserialize, Serialize};
use workloads::Scenario;

use crate::signature::BehaviorSignature;

/// One corpus slot: the scenario, its signature, and its lineage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The (sanitized) scenario.
    pub scenario: Scenario,
    /// The behavior signature that earned the slot.
    pub signature: BehaviorSignature,
    /// The mutation strategy that produced it (`None` for seed entries).
    pub strategy: Option<String>,
    /// Index of the corpus entry it was mutated from (`None` for seeds).
    pub parent: Option<usize>,
    /// The fuzz iteration that produced it (`None` for seeds).
    pub iteration: Option<u64>,
}

/// The corpus: entries in admission order, at most one per signature key.
///
/// Serialized as plain JSON (`to_json` / `from_json`) so a saved corpus
/// re-seeds a later fuzz run or an offline investigation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// Admitted entries, oldest first.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether some entry already carries this signature key.
    ///
    /// Linear scan: corpora are tens-to-hundreds of entries and every
    /// candidate lookup is preceded by a full scenario execution, which
    /// dominates by orders of magnitude.
    pub fn contains_signature(&self, key: &str) -> bool {
        self.entries.iter().any(|entry| entry.signature.key() == key)
    }

    /// Admits `entry` if its signature is new; returns whether it was kept.
    pub fn admit(&mut self, entry: CorpusEntry) -> bool {
        if self.contains_signature(&entry.signature.key()) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// The sorted signature keys currently covered.
    pub fn signature_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .entries
            .iter()
            .map(|entry| entry.signature.key())
            .collect();
        keys.sort();
        keys
    }

    /// Serializes the corpus as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("corpus serializes")
    }

    /// Reloads a corpus saved by [`Corpus::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Reloads a corpus tolerantly: each entry is parsed independently, so
    /// one truncated or schema-drifted entry costs that entry rather than
    /// silently voiding the whole file (which [`Self::from_json`] would).
    /// Returns the salvaged corpus plus `(loaded, rejected)` entry counts.
    ///
    /// # Errors
    ///
    /// Errors only when the document itself is malformed — not valid JSON,
    /// or not an object carrying an `entries` array.
    pub fn from_json_lossy(text: &str) -> Result<(Self, usize, usize), serde_json::Error> {
        use serde::ser::Value;
        let value: Value = serde_json::from_str(text)?;
        let entries = match &value {
            Value::Object(fields) => fields
                .iter()
                .find(|(key, _)| key == "entries")
                .map(|(_, value)| value),
            _ => None,
        };
        let Some(Value::Array(items)) = entries else {
            // Wrong top-level shape: surface the strict parser's error.
            return Self::from_json(text).map(|corpus| {
                let loaded = corpus.len();
                (corpus, loaded, 0)
            });
        };
        let mut corpus = Corpus::default();
        let mut rejected = 0usize;
        for item in items {
            match serde_json::from_value::<CorpusEntry>(item) {
                Ok(entry) => corpus.entries.push(entry),
                Err(_) => rejected += 1,
            }
        }
        let loaded = corpus.len();
        Ok((corpus, loaded, rejected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{PolicyPathCounters, ScenarioOutcome};

    fn entry(apps: usize) -> CorpusEntry {
        let outcome = ScenarioOutcome {
            violations: Vec::new(),
            counters: PolicyPathCounters::default(),
            apps,
            racks: 1,
            cap_violation_fraction: 0.0,
            mean_attainment: 0.5,
            perf_per_watt: 0.01,
            baseline_perf_per_watt: 0.008,
        };
        CorpusEntry {
            scenario: workloads::vocabulary_mixes(1).swap_remove(0),
            signature: BehaviorSignature::of(&outcome),
            strategy: Some("nudge".to_string()),
            parent: Some(0),
            iteration: Some(3),
        }
    }

    #[test]
    fn admission_dedups_by_signature_and_json_round_trips() {
        let mut corpus = Corpus::default();
        assert!(corpus.admit(entry(5)));
        assert!(!corpus.admit(entry(5)), "same signature must be rejected");
        assert!(corpus.admit(entry(9)), "new fleet bucket is new coverage");
        assert_eq!(corpus.len(), 2);

        let reloaded = Corpus::from_json(&corpus.to_json()).unwrap();
        assert_eq!(reloaded, corpus);
        assert_eq!(reloaded.signature_keys(), corpus.signature_keys());
    }

    #[test]
    fn lossy_reload_salvages_readable_entries_and_counts_the_rest() {
        let mut corpus = Corpus::default();
        assert!(corpus.admit(entry(5)));
        assert!(corpus.admit(entry(9)));

        // A clean file loads whole with nothing rejected.
        let (clean, loaded, rejected) = Corpus::from_json_lossy(&corpus.to_json()).unwrap();
        assert_eq!((loaded, rejected), (2, 0));
        assert_eq!(clean, corpus);

        // Corrupt one entry in place (a schema-drifted object): the strict
        // loader voids the file, the lossy loader salvages the other entry
        // and reports the casualty.
        let mut json = corpus.to_json();
        let needle = "\"strategy\": \"nudge\"";
        let at = json.find(needle).unwrap();
        json.replace_range(at..at + needle.len(), "\"strategy\": 42");
        assert!(Corpus::from_json(&json).is_err(), "strict load must fail");
        let (salvaged, loaded, rejected) = Corpus::from_json_lossy(&json).unwrap();
        assert_eq!((loaded, rejected), (1, 1));
        assert_eq!(salvaged.len(), 1);

        // A document that is not a corpus at all surfaces the strict error.
        assert!(Corpus::from_json_lossy("[1, 2, 3]").is_err());
        assert!(Corpus::from_json_lossy("{nope").is_err());
    }
}
