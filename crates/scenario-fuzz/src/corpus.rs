//! The coverage corpus: one scenario per distinct behavior signature.

use serde::{Deserialize, Serialize};
use workloads::Scenario;

use crate::signature::BehaviorSignature;

/// One corpus slot: the scenario, its signature, and its lineage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The (sanitized) scenario.
    pub scenario: Scenario,
    /// The behavior signature that earned the slot.
    pub signature: BehaviorSignature,
    /// The mutation strategy that produced it (`None` for seed entries).
    pub strategy: Option<String>,
    /// Index of the corpus entry it was mutated from (`None` for seeds).
    pub parent: Option<usize>,
    /// The fuzz iteration that produced it (`None` for seeds).
    pub iteration: Option<u64>,
}

/// The corpus: entries in admission order, at most one per signature key.
///
/// Serialized as plain JSON (`to_json` / `from_json`) so a saved corpus
/// re-seeds a later fuzz run or an offline investigation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// Admitted entries, oldest first.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether some entry already carries this signature key.
    ///
    /// Linear scan: corpora are tens-to-hundreds of entries and every
    /// candidate lookup is preceded by a full scenario execution, which
    /// dominates by orders of magnitude.
    pub fn contains_signature(&self, key: &str) -> bool {
        self.entries.iter().any(|entry| entry.signature.key() == key)
    }

    /// Admits `entry` if its signature is new; returns whether it was kept.
    pub fn admit(&mut self, entry: CorpusEntry) -> bool {
        if self.contains_signature(&entry.signature.key()) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// The sorted signature keys currently covered.
    pub fn signature_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .entries
            .iter()
            .map(|entry| entry.signature.key())
            .collect();
        keys.sort();
        keys
    }

    /// Serializes the corpus as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("corpus serializes")
    }

    /// Reloads a corpus saved by [`Corpus::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{PolicyPathCounters, ScenarioOutcome};

    fn entry(apps: usize) -> CorpusEntry {
        let outcome = ScenarioOutcome {
            violations: Vec::new(),
            counters: PolicyPathCounters::default(),
            apps,
            racks: 1,
            cap_violation_fraction: 0.0,
            mean_attainment: 0.5,
            perf_per_watt: 0.01,
            baseline_perf_per_watt: 0.008,
        };
        CorpusEntry {
            scenario: workloads::vocabulary_mixes(1).swap_remove(0),
            signature: BehaviorSignature::of(&outcome),
            strategy: Some("nudge".to_string()),
            parent: Some(0),
            iteration: Some(3),
        }
    }

    #[test]
    fn admission_dedups_by_signature_and_json_round_trips() {
        let mut corpus = Corpus::default();
        assert!(corpus.admit(entry(5)));
        assert!(!corpus.admit(entry(5)), "same signature must be rejected");
        assert!(corpus.admit(entry(9)), "new fleet bucket is new coverage");
        assert_eq!(corpus.len(), 2);

        let reloaded = Corpus::from_json(&corpus.to_json()).unwrap();
        assert_eq!(reloaded, corpus);
        assert_eq!(reloaded.signature_keys(), corpus.signature_keys());
    }
}
