//! What one execution of a scenario reports back to the fuzzer.

use coordinator::invariants::InvariantViolation;
use serde::{Deserialize, Serialize};

/// Counters over the control paths one execution took — the fuzzer's
/// stand-in for branch coverage. Two scenarios that tickle different
/// arbitration behavior (goals missed instead of met, a hierarchy instead
/// of a flat coordinator, budget steps firing) land in different buckets
/// even when neither violates an invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyPathCounters {
    /// Per-app cap decisions taken across the run.
    pub decisions: u64,
    /// Decisions whose observation window met the performance goal.
    pub goal_met: u64,
    /// Decisions whose observation window missed the goal.
    pub goal_missed: u64,
    /// Decisions taken before enough was observed to judge the goal.
    pub goal_unknown: u64,
    /// Applications that registered mid-run (arrival quantum > 0 included).
    pub arrivals: u64,
    /// Applications that retired before the horizon.
    pub departures: u64,
    /// Quanta at which the budget staircase changed the cap in force.
    pub budget_steps: u64,
    /// Whether the run arbitrated through the rack → datacenter hierarchy.
    pub hierarchical: bool,
}

/// The result of executing one scenario through a probe.
///
/// The executor owns all simulation policy (which arms run, which
/// [`coordinator::invariants`] limits apply); the fuzzer only reads this
/// summary. `violations` empty means the run was clean; non-empty means
/// the scenario is an *incident* worth shrinking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Invariant violations the probe's oracles reported (deduplicated by
    /// the probe; order is the probe's discovery order).
    pub violations: Vec<InvariantViolation>,
    /// Control-path counters for behavior-signature bucketing.
    pub counters: PolicyPathCounters,
    /// Applications in the executed scenario.
    pub apps: usize,
    /// Racks the scenario's apps were partitioned into.
    pub racks: usize,
    /// Fraction of simulated time the coordinated machine total exceeded
    /// the budget in force.
    pub cap_violation_fraction: f64,
    /// Mean over apps of `min(rate/target, 1)` in the coordinated run.
    pub mean_attainment: f64,
    /// Coordinated goal-weighted throughput per watt above idle.
    pub perf_per_watt: f64,
    /// The same metric for the uncoordinated baseline (0 when the probe
    /// did not run one).
    pub baseline_perf_per_watt: f64,
}

impl ScenarioOutcome {
    /// The sorted, deduplicated incident labels of this execution — the
    /// key under which an incident class is discovered, shrunk, and
    /// pinned. Empty for a clean run.
    pub fn incident_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.violations.iter().map(violation_label).collect();
        labels.sort();
        labels.dedup();
        labels
    }
}

/// A machine-stable label for one violation, slightly finer than
/// [`InvariantViolation::class`]: cap violations carry the meter name
/// (`cap_violation:machine` vs `cap_violation:rack`), because blowing the
/// enforced machine cap and overdrawing an audited-only rack envelope are
/// different incidents with different fixes.
pub fn violation_label(violation: &InvariantViolation) -> String {
    match violation {
        InvariantViolation::CapViolation { meter, .. } => {
            format!("{}:{meter}", violation.class())
        }
        other => other.class().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_sorted_deduplicated_and_meter_qualified() {
        let outcome = ScenarioOutcome {
            violations: vec![
                InvariantViolation::CapViolation {
                    meter: "rack".to_string(),
                    fraction: 0.3,
                    limit: 0.0,
                },
                InvariantViolation::BudgetExceeded {
                    total: 101.0,
                    limit: 100.0,
                },
                InvariantViolation::CapViolation {
                    meter: "rack".to_string(),
                    fraction: 0.4,
                    limit: 0.0,
                },
            ],
            counters: PolicyPathCounters::default(),
            apps: 3,
            racks: 2,
            cap_violation_fraction: 0.0,
            mean_attainment: 1.0,
            perf_per_watt: 0.01,
            baseline_perf_per_watt: 0.005,
        };
        assert_eq!(
            outcome.incident_labels(),
            vec!["budget_exceeded".to_string(), "cap_violation:rack".to_string()]
        );
    }
}
