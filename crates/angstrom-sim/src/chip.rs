//! The Angstrom chip model: ties tiles, network, coherence, and energy
//! together and executes application demand under a chosen configuration.

use serde::{Deserialize, Serialize};

use crate::cache::ReconfigurableCache;
use crate::coherence::{CoherenceInputs, CoherenceModel, CoherenceProtocol};
use crate::config::ChipConfig;
use crate::dvfs::OperatingPoint;
use crate::energy::EnergyBreakdown;
use crate::noc::{MeshTopology, NocFeatures, NocModel, TrafficMatrix};
use crate::partner::{DecisionPlacement, PartnerCore};
use crate::tile::{Tile, TileActivity};
use crate::workload::WorkloadDemand;

/// The runtime choice among the adaptations the chip exposes: the object the
/// SEEC runtime (or an oracle) manipulates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfiguration {
    /// Number of cores allocated to the application.
    pub cores: usize,
    /// Enabled private cache capacity per allocated core, in kilobytes.
    pub cache_per_core_kb: f64,
    /// Index into [`ChipConfig::operating_points`].
    pub operating_point_index: usize,
    /// Coherence protocol in force for the application.
    pub coherence: CoherenceProtocol,
    /// Override of the chip's network features (None = use fabricated features).
    pub noc_features: Option<NocFeatures>,
    /// Where runtime decision code executes.
    pub decision_placement: DecisionPlacement,
}

impl ChipConfiguration {
    /// The "everything on" configuration: all cores, full cache, fastest
    /// operating point, the chip's fabricated coherence choice.
    pub fn default_for(config: &ChipConfig) -> Self {
        ChipConfiguration {
            cores: *config.core_allocation_options.last().expect("validated config"),
            cache_per_core_kb: *config
                .cache_capacity_options_kb
                .last()
                .expect("validated config"),
            operating_point_index: config.operating_points.len() - 1,
            coherence: config.coherence,
            noc_features: None,
            decision_placement: config.decision_placement,
        }
    }

    /// Checks the configuration against what the chip actually provides.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, config: &ChipConfig) -> Result<(), String> {
        if self.cores == 0 || self.cores > config.tiles {
            return Err(format!(
                "core allocation {} outside 1..={}",
                self.cores, config.tiles
            ));
        }
        if self.cache_per_core_kb <= 0.0
            || self.cache_per_core_kb > config.cache_geometry.capacity_kb
        {
            return Err(format!(
                "cache capacity {} KB outside (0, {}] KB",
                self.cache_per_core_kb, config.cache_geometry.capacity_kb
            ));
        }
        if self.operating_point_index >= config.operating_points.len() {
            return Err(format!(
                "operating point index {} out of range (0..{})",
                self.operating_point_index,
                config.operating_points.len()
            ));
        }
        Ok(())
    }
}

/// What happened when a quantum of demand executed under a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Wall-clock (simulated) duration of the quantum, in seconds.
    pub seconds: f64,
    /// Total busy core cycles across allocated cores.
    pub cycles: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Application work units completed.
    pub work_units: f64,
    /// Total energy, in joules.
    pub energy_joules: f64,
    /// Component-wise energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Average chip power over the quantum, in watts.
    pub average_power_watts: f64,
    /// Achieved instruction throughput, in instructions per second.
    pub instructions_per_second: f64,
    /// Fraction of memory operations served off chip.
    pub offchip_rate: f64,
    /// Total network flits moved.
    pub network_flits: f64,
    /// The concrete coherence protocol that served the quantum.
    pub coherence_protocol: CoherenceProtocol,
}

impl ExecutionReport {
    /// Performance per watt: instruction throughput divided by average power
    /// (equivalently, instructions per joule).
    pub fn performance_per_watt(&self) -> f64 {
        if self.energy_joules > 0.0 {
            self.instructions / self.energy_joules
        } else {
            0.0
        }
    }
}

/// Cost of running one SEEC decision, as reported by the chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionCost {
    /// Main-core time stolen from the application, in seconds.
    pub application_seconds: f64,
    /// Wall-clock latency until the decision is available, in seconds.
    pub latency_seconds: f64,
    /// Energy consumed by the decision, in joules.
    pub energy_joules: f64,
}

/// The Angstrom chip simulator.
#[derive(Debug, Clone)]
pub struct AngstromChip {
    config: ChipConfig,
    tiles: Vec<Tile>,
    noc: NocModel,
    coherence_model: CoherenceModel,
    now: f64,
}

impl AngstromChip {
    /// Builds a chip from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ChipConfig::validate`]; use
    /// [`AngstromChip::try_new`] to handle invalid configurations gracefully.
    pub fn new(config: ChipConfig) -> Self {
        AngstromChip::try_new(config).expect("chip configuration must be valid")
    }

    /// Builds a chip, returning the validation error if the configuration is
    /// inconsistent.
    ///
    /// # Errors
    ///
    /// Returns the message produced by [`ChipConfig::validate`].
    pub fn try_new(config: ChipConfig) -> Result<Self, String> {
        config.validate()?;
        let tiles = (0..config.tiles).map(|id| Tile::new(id, &config)).collect();
        let noc = NocModel::new(config.topology, config.noc_features);
        Ok(AngstromChip {
            config,
            tiles,
            noc,
            coherence_model: CoherenceModel::default(),
            now: 0.0,
        })
    }

    /// The fabricated chip description.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The tiles of the chip.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Mutable access to the tiles (for attaching probes, inspecting
    /// counters, or modelling per-tile variation).
    pub fn tiles_mut(&mut self) -> &mut [Tile] {
        &mut self.tiles
    }

    /// The network model.
    pub fn noc(&self) -> &NocModel {
        &self.noc
    }

    /// Mutable access to the network model (for installing AOR routing
    /// tables or reconfiguring the bandwidth allocator).
    pub fn noc_mut(&mut self) -> &mut NocModel {
        &mut self.noc
    }

    /// Current simulation time, in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total energy recorded by the per-tile energy sensors so far, in joules.
    pub fn total_sensed_energy(&self) -> f64 {
        self.tiles.iter().map(|t| t.sensors.energy.read()).sum()
    }

    /// Evaluates `demand` under `configuration` without mutating any chip
    /// state. This is the pure analytical model; [`AngstromChip::execute`]
    /// additionally advances time, counters, and sensors.
    pub fn evaluate(
        &self,
        demand: &WorkloadDemand,
        configuration: &ChipConfiguration,
    ) -> ExecutionReport {
        // ARCc-style adaptive coherence: evaluate both concrete protocols for
        // this application and keep the faster one (DAC 2012 §4.2.2).
        if configuration.coherence == CoherenceProtocol::Adaptive {
            let mut directory_cfg = configuration.clone();
            directory_cfg.coherence = CoherenceProtocol::Directory;
            let mut nuca_cfg = configuration.clone();
            nuca_cfg.coherence = CoherenceProtocol::SharedNuca;
            let directory = self.evaluate(demand, &directory_cfg);
            let nuca = self.evaluate(demand, &nuca_cfg);
            return if directory.seconds <= nuca.seconds {
                directory
            } else {
                nuca
            };
        }
        let cfg = self.clamped(configuration);
        let point = self.config.operating_points[cfg.operating_point_index];
        let features = cfg.noc_features.unwrap_or(self.config.noc_features);
        let mut noc = self.noc.clone();
        noc.features = features;

        let cores = cfg.cores;
        let region = MeshTopology::for_tiles(cores);
        // The traffic model is statistical; a representative sub-mesh keeps
        // the routing analysis cheap for very large allocations without
        // changing the average-hop or asymmetry figures it feeds.
        let traffic = TrafficMatrix::uniform(region.routers().clamp(2, 64));
        if features.aor {
            noc.install_routing_table(crate::noc::RoutingTable::application_aware(
                noc.topology,
                &traffic,
            ));
        }

        // Off-chip latency is constant in nanoseconds; express it in cycles
        // at the selected frequency (it was specified at the fastest point).
        let fastest = self
            .config
            .operating_points
            .iter()
            .map(|p| p.frequency)
            .fold(0.0_f64, f64::max);
        let offchip_cycles = self.config.offchip_latency_cycles * point.frequency / fastest;

        let hop_cycles = if features.evc {
            noc.evc
                .effective_hop_cycles(noc.router_cycles, noc.link_cycles)
        } else {
            noc.router_cycles + noc.link_cycles
        };

        // Two passes: first without network contention, then with the
        // contention implied by the first pass's injection rate.
        let mut contention = 1.0;
        let mut result = self.single_pass(
            demand, &cfg, point, &noc, &traffic, region, offchip_cycles, hop_cycles, contention,
        );
        let flits_per_cycle = if result.seconds > 0.0 {
            result.network_flits / (result.seconds * point.frequency)
        } else {
            0.0
        };
        contention = noc.contention_factor(flits_per_cycle, &traffic);
        if contention > 1.001 {
            result = self.single_pass(
                demand, &cfg, point, &noc, &traffic, region, offchip_cycles, hop_cycles, contention,
            );
        }
        result
    }

    /// Executes `demand` under `configuration`: evaluates the model, advances
    /// simulation time, and updates counters and sensors on the allocated
    /// tiles.
    pub fn execute(
        &mut self,
        demand: &WorkloadDemand,
        configuration: &ChipConfiguration,
    ) -> ExecutionReport {
        let report = self.evaluate(demand, configuration);
        let cfg = self.clamped(configuration);
        self.now += report.seconds;
        let now = self.now;
        let cores = cfg.cores.max(1);
        let per_tile = TileActivity {
            instructions: report.instructions / cores as f64,
            cycles: report.cycles / cores as f64,
            memory_ops: report.instructions * demand.memory_ops_per_instruction / cores as f64,
            cache_misses: report.instructions
                * demand.memory_ops_per_instruction
                * report.offchip_rate
                / cores as f64,
            stall_cycles: (report.cycles * 0.3) / cores as f64,
            flits_sent: report.network_flits / cores as f64,
            flits_received: report.network_flits / cores as f64,
            energy_joules: report.energy_joules / cores as f64,
            power_watts: report.average_power_watts / cores as f64,
            seconds: report.seconds,
        };
        for tile in self.tiles.iter_mut().take(cores) {
            tile.record_activity(&per_tile, now);
        }
        report
    }

    /// Cost of one SEEC decision of `decision_instructions` instructions
    /// under `configuration`.
    pub fn decision_cost(
        &self,
        decision_instructions: f64,
        configuration: &ChipConfiguration,
    ) -> DecisionCost {
        let cfg = self.clamped(configuration);
        let point = self.config.operating_points[cfg.operating_point_index];
        let partner = PartnerCore::default();
        let model = self.tiles[0].dvfs.energy_model();
        let application_seconds = partner.application_overhead(
            decision_instructions,
            point,
            cfg.decision_placement,
        );
        let latency_seconds = match cfg.decision_placement {
            DecisionPlacement::PartnerCore => partner.decision_time(decision_instructions, point),
            DecisionPlacement::MainCore => application_seconds,
        };
        let energy_joules = partner.decision_energy_for_placement(
            decision_instructions,
            point,
            model,
            cfg.decision_placement,
        );
        DecisionCost {
            application_seconds,
            latency_seconds,
            energy_joules,
        }
    }

    fn clamped(&self, configuration: &ChipConfiguration) -> ChipConfiguration {
        let mut cfg = configuration.clone();
        cfg.cores = cfg.cores.clamp(1, self.config.tiles);
        cfg.cache_per_core_kb = cfg
            .cache_per_core_kb
            .clamp(1.0, self.config.cache_geometry.capacity_kb);
        cfg.operating_point_index = cfg
            .operating_point_index
            .min(self.config.operating_points.len() - 1);
        cfg
    }

    #[allow(clippy::too_many_arguments)]
    fn single_pass(
        &self,
        demand: &WorkloadDemand,
        cfg: &ChipConfiguration,
        point: OperatingPoint,
        noc: &NocModel,
        _traffic: &TrafficMatrix,
        region: MeshTopology,
        offchip_cycles: f64,
        hop_cycles: f64,
        contention: f64,
    ) -> ExecutionReport {
        let cores = cfg.cores.max(1);
        let coherence_inputs = CoherenceInputs {
            cores,
            cache_per_core_kb: cfg.cache_per_core_kb,
            working_set_kb: demand.working_set_bytes / 1024.0,
            locality_exponent: demand.locality_exponent,
            sharing_fraction: demand.sharing_fraction,
            average_hops: region.average_hops().max(1.0),
            hop_cycles: hop_cycles * contention,
            offchip_cycles,
        };
        let costs = self
            .coherence_model
            .evaluate(cfg.coherence, &coherence_inputs);

        // Cycles per instruction.
        let memory_penalty = demand.memory_ops_per_instruction * costs.avg_penalty_cycles;
        let comm_penalty = demand.communication_flits_per_instruction
            * coherence_inputs.average_hops
            * hop_cycles
            * contention
            * 0.5;
        let cpi = demand.base_cpi + memory_penalty + comm_penalty;

        // Amdahl split with load imbalance and a mild synchronisation cost.
        let serial_instructions = (1.0 - demand.parallel_fraction) * demand.instructions;
        let parallel_instructions = demand.parallel_fraction * demand.instructions;
        let sync_factor = 1.0 + 0.01 * (cores as f64).log2().max(0.0);
        let frequency = point.frequency;
        let serial_seconds = serial_instructions * cpi / frequency;
        let parallel_seconds = parallel_instructions * cpi * demand.load_imbalance * sync_factor
            / (frequency * cores as f64);
        let seconds = (serial_seconds + parallel_seconds).max(1e-12);

        let busy_cycles = demand.instructions * cpi;
        let memory_ops = demand.instructions * demand.memory_ops_per_instruction;
        let network_flits = memory_ops * costs.flits_per_memory_op
            + demand.instructions * demand.communication_flits_per_instruction;

        // Energy accounting.
        let energy_model = self.tiles[0].dvfs.energy_model();
        let core_dynamic = energy_model.dynamic_energy_per_cycle(point) * busy_cycles;
        let core_leakage = energy_model.leakage_power(point) * cores as f64 * seconds;

        let mut cache = ReconfigurableCache::new(self.config.cache_geometry);
        cache.configure_capacity(cfg.cache_per_core_kb);
        let cache_dynamic = cache.access_energy(memory_ops, point.voltage);
        let cache_leakage = cache.leakage_power(point.voltage) * cores as f64 * seconds;

        let network = network_flits * noc.flit_energy();

        let partner_model = PartnerCore::default();
        let partner =
            partner_model.idle_power(point, energy_model) * cores as f64 * seconds;

        let idle_tiles = (self.config.tiles - cores) as f64
            * (energy_model.leakage_power(point) + cache.leakage_power(point.voltage))
            * self.config.idle_tile_leakage_fraction
            * seconds;

        let breakdown = EnergyBreakdown {
            core_dynamic,
            core_leakage,
            cache_dynamic,
            cache_leakage,
            network,
            partner,
            idle_tiles,
        };
        let energy_joules = breakdown.total();

        ExecutionReport {
            seconds,
            cycles: busy_cycles,
            instructions: demand.instructions,
            work_units: demand.work_units,
            energy_joules,
            breakdown,
            average_power_watts: breakdown.average_power(seconds),
            instructions_per_second: demand.instructions / seconds,
            offchip_rate: costs.offchip_rate,
            network_flits,
            coherence_protocol: costs.protocol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barnes_like() -> WorkloadDemand {
        WorkloadDemand::builder()
            .instructions(2.0e9)
            .parallel_fraction(0.998)
            .memory_ops_per_instruction(0.25)
            .working_set_bytes(8.0 * 1024.0 * 1024.0)
            .locality_exponent(0.7)
            .sharing_fraction(0.1)
            .build()
    }

    fn memory_bound() -> WorkloadDemand {
        WorkloadDemand::builder()
            .instructions(2.0e9)
            .parallel_fraction(0.9)
            .memory_ops_per_instruction(0.45)
            .working_set_bytes(64.0 * 1024.0 * 1024.0)
            .locality_exponent(0.25)
            .sharing_fraction(0.3)
            .build()
    }

    #[test]
    fn default_configuration_is_valid_for_presets() {
        for config in [ChipConfig::angstrom_256(), ChipConfig::graphite_64()] {
            let cfg = ChipConfiguration::default_for(&config);
            cfg.validate(&config).unwrap();
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let config = ChipConfig::angstrom_256();
        let mut cfg = ChipConfiguration::default_for(&config);
        cfg.cores = 0;
        assert!(cfg.validate(&config).is_err());
        cfg.cores = 512;
        assert!(cfg.validate(&config).is_err());
        let mut cfg = ChipConfiguration::default_for(&config);
        cfg.cache_per_core_kb = 1024.0;
        assert!(cfg.validate(&config).is_err());
        let mut cfg = ChipConfiguration::default_for(&config);
        cfg.operating_point_index = 9;
        assert!(cfg.validate(&config).is_err());
    }

    #[test]
    fn more_cores_speed_up_parallel_work() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = barnes_like();
        let mut cfg = ChipConfiguration::default_for(chip.config());
        cfg.cores = 4;
        let few = chip.evaluate(&demand, &cfg);
        cfg.cores = 256;
        let many = chip.evaluate(&demand, &cfg);
        assert!(many.seconds < few.seconds / 10.0, "parallel workload must scale");
        assert!(many.instructions_per_second > few.instructions_per_second);
    }

    #[test]
    fn memory_bound_workloads_scale_poorly() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = memory_bound();
        let mut cfg = ChipConfiguration::default_for(chip.config());
        cfg.cores = 16;
        let few = chip.evaluate(&demand, &cfg);
        cfg.cores = 256;
        let many = chip.evaluate(&demand, &cfg);
        let speedup = few.seconds / many.seconds;
        assert!(speedup < 12.0, "memory-bound speedup should be limited, got {speedup}");
    }

    #[test]
    fn lower_voltage_improves_energy_per_instruction() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = barnes_like();
        let mut cfg = ChipConfiguration::default_for(chip.config());
        cfg.cores = 64;
        cfg.operating_point_index = 1; // 0.8 V / 500 MHz
        let fast = chip.evaluate(&demand, &cfg);
        cfg.operating_point_index = 0; // 0.4 V / 100 MHz
        let slow = chip.evaluate(&demand, &cfg);
        assert!(slow.seconds > fast.seconds, "lower frequency is slower");
        assert!(
            slow.performance_per_watt() > fast.performance_per_watt(),
            "low-voltage operation must be more energy efficient"
        );
    }

    #[test]
    fn larger_cache_helps_memory_bound_workloads() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = memory_bound();
        let mut cfg = ChipConfiguration::default_for(chip.config());
        cfg.cores = 64;
        cfg.cache_per_core_kb = 32.0;
        let small = chip.evaluate(&demand, &cfg);
        cfg.cache_per_core_kb = 128.0;
        let large = chip.evaluate(&demand, &cfg);
        assert!(large.seconds < small.seconds);
        assert!(large.offchip_rate <= small.offchip_rate);
    }

    #[test]
    fn execute_advances_time_and_updates_tiles() {
        let mut chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = barnes_like();
        let cfg = ChipConfiguration::default_for(chip.config());
        assert_eq!(chip.now(), 0.0);
        let report = chip.execute(&demand, &cfg);
        assert!(chip.now() > 0.0);
        assert!((chip.now() - report.seconds).abs() < 1e-12);
        assert!(chip.tiles()[0].counters.read(crate::counters::CounterId::Instructions) > 0);
        assert!(chip.total_sensed_energy() > 0.0);
        // Unallocated tile state is untouched when fewer cores are allocated.
        let mut cfg_small = cfg.clone();
        cfg_small.cores = 2;
        let mut chip2 = AngstromChip::new(ChipConfig::angstrom_256());
        chip2.execute(&demand, &cfg_small);
        assert_eq!(
            chip2.tiles()[200]
                .counters
                .read(crate::counters::CounterId::Instructions),
            0
        );
    }

    #[test]
    fn report_energy_identity_holds() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let report = chip.evaluate(&barnes_like(), &ChipConfiguration::default_for(chip.config()));
        assert!((report.breakdown.total() - report.energy_joules).abs() < 1e-9);
        assert!(
            (report.average_power_watts - report.energy_joules / report.seconds).abs()
                < 1e-6 * report.average_power_watts
        );
        assert!(
            (report.performance_per_watt()
                - report.instructions_per_second / report.average_power_watts)
                .abs()
                < 1e-3 * report.performance_per_watt()
        );
    }

    #[test]
    fn partner_core_decisions_are_cheaper_for_the_application() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let mut cfg = ChipConfiguration::default_for(chip.config());
        cfg.decision_placement = DecisionPlacement::PartnerCore;
        let partner = chip.decision_cost(1.0e6, &cfg);
        cfg.decision_placement = DecisionPlacement::MainCore;
        let main = chip.decision_cost(1.0e6, &cfg);
        assert_eq!(partner.application_seconds, 0.0);
        assert!(main.application_seconds > 0.0);
        assert!(partner.energy_joules < main.energy_joules);
        assert!(partner.latency_seconds > main.latency_seconds);
    }

    #[test]
    fn out_of_range_configuration_is_clamped_not_panicking() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let cfg = ChipConfiguration {
            cores: 100_000,
            cache_per_core_kb: 1.0e9,
            operating_point_index: 42,
            coherence: CoherenceProtocol::Adaptive,
            noc_features: None,
            decision_placement: DecisionPlacement::PartnerCore,
        };
        let report = chip.evaluate(&barnes_like(), &cfg);
        assert!(report.seconds.is_finite() && report.seconds > 0.0);
    }

    #[test]
    fn try_new_rejects_invalid_chip() {
        let mut config = ChipConfig::angstrom_256();
        config.operating_points.clear();
        assert!(AngstromChip::try_new(config).is_err());
    }
}
