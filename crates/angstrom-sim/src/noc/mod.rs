//! On-chip network (NoC) model.
//!
//! Angstrom adapts its on-chip network through three architectural features
//! exposed to software (DAC 2012 §4.2.2):
//!
//! * **Express virtual channels (EVC)** — flits bypass buffering and
//!   arbitration in intermediate routers ([`evc`]).
//! * **Bandwidth-adaptive networks (BAN)** — bidirectional links whose
//!   direction is governed by a hardware bandwidth allocator with
//!   software-visible configuration ([`ban`]).
//! * **Application-aware oblivious routing (AOR)** — routing tables computed
//!   online from the application's flow demands ([`aor`]).
//!
//! [`NocModel`] composes the three into per-message latency and per-flit
//! energy figures consumed by the chip-level performance model.

pub mod aor;
pub mod ban;
pub mod evc;

use serde::{Deserialize, Serialize};

pub use aor::{RoutingAlgorithm, RoutingTable, TrafficMatrix};
pub use ban::BandwidthAllocator;
pub use evc::ExpressVirtualChannels;

/// A 2-D mesh topology of `width × height` routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshTopology {
    /// Routers per row.
    pub width: usize,
    /// Routers per column.
    pub height: usize,
}

impl MeshTopology {
    /// Creates a mesh, requiring at least one router.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        MeshTopology { width, height }
    }

    /// Smallest square-ish mesh holding `tiles` routers.
    pub fn for_tiles(tiles: usize) -> Self {
        let width = (tiles as f64).sqrt().ceil().max(1.0) as usize;
        let height = tiles.div_ceil(width).max(1);
        MeshTopology { width, height }
    }

    /// Total number of routers.
    pub fn routers(&self) -> usize {
        self.width * self.height
    }

    /// Manhattan distance between two router indices (row-major).
    pub fn hops_between(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = (a % self.width, a / self.width);
        let (bx, by) = (b % self.width, b / self.width);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Average Manhattan distance between uniformly random router pairs.
    pub fn average_hops(&self) -> f64 {
        // E|x1-x2| for uniform over 0..w is (w² − 1) / (3 w).
        let axis = |n: usize| {
            let n = n as f64;
            if n <= 1.0 {
                0.0
            } else {
                (n * n - 1.0) / (3.0 * n)
            }
        };
        axis(self.width) + axis(self.height)
    }

    /// Number of unidirectional links crossing the vertical bisection.
    pub fn bisection_links(&self) -> usize {
        2 * self.height
    }
}

/// Which of the adaptive network features are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocFeatures {
    /// Express virtual channels enabled.
    pub evc: bool,
    /// Bandwidth-adaptive (bidirectional) links enabled.
    pub ban: bool,
    /// Application-aware oblivious routing enabled (otherwise plain XY).
    pub aor: bool,
}

impl Default for NocFeatures {
    fn default() -> Self {
        NocFeatures {
            evc: true,
            ban: true,
            aor: true,
        }
    }
}

impl NocFeatures {
    /// A baseline network with every adaptive feature disabled.
    pub fn baseline() -> Self {
        NocFeatures {
            evc: false,
            ban: false,
            aor: false,
        }
    }
}

/// Analytical network model combining topology, router pipeline, and the
/// adaptive features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    /// Mesh topology.
    pub topology: MeshTopology,
    /// Enabled adaptive features.
    pub features: NocFeatures,
    /// Router pipeline latency per hop without bypass, in cycles.
    pub router_cycles: f64,
    /// Link traversal latency per hop, in cycles.
    pub link_cycles: f64,
    /// Energy per flit per hop through a full router pipeline, in joules.
    pub flit_hop_energy: f64,
    /// Express virtual channel model.
    pub evc: ExpressVirtualChannels,
    /// Bandwidth allocator model.
    pub ban: BandwidthAllocator,
    /// Routing table currently installed (by AOR or plain XY).
    pub routing: RoutingTable,
}

impl NocModel {
    /// Creates a network model for `topology` with default parameters.
    pub fn new(topology: MeshTopology, features: NocFeatures) -> Self {
        NocModel {
            topology,
            features,
            router_cycles: 3.0,
            link_cycles: 1.0,
            flit_hop_energy: 1.5e-12,
            evc: ExpressVirtualChannels::default(),
            ban: BandwidthAllocator::default(),
            routing: RoutingTable::xy(topology),
        }
    }

    /// Installs a routing table computed by software (the AOR interface).
    pub fn install_routing_table(&mut self, table: RoutingTable) {
        self.routing = table;
    }

    /// Average zero-load latency of a packet of `flits` flits, in cycles.
    pub fn zero_load_latency_cycles(&self, flits: f64) -> f64 {
        let hops = self.topology.average_hops().max(1.0);
        let per_hop = if self.features.evc {
            self.evc.effective_hop_cycles(self.router_cycles, self.link_cycles)
        } else {
            self.router_cycles + self.link_cycles
        };
        // Head latency plus serialization of the body flits.
        hops * per_hop + (flits - 1.0).max(0.0)
    }

    /// Contention multiplier (≥ 1) given offered load.
    ///
    /// `flits_per_cycle` is the aggregate injection rate of the application;
    /// the achievable rate is set by the bisection bandwidth, improved by BAN
    /// when traffic is asymmetric and by AOR when the load would otherwise
    /// concentrate on a few channels.
    pub fn contention_factor(&self, flits_per_cycle: f64, traffic: &TrafficMatrix) -> f64 {
        let mut capacity = self.topology.bisection_links() as f64;
        if self.features.ban {
            capacity *= self.ban.effective_bandwidth_gain(traffic.asymmetry());
        }
        let balance = if self.features.aor {
            self.routing.load_balance_factor(traffic)
        } else {
            RoutingTable::xy(self.topology).load_balance_factor(traffic)
        };
        // Utilisation of the most loaded part of the network. Below
        // saturation the delay follows an M/M/1-style queueing curve; past
        // saturation the network is throughput-limited and latency grows
        // linearly with the overload.
        let utilisation = (flits_per_cycle * balance / capacity).max(0.0);
        const SATURATION: f64 = 0.95;
        if utilisation < SATURATION {
            1.0 / (1.0 - utilisation)
        } else {
            (1.0 / (1.0 - SATURATION)) * (utilisation / SATURATION)
        }
    }

    /// Average total latency of a packet of `flits` flits under load, in cycles.
    pub fn packet_latency_cycles(
        &self,
        flits: f64,
        flits_per_cycle: f64,
        traffic: &TrafficMatrix,
    ) -> f64 {
        self.zero_load_latency_cycles(flits) * self.contention_factor(flits_per_cycle, traffic)
    }

    /// Energy of moving one flit across the network (average hop count), in joules.
    pub fn flit_energy(&self) -> f64 {
        let hops = self.topology.average_hops().max(1.0);
        let per_hop = if self.features.evc {
            self.flit_hop_energy * self.evc.energy_fraction()
        } else {
            self.flit_hop_energy
        };
        hops * per_hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dimensions_and_hops() {
        let mesh = MeshTopology::new(4, 4);
        assert_eq!(mesh.routers(), 16);
        assert_eq!(mesh.hops_between(0, 15), 6);
        assert_eq!(mesh.hops_between(5, 5), 0);
        assert!(mesh.average_hops() > 2.0 && mesh.average_hops() < 3.0);
        assert_eq!(mesh.bisection_links(), 8);
    }

    #[test]
    fn for_tiles_covers_requested_count() {
        for tiles in [1, 4, 16, 64, 200, 256, 1000] {
            let mesh = MeshTopology::for_tiles(tiles);
            assert!(mesh.routers() >= tiles, "{tiles} tiles need {} routers", mesh.routers());
        }
        assert_eq!(MeshTopology::for_tiles(256), MeshTopology::new(16, 16));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_mesh_panics() {
        let _ = MeshTopology::new(0, 4);
    }

    #[test]
    fn evc_reduces_latency_and_energy() {
        let mesh = MeshTopology::new(8, 8);
        let with = NocModel::new(mesh, NocFeatures::default());
        let without = NocModel::new(mesh, NocFeatures::baseline());
        assert!(with.zero_load_latency_cycles(4.0) < without.zero_load_latency_cycles(4.0));
        assert!(with.flit_energy() < without.flit_energy());
    }

    #[test]
    fn contention_grows_with_load_and_saturates() {
        let mesh = MeshTopology::new(8, 8);
        let model = NocModel::new(mesh, NocFeatures::baseline());
        let traffic = TrafficMatrix::uniform(mesh.routers());
        let light = model.contention_factor(0.5, &traffic);
        let heavy = model.contention_factor(10.0, &traffic);
        let saturated = model.contention_factor(100.0, &traffic);
        assert!(light >= 1.0);
        assert!(light < heavy);
        assert!(heavy < saturated, "past saturation latency keeps growing");
        assert!(saturated.is_finite());
    }

    #[test]
    fn adaptive_features_reduce_contention() {
        let mesh = MeshTopology::new(8, 8);
        let adaptive = NocModel::new(mesh, NocFeatures::default());
        let baseline = NocModel::new(mesh, NocFeatures::baseline());
        let traffic = TrafficMatrix::hotspot(mesh.routers(), 0, 0.4);
        let load = 6.0;
        assert!(
            adaptive.contention_factor(load, &traffic)
                < baseline.contention_factor(load, &traffic)
        );
        assert!(
            adaptive.packet_latency_cycles(4.0, load, &traffic)
                < baseline.packet_latency_cycles(4.0, load, &traffic)
        );
    }
}
