//! Bandwidth-adaptive networks (BAN).
//!
//! A BAN rapidly adjusts bisection bandwidth to changing network conditions
//! by using bidirectional links: arbitration logic and tristate buffers
//! prevent simultaneous writes to the same wire, and a hardware bandwidth
//! allocator governs each link's direction (DAC 2012 §4.2.2, citing Cho et
//! al., PACT 2009). Angstrom exposes the allocator's configuration to
//! software while keeping fine-grained allocation in hardware.

use serde::{Deserialize, Serialize};

/// Hardware bandwidth allocator with software-visible configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthAllocator {
    /// Fraction of each link pair that can be steered toward the busier
    /// direction (0.0 = conventional unidirectional links, 1.0 = the whole
    /// pair can point one way).
    pub steerable_fraction: f64,
    /// Reallocation period in cycles (how quickly the allocator reacts).
    pub reallocation_period_cycles: u32,
    /// Hysteresis threshold: the demand asymmetry required before links are
    /// re-steered, as a fraction in `[0, 1]`.
    pub hysteresis: f64,
}

impl Default for BandwidthAllocator {
    fn default() -> Self {
        BandwidthAllocator {
            steerable_fraction: 1.0,
            reallocation_period_cycles: 64,
            hysteresis: 0.05,
        }
    }
}

impl BandwidthAllocator {
    /// Reconfigures the allocator (the software interface of §4.2.2).
    ///
    /// # Errors
    ///
    /// Returns a message if a parameter is outside its valid range.
    pub fn configure(
        &mut self,
        steerable_fraction: f64,
        reallocation_period_cycles: u32,
        hysteresis: f64,
    ) -> Result<(), String> {
        if !(0.0..=1.0).contains(&steerable_fraction) {
            return Err(format!(
                "steerable fraction must be within [0, 1], got {steerable_fraction}"
            ));
        }
        if !(0.0..=1.0).contains(&hysteresis) {
            return Err(format!("hysteresis must be within [0, 1], got {hysteresis}"));
        }
        if reallocation_period_cycles == 0 {
            return Err("reallocation period must be at least one cycle".to_string());
        }
        self.steerable_fraction = steerable_fraction;
        self.reallocation_period_cycles = reallocation_period_cycles;
        self.hysteresis = hysteresis;
        Ok(())
    }

    /// Effective bandwidth gain in the busier direction given the traffic
    /// `asymmetry` (0.0 = perfectly balanced, 1.0 = all traffic one way).
    ///
    /// With balanced traffic the gain is 1.0; with fully asymmetric traffic
    /// and fully steerable links the busy direction can use both wires of
    /// each pair, a gain approaching 2.0.
    pub fn effective_bandwidth_gain(&self, asymmetry: f64) -> f64 {
        let asymmetry = asymmetry.clamp(0.0, 1.0);
        if asymmetry <= self.hysteresis {
            return 1.0;
        }
        1.0 + self.steerable_fraction * (asymmetry - self.hysteresis) / (1.0 - self.hysteresis).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_traffic_gets_no_gain() {
        let ban = BandwidthAllocator::default();
        assert_eq!(ban.effective_bandwidth_gain(0.0), 1.0);
        assert_eq!(ban.effective_bandwidth_gain(0.04), 1.0, "within hysteresis");
    }

    #[test]
    fn asymmetric_traffic_gains_up_to_double() {
        let ban = BandwidthAllocator::default();
        let g_half = ban.effective_bandwidth_gain(0.5);
        let g_full = ban.effective_bandwidth_gain(1.0);
        assert!(g_half > 1.0 && g_half < g_full);
        assert!((g_full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gain_is_monotone_in_asymmetry() {
        let ban = BandwidthAllocator::default();
        let mut last = 0.0;
        for i in 0..=10 {
            let g = ban.effective_bandwidth_gain(i as f64 / 10.0);
            assert!(g >= last);
            last = g;
        }
    }

    #[test]
    fn configure_validates_parameters() {
        let mut ban = BandwidthAllocator::default();
        assert!(ban.configure(0.5, 32, 0.1).is_ok());
        assert_eq!(ban.steerable_fraction, 0.5);
        assert!(ban.configure(1.5, 32, 0.1).is_err());
        assert!(ban.configure(0.5, 0, 0.1).is_err());
        assert!(ban.configure(0.5, 32, 2.0).is_err());
    }

    #[test]
    fn partially_steerable_links_cap_the_gain() {
        let mut ban = BandwidthAllocator::default();
        ban.configure(0.25, 64, 0.0).unwrap();
        assert!((ban.effective_bandwidth_gain(1.0) - 1.25).abs() < 1e-9);
    }
}
