//! Express virtual channels (EVC).
//!
//! EVC lets flits attempt to bypass buffering and arbitration within a
//! router, proceeding straight to switch and link traversal (DAC 2012
//! §4.2.2, citing Chen et al., NOCS 2010). This reduces both latency and the
//! energy spent buffering flits. Angstrom augments classic EVC with a
//! software interface to the routing tables that the EVC logic uses to
//! manage virtual channels; [`ExpressVirtualChannels::set_express_route`]
//! models that interface.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Model of a router's express-virtual-channel logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpressVirtualChannels {
    /// Probability that a flit wins the bypass on a hop with no express
    /// route configured.
    pub baseline_bypass_probability: f64,
    /// Probability that a flit wins the bypass on a hop covered by a
    /// software-configured express route.
    pub express_bypass_probability: f64,
    /// Fraction of router energy spent on buffering/arbitration that the
    /// bypass avoids.
    pub buffering_energy_fraction: f64,
    /// Cycles spent in a router when the bypass succeeds.
    pub bypass_cycles: f64,
    express_routes: BTreeSet<(usize, usize)>,
}

impl Default for ExpressVirtualChannels {
    fn default() -> Self {
        ExpressVirtualChannels {
            baseline_bypass_probability: 0.3,
            express_bypass_probability: 0.85,
            buffering_energy_fraction: 0.4,
            bypass_cycles: 1.0,
            express_routes: BTreeSet::new(),
        }
    }
}

impl ExpressVirtualChannels {
    /// Declares (or removes) an express route between a source/destination
    /// tile pair — the software interface to the EVC routing tables.
    pub fn set_express_route(&mut self, src: usize, dst: usize, enabled: bool) {
        if enabled {
            self.express_routes.insert((src, dst));
        } else {
            self.express_routes.remove(&(src, dst));
        }
    }

    /// Number of express routes currently configured by software.
    pub fn express_route_count(&self) -> usize {
        self.express_routes.len()
    }

    /// Whether a particular source/destination pair has an express route.
    pub fn has_express_route(&self, src: usize, dst: usize) -> bool {
        self.express_routes.contains(&(src, dst))
    }

    /// Effective bypass probability for the network as a whole: baseline if
    /// no routes are configured, express probability once software has set
    /// routes up (modelling that software targets the dominant flows).
    pub fn effective_bypass_probability(&self) -> f64 {
        if self.express_routes.is_empty() {
            self.baseline_bypass_probability
        } else {
            self.express_bypass_probability
        }
    }

    /// Expected per-hop latency in cycles given the full router pipeline
    /// costs `router_cycles` and the link costs `link_cycles`.
    pub fn effective_hop_cycles(&self, router_cycles: f64, link_cycles: f64) -> f64 {
        let p = self.effective_bypass_probability();
        let router = p * self.bypass_cycles + (1.0 - p) * router_cycles;
        router + link_cycles
    }

    /// Fraction of full-router energy a flit pays per hop on average.
    pub fn energy_fraction(&self) -> f64 {
        let p = self.effective_bypass_probability();
        1.0 - p * self.buffering_energy_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_reduces_hop_latency() {
        let evc = ExpressVirtualChannels::default();
        let with = evc.effective_hop_cycles(3.0, 1.0);
        assert!(with < 4.0);
        assert!(with > 1.0 + evc.bypass_cycles - 1e-9);
    }

    #[test]
    fn software_routes_raise_bypass_probability() {
        let mut evc = ExpressVirtualChannels::default();
        let before = evc.effective_bypass_probability();
        evc.set_express_route(0, 12, true);
        assert!(evc.has_express_route(0, 12));
        assert_eq!(evc.express_route_count(), 1);
        assert!(evc.effective_bypass_probability() > before);
        let hop_before = ExpressVirtualChannels::default().effective_hop_cycles(3.0, 1.0);
        assert!(evc.effective_hop_cycles(3.0, 1.0) < hop_before);
        evc.set_express_route(0, 12, false);
        assert!(!evc.has_express_route(0, 12));
        assert_eq!(evc.effective_bypass_probability(), before);
    }

    #[test]
    fn energy_fraction_is_below_one_and_positive() {
        let mut evc = ExpressVirtualChannels::default();
        let baseline = evc.energy_fraction();
        assert!(baseline < 1.0 && baseline > 0.0);
        evc.set_express_route(1, 2, true);
        assert!(evc.energy_fraction() < baseline);
    }
}
