//! Application-aware oblivious routing (AOR).
//!
//! AOR produces deadlock-free routes that maximise satisfaction of the
//! application's flow demands, beating traditional oblivious routing because
//! the optimisation uses global application knowledge while the router stays
//! simple — routes live in a table (DAC 2012 §4.2.2, citing Kinsy et al.,
//! ISCA 2009). Angstrom performs the route computation *online* by exposing
//! the routing table to software; [`RoutingTable::application_aware`] is that
//! computation and [`crate::noc::NocModel::install_routing_table`] is the
//! exposure.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use super::MeshTopology;

/// A set of flow demands between tiles: `(source, destination, rate)` with
/// rate in flits per cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    flows: Vec<(usize, usize, f64)>,
    tiles: usize,
}

impl TrafficMatrix {
    /// Creates a traffic matrix from explicit flows.
    pub fn from_flows(tiles: usize, flows: Vec<(usize, usize, f64)>) -> Self {
        TrafficMatrix { flows, tiles }
    }

    /// Uniform random traffic: every ordered pair exchanges the same demand.
    pub fn uniform(tiles: usize) -> Self {
        let mut flows = Vec::new();
        if tiles > 1 {
            let rate = 1.0 / (tiles * (tiles - 1)) as f64;
            for s in 0..tiles {
                for d in 0..tiles {
                    if s != d {
                        flows.push((s, d, rate));
                    }
                }
            }
        }
        TrafficMatrix { flows, tiles }
    }

    /// Hotspot traffic: `hot_fraction` of all demand targets tile `hotspot`,
    /// the rest is uniform.
    pub fn hotspot(tiles: usize, hotspot: usize, hot_fraction: f64) -> Self {
        let mut matrix = TrafficMatrix::uniform(tiles);
        for flow in &mut matrix.flows {
            flow.2 *= 1.0 - hot_fraction;
        }
        if tiles > 1 {
            let hot_rate = hot_fraction / (tiles - 1) as f64;
            for s in 0..tiles {
                if s != hotspot {
                    matrix.flows.push((s, hotspot, hot_rate));
                }
            }
        }
        matrix
    }

    /// Nearest-neighbour traffic (each tile talks to the next tile index),
    /// typical of stencil and boundary-exchange phases.
    pub fn neighbor(tiles: usize) -> Self {
        let mut flows = Vec::new();
        if tiles > 1 {
            let rate = 1.0 / tiles as f64;
            for s in 0..tiles {
                flows.push((s, (s + 1) % tiles, rate));
            }
        }
        TrafficMatrix { flows, tiles }
    }

    /// Number of tiles the matrix covers.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// The individual flows.
    pub fn flows(&self) -> &[(usize, usize, f64)] {
        &self.flows
    }

    /// Total offered demand in flits per cycle.
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.2).sum()
    }

    /// Directional asymmetry of the demand in `[0, 1]`: 0 when for every
    /// flow there is equal demand in the opposite direction, approaching 1
    /// when all demand moves one way (the situation BAN exploits).
    pub fn asymmetry(&self) -> f64 {
        let mut net: HashMap<(usize, usize), f64> = HashMap::new();
        let mut gross = 0.0;
        for &(s, d, rate) in &self.flows {
            gross += rate;
            let key = if s < d { (s, d) } else { (d, s) };
            let sign = if s < d { 1.0 } else { -1.0 };
            *net.entry(key).or_insert(0.0) += sign * rate;
        }
        if gross <= 0.0 {
            return 0.0;
        }
        let net_total: f64 = net.values().map(|v| v.abs()).sum();
        (net_total / gross).clamp(0.0, 1.0)
    }
}

/// Routing algorithm family used to build a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Dimension-ordered XY routing (the non-adaptive baseline).
    DimensionOrderedXy,
    /// Application-aware oblivious routing over the XY/YX route pair.
    ApplicationAware,
}

/// A per-flow routing table: for each flow, the fraction routed XY-first
/// (the remainder goes YX-first). Restricting routes to the XY/YX pair keeps
/// the table deadlock-free with two virtual channel classes, as in the O1TURN
/// family of oblivious routers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    topology: MeshTopology,
    algorithm: RoutingAlgorithm,
    /// Map from (src, dst) to the fraction of that flow routed XY-first.
    xy_fraction: HashMap<(usize, usize), f64>,
}

impl RoutingTable {
    /// Plain dimension-ordered XY routing (every flow 100 % XY-first).
    pub fn xy(topology: MeshTopology) -> Self {
        RoutingTable {
            topology,
            algorithm: RoutingAlgorithm::DimensionOrderedXy,
            xy_fraction: HashMap::new(),
        }
    }

    /// Computes an application-aware table for `traffic` by greedily
    /// assigning each flow (largest demand first) to whichever of its two
    /// deadlock-free routes (XY-first or YX-first) currently has the lighter
    /// maximum link load.
    pub fn application_aware(topology: MeshTopology, traffic: &TrafficMatrix) -> Self {
        let mut loads: HashMap<(usize, usize), f64> = HashMap::new();
        let mut xy_fraction = HashMap::new();
        let mut flows = traffic.flows().to_vec();
        flows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        for (s, d, rate) in flows {
            if s == d || rate <= 0.0 {
                continue;
            }
            let xy_links = route_links(topology, s, d, true);
            let yx_links = route_links(topology, s, d, false);
            let max_after = |links: &[(usize, usize)]| {
                links
                    .iter()
                    .map(|l| loads.get(l).copied().unwrap_or(0.0) + rate)
                    .fold(0.0_f64, f64::max)
            };
            let use_xy = max_after(&xy_links) <= max_after(&yx_links);
            let chosen = if use_xy { &xy_links } else { &yx_links };
            for link in chosen {
                *loads.entry(*link).or_insert(0.0) += rate;
            }
            xy_fraction.insert((s, d), if use_xy { 1.0 } else { 0.0 });
        }
        let candidate = RoutingTable {
            topology,
            algorithm: RoutingAlgorithm::ApplicationAware,
            xy_fraction,
        };
        // The routing software has global knowledge: if the greedy assignment
        // ends up with a more congested worst channel than plain XY would
        // give, it keeps the XY table instead (the computation is still
        // application-aware — it just concluded XY is already optimal).
        let xy = RoutingTable::xy(topology);
        if candidate.load_balance_factor(traffic) <= xy.load_balance_factor(traffic) {
            candidate
        } else {
            RoutingTable {
                algorithm: RoutingAlgorithm::ApplicationAware,
                ..xy
            }
        }
    }

    /// The algorithm that produced this table.
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// Fraction of the `(src, dst)` flow routed XY-first.
    pub fn xy_fraction(&self, src: usize, dst: usize) -> f64 {
        self.xy_fraction.get(&(src, dst)).copied().unwrap_or(1.0)
    }

    /// Ratio of the maximum directed-link load to the mean load over every
    /// directed link of the mesh under `traffic` (≥ 1.0). Lower is better:
    /// values near 1.0 mean the channels share the traffic evenly; large
    /// values mean a few channels serialise the application's traffic.
    ///
    /// Because XY-first and YX-first routes of a flow traverse the same
    /// number of links, the denominator is identical for every table over
    /// the same traffic, so comparing tables compares their worst channel.
    pub fn load_balance_factor(&self, traffic: &TrafficMatrix) -> f64 {
        let mut loads: HashMap<(usize, usize), f64> = HashMap::new();
        let mut total_link_load = 0.0;
        for &(s, d, rate) in traffic.flows() {
            if s == d || rate <= 0.0 {
                continue;
            }
            let f_xy = self.xy_fraction(s, d);
            for (links, share) in [
                (route_links(self.topology, s, d, true), f_xy),
                (route_links(self.topology, s, d, false), 1.0 - f_xy),
            ] {
                if share <= 0.0 {
                    continue;
                }
                for link in links {
                    *loads.entry(link).or_insert(0.0) += rate * share;
                    total_link_load += rate * share;
                }
            }
        }
        if loads.is_empty() {
            return 1.0;
        }
        let max = loads.values().fold(0.0_f64, |a, &b| a.max(b));
        let directed_links = (2 * (self.topology.width * (self.topology.height - 1)
            + self.topology.height * (self.topology.width - 1)))
            .max(1);
        let mean = total_link_load / directed_links as f64;
        if mean <= 0.0 {
            1.0
        } else {
            (max / mean).max(1.0)
        }
    }
}

/// The directed physical links used by the XY-first (or YX-first) route from
/// `s` to `d`. The two route families form the deadlock-free O1TURN-style
/// pair the table chooses between.
fn route_links(topology: MeshTopology, s: usize, d: usize, xy_first: bool) -> Vec<(usize, usize)> {
    let w = topology.width;
    let (sx, sy) = (s % w, s / w);
    let (dx, dy) = (d % w, d / w);
    let mut links = Vec::new();
    let push_x = |links: &mut Vec<(usize, usize)>, y: usize| {
        let (mut x, step): (isize, isize) = if dx >= sx { (sx as isize, 1) } else { (sx as isize, -1) };
        while x != dx as isize {
            let from = y * w + x as usize;
            let to = y * w + (x + step) as usize;
            links.push((from, to));
            x += step;
        }
    };
    let push_y = |links: &mut Vec<(usize, usize)>, x: usize| {
        let (mut y, step): (isize, isize) = if dy >= sy { (sy as isize, 1) } else { (sy as isize, -1) };
        while y != dy as isize {
            let from = y as usize * w + x;
            let to = (y + step) as usize * w + x;
            links.push((from, to));
            y += step;
        }
    };
    if xy_first {
        push_x(&mut links, sy);
        push_y(&mut links, dx);
    } else {
        push_y(&mut links, sx);
        push_x(&mut links, dy);
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_sums_to_unit_demand() {
        let traffic = TrafficMatrix::uniform(16);
        assert!((traffic.total_demand() - 1.0).abs() < 1e-9);
        assert_eq!(traffic.tiles(), 16);
        assert!(traffic.asymmetry() < 1e-9, "uniform traffic is symmetric");
    }

    #[test]
    fn hotspot_traffic_is_asymmetric() {
        let uniform = TrafficMatrix::uniform(16);
        let hotspot = TrafficMatrix::hotspot(16, 0, 0.5);
        assert!(hotspot.asymmetry() > uniform.asymmetry());
        assert!((hotspot.total_demand() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn neighbor_traffic_has_one_flow_per_tile() {
        let traffic = TrafficMatrix::neighbor(8);
        assert_eq!(traffic.flows().len(), 8);
    }

    #[test]
    fn degenerate_single_tile_matrices_are_empty() {
        assert!(TrafficMatrix::uniform(1).flows().is_empty());
        assert_eq!(TrafficMatrix::uniform(1).asymmetry(), 0.0);
    }

    #[test]
    fn xy_route_links_follow_dimension_order() {
        let mesh = MeshTopology::new(4, 4);
        // Tile 0 = (0,0), tile 15 = (3,3): 3 X hops then 3 Y hops.
        let links = route_links(mesh, 0, 15, true);
        assert_eq!(links.len(), 6);
        assert_eq!(links[0], (0, 1));
        assert_eq!(links[2], (2, 3));
        assert_eq!(links[3], (3, 7));
        let yx = route_links(mesh, 0, 15, false);
        assert_eq!(yx.len(), 6);
        assert_eq!(yx[0], (0, 4));
    }

    #[test]
    fn application_aware_routing_balances_hotspot_load() {
        let mesh = MeshTopology::new(8, 8);
        let traffic = TrafficMatrix::hotspot(mesh.routers(), 0, 0.5);
        let xy = RoutingTable::xy(mesh);
        let aor = RoutingTable::application_aware(mesh, &traffic);
        assert_eq!(aor.algorithm(), RoutingAlgorithm::ApplicationAware);
        assert!(
            aor.load_balance_factor(&traffic) <= xy.load_balance_factor(&traffic) + 1e-9,
            "AOR must not be worse than XY on its own objective"
        );
    }

    #[test]
    fn load_balance_factor_is_at_least_one() {
        let mesh = MeshTopology::new(4, 4);
        let table = RoutingTable::xy(mesh);
        for traffic in [
            TrafficMatrix::uniform(16),
            TrafficMatrix::hotspot(16, 3, 0.8),
            TrafficMatrix::neighbor(16),
            TrafficMatrix::from_flows(16, vec![]),
        ] {
            assert!(table.load_balance_factor(&traffic) >= 1.0);
        }
    }

    #[test]
    fn default_xy_fraction_is_one() {
        let mesh = MeshTopology::new(4, 4);
        let table = RoutingTable::xy(mesh);
        assert_eq!(table.xy_fraction(0, 5), 1.0);
        assert_eq!(table.algorithm(), RoutingAlgorithm::DimensionOrderedXy);
    }
}
