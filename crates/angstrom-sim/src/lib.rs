//! # Angstrom manycore architectural simulator
//!
//! An analytical, cycle-approximate model of the Angstrom processor described
//! in *Self-aware Computing in the Angstrom Processor* (DAC 2012, §4). It
//! plays the role the Graphite simulator plays in the paper's evaluation:
//! given a description of application demand and a hardware configuration, it
//! reports execution time, energy, and the contents of the observability
//! surface (performance counters, event probes, sensors) that the SEEC
//! runtime consumes.
//!
//! ## What is modelled
//!
//! * **Tiles** — a main core with an in-order pipeline model, a private
//!   reconfigurable L1/L2 cache built from voltage-scalable SRAM, a mesh
//!   router, a low-power *partner core*, performance counters, event probes,
//!   and sensors ([`tile`], [`partner`], [`counters`], [`probes`],
//!   [`sensors`]).
//! * **Intra-core adaptation** — per-core DVFS operating points ([`dvfs`])
//!   and cache way/set disabling ([`cache`]).
//! * **Inter-core adaptation** — express virtual channels, bandwidth-adaptive
//!   links, and application-aware oblivious routing in the on-chip network
//!   ([`noc`]), plus directory / shared-NUCA / ARCc-adaptive cache coherence
//!   ([`coherence`]).
//! * **Energy** — dynamic and leakage energy for cores, caches, network, and
//!   partner cores ([`energy`]).
//! * **Chip** — [`chip::AngstromChip`] ties the pieces together and executes
//!   [`workload::WorkloadDemand`] quanta under a [`chip::ChipConfiguration`].
//!
//! ```
//! use angstrom_sim::chip::{AngstromChip, ChipConfiguration};
//! use angstrom_sim::config::ChipConfig;
//! use angstrom_sim::workload::WorkloadDemand;
//!
//! let mut chip = AngstromChip::new(ChipConfig::angstrom_256());
//! let demand = WorkloadDemand::builder()
//!     .instructions(2.0e9)
//!     .parallel_fraction(0.95)
//!     .working_set_bytes(8.0 * 1024.0 * 1024.0)
//!     .build();
//! let report = chip.execute(&demand, &ChipConfiguration::default_for(chip.config()));
//! assert!(report.seconds > 0.0);
//! assert!(report.energy_joules > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod chip;
pub mod coherence;
pub mod config;
pub mod counters;
pub mod dvfs;
pub mod energy;
pub mod noc;
pub mod partner;
pub mod probes;
pub mod sensors;
pub mod sram;
pub mod tile;
pub mod workload;

pub use chip::{AngstromChip, ChipConfiguration, ExecutionReport};
pub use config::ChipConfig;
pub use workload::WorkloadDemand;
