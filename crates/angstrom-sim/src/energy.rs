//! Chip-level energy accounting.
//!
//! Every component model reports energy in joules; this module aggregates
//! them into the breakdown Angstrom's energy counters expose to the SEEC
//! runtime (DAC 2012 §4.1).

use serde::{Deserialize, Serialize};

/// Energy consumed by each part of the chip over some interval, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic (switching) energy of the allocated main cores.
    pub core_dynamic: f64,
    /// Leakage energy of the allocated main cores.
    pub core_leakage: f64,
    /// Dynamic energy of cache accesses.
    pub cache_dynamic: f64,
    /// Leakage energy of the enabled cache arrays.
    pub cache_leakage: f64,
    /// Network energy (flit transport).
    pub network: f64,
    /// Partner-core energy (decision making plus idle leakage).
    pub partner: f64,
    /// Leakage of unallocated (idle) tiles that remain powered.
    pub idle_tiles: f64,
}

impl EnergyBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Total energy across every component, in joules.
    pub fn total(&self) -> f64 {
        self.core_dynamic
            + self.core_leakage
            + self.cache_dynamic
            + self.cache_leakage
            + self.network
            + self.partner
            + self.idle_tiles
    }

    /// Average power over `seconds`, in watts.
    ///
    /// Returns 0.0 for a non-positive interval.
    pub fn average_power(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.total() / seconds
        } else {
            0.0
        }
    }

    /// Component-wise sum of two breakdowns.
    pub fn combined(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            core_dynamic: self.core_dynamic + other.core_dynamic,
            core_leakage: self.core_leakage + other.core_leakage,
            cache_dynamic: self.cache_dynamic + other.cache_dynamic,
            cache_leakage: self.cache_leakage + other.cache_leakage,
            network: self.network + other.network,
            partner: self.partner + other.partner,
            idle_tiles: self.idle_tiles + other.idle_tiles,
        }
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self.combined(&rhs)
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> Self {
        iter.fold(EnergyBreakdown::default(), |acc, x| acc.combined(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            core_dynamic: 1.0,
            core_leakage: 0.5,
            cache_dynamic: 0.25,
            cache_leakage: 0.25,
            network: 0.5,
            partner: 0.1,
            idle_tiles: 0.4,
        }
    }

    #[test]
    fn total_sums_every_component() {
        assert!((sample().total() - 3.0).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::new().total(), 0.0);
    }

    #[test]
    fn average_power_divides_by_time() {
        assert!((sample().average_power(2.0) - 1.5).abs() < 1e-12);
        assert_eq!(sample().average_power(0.0), 0.0);
        assert_eq!(sample().average_power(-1.0), 0.0);
    }

    #[test]
    fn breakdowns_combine_component_wise() {
        let a = sample();
        let b = sample();
        let c = a + b;
        assert!((c.total() - 6.0).abs() < 1e-12);
        assert!((c.core_dynamic - 2.0).abs() < 1e-12);
        let summed: EnergyBreakdown = vec![sample(), sample(), sample()].into_iter().sum();
        assert!((summed.total() - 9.0).abs() < 1e-12);
    }
}
