//! Voltage-scalable SRAM model for Angstrom's on-chip caches.
//!
//! Conventional 6T SRAM cells become unstable below roughly 0.7 V; Angstrom
//! caches therefore use alternative bit-cell topologies and peripheral assist
//! circuits (DAC 2012 §4.2.1, citing Calhoun & Chandrakasan ISSCC 2006,
//! Chang et al. VLSI 2005, Kim et al. ISSCC 2007, Sinangil et al. ISSCC
//! 2011) to keep operating down to near- and sub-threshold voltages. This
//! module models the stability limit, access energy, and leakage of each
//! topology so the cache and energy models can account for low-voltage
//! operation.

use serde::{Deserialize, Serialize};

/// SRAM bit-cell topology / assist-circuit family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SramTopology {
    /// Conventional high-density 6T cell: smallest, but unstable below ~0.7 V.
    Conventional6T,
    /// 8T cell with decoupled read port: stable to ~0.5 V at ~30 % area cost.
    EightT,
    /// Sub-threshold cell with peripheral assists (virtual-ground replica,
    /// optimised peripherals): stable to ~0.35 V at ~80 % area cost.
    SubThresholdAssist,
}

impl SramTopology {
    /// Minimum supply voltage at which reads and writes remain stable, in volts.
    pub fn min_stable_voltage(self) -> f64 {
        match self {
            SramTopology::Conventional6T => 0.70,
            SramTopology::EightT => 0.50,
            SramTopology::SubThresholdAssist => 0.35,
        }
    }

    /// Cell area relative to the conventional 6T cell.
    pub fn relative_area(self) -> f64 {
        match self {
            SramTopology::Conventional6T => 1.0,
            SramTopology::EightT => 1.3,
            SramTopology::SubThresholdAssist => 1.8,
        }
    }
}

/// Analytical SRAM array model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    /// Bit-cell topology of the array.
    pub topology: SramTopology,
    /// Energy per 64-byte access at 0.8 V, in joules.
    pub access_energy_at_nominal: f64,
    /// Leakage power per kilobyte at 0.8 V, in watts.
    pub leakage_per_kb_at_nominal: f64,
}

impl Default for SramModel {
    fn default() -> Self {
        SramModel {
            topology: SramTopology::SubThresholdAssist,
            // ~20 pJ per 64-byte line access at nominal voltage.
            access_energy_at_nominal: 20.0e-12,
            // ~0.15 mW of leakage per KB at nominal voltage: large enabled
            // arrays cost real power, which is what makes way/set disabling
            // (DAC 2012 §4.2.1) worth exposing to the runtime.
            leakage_per_kb_at_nominal: 1.5e-4,
        }
    }
}

impl SramModel {
    /// Creates a model for a particular topology with default energy numbers.
    pub fn with_topology(topology: SramTopology) -> Self {
        SramModel {
            topology,
            ..SramModel::default()
        }
    }

    /// Whether the array operates reliably at `voltage`.
    pub fn is_stable_at(&self, voltage: f64) -> bool {
        voltage >= self.topology.min_stable_voltage()
    }

    /// Energy of one 64-byte access at `voltage`, in joules.
    ///
    /// Dynamic access energy scales as V²; below the stability limit the
    /// access still costs energy but [`Self::is_stable_at`] reports `false`.
    pub fn access_energy(&self, voltage: f64) -> f64 {
        let v_ratio = voltage / 0.8;
        self.access_energy_at_nominal * v_ratio * v_ratio
    }

    /// Leakage power of `kilobytes` of enabled array at `voltage`, in watts.
    ///
    /// Leakage falls super-linearly (but not for free) with voltage, which is
    /// why disabling unused sets and ways still matters at low voltage.
    pub fn leakage_power(&self, kilobytes: f64, voltage: f64) -> f64 {
        let v_ratio = voltage / 0.8;
        self.leakage_per_kb_at_nominal * kilobytes * v_ratio.powf(2.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_limits_are_ordered_by_topology() {
        assert!(
            SramTopology::SubThresholdAssist.min_stable_voltage()
                < SramTopology::EightT.min_stable_voltage()
        );
        assert!(
            SramTopology::EightT.min_stable_voltage()
                < SramTopology::Conventional6T.min_stable_voltage()
        );
    }

    #[test]
    fn area_cost_rises_with_robustness() {
        assert!(SramTopology::Conventional6T.relative_area() < SramTopology::EightT.relative_area());
        assert!(SramTopology::EightT.relative_area() < SramTopology::SubThresholdAssist.relative_area());
    }

    #[test]
    fn conventional_6t_fails_at_angstrom_low_voltage() {
        let model = SramModel::with_topology(SramTopology::Conventional6T);
        assert!(!model.is_stable_at(0.4));
        assert!(model.is_stable_at(0.8));
        let assisted = SramModel::default();
        assert!(assisted.is_stable_at(0.4));
    }

    #[test]
    fn access_energy_scales_quadratically_with_voltage() {
        let model = SramModel::default();
        let half = model.access_energy(0.4);
        let full = model.access_energy(0.8);
        assert!((full / half - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_capacity_and_voltage() {
        let model = SramModel::default();
        assert!(model.leakage_power(256.0, 0.8) > model.leakage_power(64.0, 0.8));
        assert!(model.leakage_power(64.0, 0.4) < model.leakage_power(64.0, 0.8));
    }
}
