//! Adaptive cache coherence: directory, shared-NUCA, and ARCc-style selection.
//!
//! For some applications directory-based coherence over private caches gives
//! the best performance and energy; for others a shared-NUCA organisation is
//! better because it pools cache capacity and cuts off-chip accesses
//! (DAC 2012 §4.2.2, citing Gupta et al. ICPP 1990, Kim et al. ASPLOS 2002).
//! The ARCc architecture combines both protocols and selects per application
//! (Khan et al., ICCD 2011); Angstrom adopts that approach and exposes the
//! selection to SEEC. [`CoherenceModel::evaluate`] returns the memory-system
//! costs of each choice so the runtime (or the chip model) can pick.

use serde::{Deserialize, Serialize};

use crate::cache::miss_rate_for_capacity;

/// The coherence protocol in force for an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherenceProtocol {
    /// Directory-based coherence over private per-tile caches.
    Directory,
    /// Shared non-uniform cache access: per-tile slices form one shared cache.
    SharedNuca,
    /// ARCc-style adaptive selection: per application, whichever of the two
    /// protocols yields the lower average memory penalty.
    Adaptive,
}

impl std::fmt::Display for CoherenceProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CoherenceProtocol::Directory => "directory",
            CoherenceProtocol::SharedNuca => "shared-nuca",
            CoherenceProtocol::Adaptive => "adaptive (ARCc)",
        };
        f.write_str(name)
    }
}

/// Inputs to the coherence cost model for one application quantum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceInputs {
    /// Cores allocated to the application.
    pub cores: usize,
    /// Enabled private cache capacity per core, in kilobytes.
    pub cache_per_core_kb: f64,
    /// Application working set, in kilobytes.
    pub working_set_kb: f64,
    /// Locality exponent of the miss-rate curve.
    pub locality_exponent: f64,
    /// Fraction of memory operations touching shared data.
    pub sharing_fraction: f64,
    /// Average network hop count between tiles.
    pub average_hops: f64,
    /// Per-hop network latency, in core cycles.
    pub hop_cycles: f64,
    /// Off-chip (DRAM) access latency, in core cycles.
    pub offchip_cycles: f64,
}

/// Memory-system costs of running under one protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceCosts {
    /// Protocol these costs correspond to (never [`CoherenceProtocol::Adaptive`]).
    pub protocol: CoherenceProtocol,
    /// Average penalty per memory operation, in core cycles.
    pub avg_penalty_cycles: f64,
    /// Fraction of memory operations that leave the chip.
    pub offchip_rate: f64,
    /// Network flits injected per memory operation (coherence traffic).
    pub flits_per_memory_op: f64,
}

/// Analytical coherence cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceModel {
    /// Cycles for a directory lookup (beyond the network round trip).
    pub directory_access_cycles: f64,
    /// Flits per cache-line transfer (data + control).
    pub flits_per_line: f64,
    /// Extra invalidation traffic per shared write, in flits.
    pub invalidation_flits: f64,
}

impl Default for CoherenceModel {
    fn default() -> Self {
        CoherenceModel {
            directory_access_cycles: 10.0,
            flits_per_line: 5.0,
            invalidation_flits: 2.0,
        }
    }
}

impl CoherenceModel {
    /// Costs of running under directory coherence with private caches.
    pub fn directory_costs(&self, inputs: &CoherenceInputs) -> CoherenceCosts {
        let private_miss = miss_rate_for_capacity(
            inputs.cache_per_core_kb,
            per_core_working_set(inputs),
            inputs.locality_exponent,
        );
        // A private miss goes to the directory; it is served on chip if some
        // other private cache holds the line (likely for shared data), and
        // off chip otherwise.
        let on_chip_serve_prob = inputs.sharing_fraction.clamp(0.0, 1.0) * 0.8;
        let network_round_trip = 2.0 * inputs.average_hops * inputs.hop_cycles;
        let on_chip_penalty = network_round_trip + self.directory_access_cycles;
        let off_chip_penalty = on_chip_penalty + inputs.offchip_cycles;
        let offchip_rate = private_miss * (1.0 - on_chip_serve_prob);
        let avg_penalty_cycles = private_miss
            * (on_chip_serve_prob * on_chip_penalty + (1.0 - on_chip_serve_prob) * off_chip_penalty)
            // Invalidation latency on writes to shared lines (partially hidden).
            + inputs.sharing_fraction * 0.3 * inputs.average_hops * inputs.hop_cycles * 0.25;
        let flits_per_memory_op = private_miss * self.flits_per_line
            + inputs.sharing_fraction * 0.3 * self.invalidation_flits;
        CoherenceCosts {
            protocol: CoherenceProtocol::Directory,
            avg_penalty_cycles,
            offchip_rate,
            flits_per_memory_op,
        }
    }

    /// Costs of running under a shared-NUCA organisation.
    pub fn shared_nuca_costs(&self, inputs: &CoherenceInputs) -> CoherenceCosts {
        let pooled_capacity = inputs.cache_per_core_kb * inputs.cores.max(1) as f64;
        let shared_miss = miss_rate_for_capacity(
            pooled_capacity,
            inputs.working_set_kb,
            inputs.locality_exponent,
        );
        // Every L2 access traverses the network to the home slice.
        let slice_trip = inputs.average_hops * inputs.hop_cycles;
        // A small local-slice hit probability keeps one-core NUCA sensible.
        let remote_prob = 1.0 - 1.0 / inputs.cores.max(1) as f64;
        let access_penalty = remote_prob * 2.0 * slice_trip;
        let avg_penalty_cycles = access_penalty + shared_miss * inputs.offchip_cycles;
        let flits_per_memory_op =
            remote_prob * self.flits_per_line + shared_miss * self.flits_per_line;
        CoherenceCosts {
            protocol: CoherenceProtocol::SharedNuca,
            avg_penalty_cycles,
            offchip_rate: shared_miss,
            flits_per_memory_op,
        }
    }

    /// Costs under `protocol`, resolving [`CoherenceProtocol::Adaptive`] to
    /// whichever concrete protocol has the lower average penalty (the ARCc
    /// selection rule).
    pub fn evaluate(&self, protocol: CoherenceProtocol, inputs: &CoherenceInputs) -> CoherenceCosts {
        match protocol {
            CoherenceProtocol::Directory => self.directory_costs(inputs),
            CoherenceProtocol::SharedNuca => self.shared_nuca_costs(inputs),
            CoherenceProtocol::Adaptive => {
                let dir = self.directory_costs(inputs);
                let nuca = self.shared_nuca_costs(inputs);
                if dir.avg_penalty_cycles <= nuca.avg_penalty_cycles {
                    dir
                } else {
                    nuca
                }
            }
        }
    }
}

/// The slice of the working set a single private cache must capture.
///
/// Data-parallel applications partition most of their data, but shared
/// structures are replicated across private caches, so the per-core footprint
/// shrinks more slowly than `1 / cores`.
fn per_core_working_set(inputs: &CoherenceInputs) -> f64 {
    let cores = inputs.cores.max(1) as f64;
    let partitioned = (1.0 - inputs.sharing_fraction) * inputs.working_set_kb / cores;
    let replicated = inputs.sharing_fraction * inputs.working_set_kb;
    partitioned + replicated
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> CoherenceInputs {
        CoherenceInputs {
            cores: 64,
            cache_per_core_kb: 64.0,
            working_set_kb: 16.0 * 1024.0,
            locality_exponent: 0.5,
            sharing_fraction: 0.2,
            average_hops: 5.0,
            hop_cycles: 4.0,
            offchip_cycles: 200.0,
        }
    }

    #[test]
    fn shared_nuca_wins_for_large_working_sets() {
        let model = CoherenceModel::default();
        let mut inputs = base_inputs();
        inputs.working_set_kb = 64.0 * 1024.0; // far exceeds private capacity
        let dir = model.directory_costs(&inputs);
        let nuca = model.shared_nuca_costs(&inputs);
        assert!(
            nuca.offchip_rate < dir.offchip_rate,
            "pooled capacity must cut off-chip misses"
        );
        let adaptive = model.evaluate(CoherenceProtocol::Adaptive, &inputs);
        assert!(adaptive.avg_penalty_cycles <= dir.avg_penalty_cycles);
        assert!(adaptive.avg_penalty_cycles <= nuca.avg_penalty_cycles);
    }

    #[test]
    fn directory_wins_for_small_private_working_sets() {
        let model = CoherenceModel::default();
        let mut inputs = base_inputs();
        inputs.working_set_kb = 256.0; // fits comfortably in private caches
        inputs.sharing_fraction = 0.05;
        let dir = model.directory_costs(&inputs);
        let nuca = model.shared_nuca_costs(&inputs);
        assert!(dir.avg_penalty_cycles < nuca.avg_penalty_cycles);
        let adaptive = model.evaluate(CoherenceProtocol::Adaptive, &inputs);
        assert_eq!(adaptive.protocol, CoherenceProtocol::Directory);
    }

    #[test]
    fn adaptive_never_loses_to_either_fixed_protocol() {
        let model = CoherenceModel::default();
        for ws_kb in [128.0, 1024.0, 8192.0, 65536.0] {
            for sharing in [0.0, 0.2, 0.6] {
                let mut inputs = base_inputs();
                inputs.working_set_kb = ws_kb;
                inputs.sharing_fraction = sharing;
                let adaptive = model.evaluate(CoherenceProtocol::Adaptive, &inputs);
                let dir = model.evaluate(CoherenceProtocol::Directory, &inputs);
                let nuca = model.evaluate(CoherenceProtocol::SharedNuca, &inputs);
                assert!(adaptive.avg_penalty_cycles <= dir.avg_penalty_cycles + 1e-9);
                assert!(adaptive.avg_penalty_cycles <= nuca.avg_penalty_cycles + 1e-9);
            }
        }
    }

    #[test]
    fn more_cores_shrink_per_core_working_set_but_not_shared_part() {
        let mut inputs = base_inputs();
        inputs.sharing_fraction = 0.5;
        inputs.cores = 1;
        let single = per_core_working_set(&inputs);
        inputs.cores = 64;
        let many = per_core_working_set(&inputs);
        assert!(many < single);
        assert!(many >= 0.5 * inputs.working_set_kb, "shared data is replicated");
    }

    #[test]
    fn costs_are_finite_and_non_negative() {
        let model = CoherenceModel::default();
        let inputs = base_inputs();
        for proto in [
            CoherenceProtocol::Directory,
            CoherenceProtocol::SharedNuca,
            CoherenceProtocol::Adaptive,
        ] {
            let costs = model.evaluate(proto, &inputs);
            assert!(costs.avg_penalty_cycles.is_finite() && costs.avg_penalty_cycles >= 0.0);
            assert!((0.0..=1.0).contains(&costs.offchip_rate));
            assert!(costs.flits_per_memory_op >= 0.0);
        }
    }

    #[test]
    fn protocol_display_names() {
        assert_eq!(CoherenceProtocol::Directory.to_string(), "directory");
        assert_eq!(CoherenceProtocol::SharedNuca.to_string(), "shared-nuca");
        assert_eq!(CoherenceProtocol::Adaptive.to_string(), "adaptive (ARCc)");
    }
}
