//! Static chip configuration: what the silicon provides.
//!
//! [`ChipConfig`] describes the *fabricated* chip — tile count, cache
//! geometry, available operating points, network features — as opposed to
//! [`crate::chip::ChipConfiguration`], which describes the *current runtime
//! choice* among the adaptations the chip exposes.

use serde::{Deserialize, Serialize};

use crate::cache::CacheGeometry;
use crate::coherence::CoherenceProtocol;
use crate::dvfs::OperatingPoint;
use crate::noc::{MeshTopology, NocFeatures};
use crate::partner::DecisionPlacement;

/// Description of a fabricated Angstrom (or Graphite-modelled) chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of tiles (main core + partner core + cache + router).
    pub tiles: usize,
    /// Mesh network topology connecting the tiles.
    pub topology: MeshTopology,
    /// Full geometry of each tile's private cache.
    pub cache_geometry: CacheGeometry,
    /// Cache capacities (KB) the reconfiguration hardware can present.
    pub cache_capacity_options_kb: Vec<f64>,
    /// Core allocation sizes the OS-level allocator can hand out.
    pub core_allocation_options: Vec<usize>,
    /// Voltage/frequency operating points each core supports.
    pub operating_points: Vec<OperatingPoint>,
    /// Adaptive network features fabricated into the chip.
    pub noc_features: NocFeatures,
    /// Coherence protocols the chip can run (the runtime choice defaults to
    /// this; [`CoherenceProtocol::Adaptive`] means ARCc hardware is present).
    pub coherence: CoherenceProtocol,
    /// Off-chip (DRAM) access latency in core cycles at the nominal point.
    pub offchip_latency_cycles: f64,
    /// Where runtime decision code executes by default.
    pub decision_placement: DecisionPlacement,
    /// Leakage of an unallocated, power-gated tile as a fraction of its
    /// full leakage (retention power).
    pub idle_tile_leakage_fraction: f64,
}

impl ChipConfig {
    /// The 256-core Angstrom configuration evaluated in the paper (§5.3):
    /// cache 32–128 KB by powers of two, cores 1–256 by powers of two, and
    /// operating points (0.4 V, 100 MHz) / (0.8 V, 500 MHz).
    pub fn angstrom_256() -> Self {
        ChipConfig {
            tiles: 256,
            topology: MeshTopology::for_tiles(256),
            cache_geometry: CacheGeometry::new(128.0, 8),
            cache_capacity_options_kb: vec![32.0, 64.0, 128.0],
            core_allocation_options: powers_of_two_up_to(256),
            operating_points: vec![OperatingPoint::low_power(), OperatingPoint::nominal()],
            noc_features: NocFeatures::default(),
            coherence: CoherenceProtocol::Adaptive,
            offchip_latency_cycles: 200.0,
            decision_placement: DecisionPlacement::PartnerCore,
            idle_tile_leakage_fraction: 0.05,
        }
    }

    /// The proposed full-scale 1000-core Angstrom design (§1). Used by
    /// examples and scalability tests; the paper's evaluation simulates the
    /// 256-core configuration above.
    pub fn angstrom_1000() -> Self {
        ChipConfig {
            tiles: 1000,
            topology: MeshTopology::for_tiles(1000),
            core_allocation_options: powers_of_two_up_to(1000),
            ..ChipConfig::angstrom_256()
        }
    }

    /// The 64-core Graphite-simulated multicore of the closed-adaptive-system
    /// experiment (§2, Figure 2): cores 1–64 and per-core L2 of 16–256 KB,
    /// both by powers of two, at a single fixed operating point.
    pub fn graphite_64() -> Self {
        ChipConfig {
            tiles: 64,
            topology: MeshTopology::for_tiles(64),
            cache_geometry: CacheGeometry::new(256.0, 8),
            cache_capacity_options_kb: vec![16.0, 32.0, 64.0, 128.0, 256.0],
            core_allocation_options: powers_of_two_up_to(64),
            operating_points: vec![OperatingPoint::new(0.9, 1.0e9)],
            noc_features: NocFeatures::baseline(),
            coherence: CoherenceProtocol::Directory,
            offchip_latency_cycles: 150.0,
            decision_placement: DecisionPlacement::MainCore,
            idle_tile_leakage_fraction: 0.05,
        }
    }

    /// Validates internal consistency (non-empty option lists, allocations
    /// within the tile count, cache options within the geometry).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiles == 0 {
            return Err("chip must have at least one tile".into());
        }
        if self.topology.routers() < self.tiles {
            return Err(format!(
                "topology provides {} routers for {} tiles",
                self.topology.routers(),
                self.tiles
            ));
        }
        if self.core_allocation_options.is_empty() {
            return Err("no core allocation options".into());
        }
        if let Some(&too_many) = self
            .core_allocation_options
            .iter()
            .find(|&&n| n == 0 || n > self.tiles)
        {
            return Err(format!(
                "core allocation option {too_many} outside 1..={}",
                self.tiles
            ));
        }
        if self.cache_capacity_options_kb.is_empty() {
            return Err("no cache capacity options".into());
        }
        if let Some(&too_big) = self
            .cache_capacity_options_kb
            .iter()
            .find(|&&kb| kb <= 0.0 || kb > self.cache_geometry.capacity_kb)
        {
            return Err(format!(
                "cache capacity option {too_big} KB outside (0, {}] KB",
                self.cache_geometry.capacity_kb
            ));
        }
        if self.operating_points.is_empty() {
            return Err("no operating points".into());
        }
        if !(0.0..=1.0).contains(&self.idle_tile_leakage_fraction) {
            return Err("idle tile leakage fraction must be within [0, 1]".into());
        }
        Ok(())
    }
}

fn powers_of_two_up_to(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut n = 1usize;
    while n < max {
        out.push(n);
        n *= 2;
    }
    out.push(max);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ChipConfig::angstrom_256().validate().unwrap();
        ChipConfig::angstrom_1000().validate().unwrap();
        ChipConfig::graphite_64().validate().unwrap();
    }

    #[test]
    fn angstrom_256_matches_paper_parameters() {
        let cfg = ChipConfig::angstrom_256();
        assert_eq!(cfg.tiles, 256);
        assert_eq!(cfg.cache_capacity_options_kb, vec![32.0, 64.0, 128.0]);
        assert_eq!(cfg.core_allocation_options.last(), Some(&256));
        assert_eq!(cfg.core_allocation_options.first(), Some(&1));
        assert_eq!(cfg.operating_points.len(), 2);
        assert_eq!(cfg.coherence, CoherenceProtocol::Adaptive);
    }

    #[test]
    fn graphite_64_matches_figure_2_sweep() {
        let cfg = ChipConfig::graphite_64();
        assert_eq!(cfg.tiles, 64);
        assert_eq!(
            cfg.cache_capacity_options_kb,
            vec![16.0, 32.0, 64.0, 128.0, 256.0]
        );
        assert_eq!(
            cfg.core_allocation_options,
            vec![1, 2, 4, 8, 16, 32, 64]
        );
        assert_eq!(cfg.operating_points.len(), 1);
    }

    #[test]
    fn powers_of_two_handles_non_power_maxima() {
        assert_eq!(powers_of_two_up_to(1000).last(), Some(&1000));
        assert_eq!(powers_of_two_up_to(8), vec![1, 2, 4, 8]);
        assert_eq!(powers_of_two_up_to(1), vec![1]);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = ChipConfig::angstrom_256();
        cfg.core_allocation_options.push(512);
        assert!(cfg.validate().is_err());

        let mut cfg = ChipConfig::angstrom_256();
        cfg.cache_capacity_options_kb = vec![4096.0];
        assert!(cfg.validate().is_err());

        let mut cfg = ChipConfig::angstrom_256();
        cfg.operating_points.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = ChipConfig::angstrom_256();
        cfg.tiles = 0;
        assert!(cfg.validate().is_err());
    }
}
