//! Reconfigurable per-core cache model.
//!
//! Angstrom caches can disable unnecessary sets and ways to reduce power for
//! the same performance (DAC 2012 §4.2.1, citing Balasubramonian et al.,
//! MICRO 2000). The model exposes that reconfiguration surface and an
//! analytical miss-rate curve driven by the application's working set and
//! locality.

use serde::{Deserialize, Serialize};

use crate::sram::SramModel;

/// Cache line size in bytes (fixed across the chip).
pub const LINE_BYTES: f64 = 64.0;

/// Compulsory (cold) miss rate: misses that no amount of capacity removes.
const COMPULSORY_MISS_RATE: f64 = 0.002;

/// Capacity-miss rate of a core with (effectively) no cache.
const MAX_CAPACITY_MISS_RATE: f64 = 0.35;

/// Geometry of a reconfigurable cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity with everything enabled, in kilobytes.
    pub capacity_kb: f64,
    /// Associativity (number of ways).
    pub ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    pub fn new(capacity_kb: f64, ways: u32) -> Self {
        CacheGeometry { capacity_kb, ways }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> f64 {
        (self.capacity_kb * 1024.0) / (LINE_BYTES * self.ways as f64)
    }
}

/// A reconfigurable cache: ways and half/quarter/... of the sets can be
/// disabled at run time to trade capacity for power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurableCache {
    geometry: CacheGeometry,
    enabled_ways: u32,
    /// log2 of the set-reduction factor (0 = all sets, 1 = half, 2 = quarter...).
    set_reduction_log2: u32,
    sram: SramModel,
}

impl ReconfigurableCache {
    /// Creates a cache with everything enabled.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has zero ways or non-positive capacity.
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(geometry.ways > 0, "cache must have at least one way");
        assert!(
            geometry.capacity_kb > 0.0,
            "cache capacity must be positive"
        );
        ReconfigurableCache {
            geometry,
            enabled_ways: geometry.ways,
            set_reduction_log2: 0,
            sram: SramModel::default(),
        }
    }

    /// Creates a cache with a specific SRAM model (topology / energy numbers).
    pub fn with_sram(geometry: CacheGeometry, sram: SramModel) -> Self {
        let mut cache = ReconfigurableCache::new(geometry);
        cache.sram = sram;
        cache
    }

    /// The full-capacity geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The SRAM model backing the arrays.
    pub fn sram(&self) -> &SramModel {
        &self.sram
    }

    /// Currently enabled ways.
    pub fn enabled_ways(&self) -> u32 {
        self.enabled_ways
    }

    /// Current set-reduction factor (1 = all sets enabled, 2 = half, ...).
    pub fn set_reduction(&self) -> u32 {
        1 << self.set_reduction_log2
    }

    /// Enables exactly `ways` ways.
    ///
    /// # Errors
    ///
    /// Returns a message when `ways` is zero or exceeds the geometry.
    pub fn set_enabled_ways(&mut self, ways: u32) -> Result<(), String> {
        if ways == 0 || ways > self.geometry.ways {
            return Err(format!(
                "cannot enable {ways} ways of a {}-way cache",
                self.geometry.ways
            ));
        }
        self.enabled_ways = ways;
        Ok(())
    }

    /// Disables sets so that only `1 / 2^log2` of them remain active.
    ///
    /// # Errors
    ///
    /// Returns a message when the reduction would leave less than one set.
    pub fn set_set_reduction_log2(&mut self, log2: u32) -> Result<(), String> {
        let remaining_sets = self.geometry.sets() / (1u64 << log2) as f64;
        if remaining_sets < 1.0 {
            return Err(format!(
                "set reduction 2^{log2} leaves fewer than one set of {} total",
                self.geometry.sets()
            ));
        }
        self.set_reduction_log2 = log2;
        Ok(())
    }

    /// Configures the cache so its effective capacity is as close as possible
    /// to `target_kb` (never below one way and one set), using way-disabling
    /// first and then set-disabling.
    pub fn configure_capacity(&mut self, target_kb: f64) {
        let per_way_kb = self.geometry.capacity_kb / self.geometry.ways as f64;
        let mut ways = (target_kb / per_way_kb).round().clamp(1.0, self.geometry.ways as f64) as u32;
        if ways == 0 {
            ways = 1;
        }
        self.enabled_ways = ways;
        // If even a single way is too large, additionally disable sets.
        let mut reduction = 0u32;
        while reduction < 16 {
            let capacity = per_way_kb * self.enabled_ways as f64 / (1u64 << reduction) as f64;
            let next = per_way_kb * self.enabled_ways as f64 / (1u64 << (reduction + 1)) as f64;
            let remaining_sets = self.geometry.sets() / (1u64 << (reduction + 1)) as f64;
            if capacity <= target_kb * 1.01 || next < target_kb || remaining_sets < 1.0 {
                break;
            }
            reduction += 1;
        }
        self.set_reduction_log2 = reduction;
    }

    /// Effective (enabled) capacity in kilobytes.
    pub fn effective_capacity_kb(&self) -> f64 {
        self.geometry.capacity_kb * (self.enabled_ways as f64 / self.geometry.ways as f64)
            / self.set_reduction() as f64
    }

    /// Fraction of the arrays that is currently powered.
    pub fn enabled_fraction(&self) -> f64 {
        self.effective_capacity_kb() / self.geometry.capacity_kb
    }

    /// Miss rate (misses per access) for an application whose per-core
    /// working set is `working_set_kb` kilobytes with the given locality
    /// exponent (see [`miss_rate_for_capacity`]).
    pub fn miss_rate(&self, working_set_kb: f64, locality_exponent: f64) -> f64 {
        miss_rate_for_capacity(
            self.effective_capacity_kb(),
            working_set_kb,
            locality_exponent,
        )
    }

    /// Energy of `accesses` cache accesses at `voltage`, in joules.
    pub fn access_energy(&self, accesses: f64, voltage: f64) -> f64 {
        self.sram.access_energy(voltage) * accesses
    }

    /// Leakage power of the enabled portion of the arrays at `voltage`, in watts.
    pub fn leakage_power(&self, voltage: f64) -> f64 {
        self.sram
            .leakage_power(self.effective_capacity_kb(), voltage)
    }

    /// Whether the arrays operate reliably at `voltage` (see [`SramModel`]).
    pub fn is_stable_at(&self, voltage: f64) -> bool {
        self.sram.is_stable_at(voltage)
    }
}

/// Stand-alone power-law miss-rate curve used by the cache and by the
/// shared-NUCA coherence model (which pools capacity across tiles).
///
/// The curve follows the classic power law `miss ∝ capacity^(-α)`,
/// anchored so that a cache holding the entire working set sees only the
/// compulsory rate. `locality_exponent` is `α`: higher values mean the miss
/// rate climbs more steeply as capacity falls short of the working set —
/// i.e. the workload is more capacity-sensitive.
pub fn miss_rate_for_capacity(
    capacity_kb: f64,
    working_set_kb: f64,
    locality_exponent: f64,
) -> f64 {
    if working_set_kb <= 0.0 || capacity_kb >= working_set_kb {
        return COMPULSORY_MISS_RATE;
    }
    if capacity_kb <= 0.0 {
        return MAX_CAPACITY_MISS_RATE;
    }
    let alpha = locality_exponent.clamp(0.05, 3.0);
    let miss = COMPULSORY_MISS_RATE * (working_set_kb / capacity_kb).powf(alpha);
    miss.clamp(COMPULSORY_MISS_RATE, MAX_CAPACITY_MISS_RATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_256k() -> ReconfigurableCache {
        ReconfigurableCache::new(CacheGeometry::new(256.0, 8))
    }

    #[test]
    fn geometry_reports_sets() {
        let g = CacheGeometry::new(256.0, 8);
        assert!((g.sets() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn full_cache_has_full_capacity() {
        let c = cache_256k();
        assert_eq!(c.effective_capacity_kb(), 256.0);
        assert_eq!(c.enabled_fraction(), 1.0);
        assert_eq!(c.enabled_ways(), 8);
        assert_eq!(c.set_reduction(), 1);
    }

    #[test]
    fn disabling_ways_and_sets_shrinks_capacity() {
        let mut c = cache_256k();
        c.set_enabled_ways(4).unwrap();
        assert_eq!(c.effective_capacity_kb(), 128.0);
        c.set_set_reduction_log2(1).unwrap();
        assert_eq!(c.effective_capacity_kb(), 64.0);
        assert!((c.enabled_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_reconfigurations_are_rejected() {
        let mut c = cache_256k();
        assert!(c.set_enabled_ways(0).is_err());
        assert!(c.set_enabled_ways(16).is_err());
        assert!(c.set_set_reduction_log2(20).is_err());
    }

    #[test]
    fn configure_capacity_hits_power_of_two_targets() {
        let mut c = cache_256k();
        for target in [16.0, 32.0, 64.0, 128.0, 256.0] {
            c.configure_capacity(target);
            let eff = c.effective_capacity_kb();
            assert!(
                (eff - target).abs() / target < 0.26,
                "target {target} KB gave {eff} KB"
            );
        }
    }

    #[test]
    fn miss_rate_falls_as_capacity_grows() {
        let mut c = cache_256k();
        let ws = 512.0; // working set larger than the cache
        c.configure_capacity(32.0);
        let small = c.miss_rate(ws, 0.5);
        c.configure_capacity(256.0);
        let large = c.miss_rate(ws, 0.5);
        assert!(small > large);
        assert!(large > COMPULSORY_MISS_RATE);
        // Working set fits entirely: only compulsory misses remain.
        assert_eq!(c.miss_rate(64.0, 0.5), COMPULSORY_MISS_RATE);
    }

    #[test]
    fn miss_rate_curve_is_monotone_and_bounded() {
        let ws = 1024.0;
        let mut last = f64::INFINITY;
        for kb in [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0] {
            let m = miss_rate_for_capacity(kb, ws, 0.5);
            assert!(m <= last + 1e-12, "miss rate must not increase with capacity");
            assert!((COMPULSORY_MISS_RATE..=MAX_CAPACITY_MISS_RATE).contains(&m));
            last = m;
        }
        assert_eq!(miss_rate_for_capacity(0.0, ws, 0.5), MAX_CAPACITY_MISS_RATE);
        assert_eq!(miss_rate_for_capacity(64.0, 0.0, 0.5), COMPULSORY_MISS_RATE);
    }

    #[test]
    fn capacity_sensitive_workloads_miss_more_with_small_caches() {
        let insensitive = miss_rate_for_capacity(128.0, 512.0, 0.2);
        let sensitive = miss_rate_for_capacity(128.0, 512.0, 1.0);
        assert!(sensitive > insensitive);
        // Both curves agree once the working set fits.
        assert_eq!(
            miss_rate_for_capacity(512.0, 512.0, 0.2),
            miss_rate_for_capacity(512.0, 512.0, 1.0)
        );
    }

    #[test]
    fn disabled_arrays_leak_less() {
        let mut c = cache_256k();
        let full = c.leakage_power(0.8);
        c.set_enabled_ways(2).unwrap();
        let quarter = c.leakage_power(0.8);
        assert!(quarter < full);
        assert!((quarter / full - 0.25).abs() < 1e-9);
    }

    #[test]
    fn access_energy_scales_with_accesses_and_voltage() {
        let c = cache_256k();
        assert!(c.access_energy(1000.0, 0.8) > c.access_energy(100.0, 0.8));
        assert!(c.access_energy(1000.0, 0.4) < c.access_energy(1000.0, 0.8));
        assert!(c.is_stable_at(0.4), "default SRAM is sub-threshold capable");
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_way_geometry_panics() {
        let _ = ReconfigurableCache::new(CacheGeometry::new(64.0, 0));
    }
}
