//! Event probes: hardware comparators watching processor state.
//!
//! Polled performance counters are too coarse to catch rare events, so
//! Angstrom attaches *event probes* to counters and other pieces of state
//! (DAC 2012 §4.1). A probe holds a trigger register and a programmable
//! comparator that continuously compares the watched value (optionally
//! masked) against the trigger. On a match it either raises an interrupt or
//! deposits an event record in a small hardware queue that the partner core
//! (or any software) can drain.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::counters::CounterId;

/// Comparison operation programmed into a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComparatorOp {
    /// Watched value equals the trigger.
    Equal,
    /// Watched value differs from the trigger.
    NotEqual,
    /// Watched value is strictly less than the trigger.
    LessThan,
    /// Watched value is at least the trigger.
    GreaterOrEqual,
    /// Watched value is strictly greater than the trigger.
    GreaterThan,
    /// Watched value is at most the trigger.
    LessOrEqual,
}

impl ComparatorOp {
    /// Evaluates the comparison.
    pub fn matches(self, value: u64, trigger: u64) -> bool {
        match self {
            ComparatorOp::Equal => value == trigger,
            ComparatorOp::NotEqual => value != trigger,
            ComparatorOp::LessThan => value < trigger,
            ComparatorOp::GreaterOrEqual => value >= trigger,
            ComparatorOp::GreaterThan => value > trigger,
            ComparatorOp::LessOrEqual => value <= trigger,
        }
    }
}

/// What a probe does when its comparator matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeAction {
    /// Raise an interrupt on the owning tile.
    Interrupt,
    /// Append an [`EventRecord`] to the probe's hardware queue.
    Record,
}

/// A record deposited in the probe queue on a match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Counter (or state) the probe was watching.
    pub source: CounterId,
    /// Masked value that matched.
    pub value: u64,
    /// Simulation time of the match, in seconds.
    pub timestamp: f64,
}

/// Outcome of presenting a value to a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// The comparator did not match.
    NoMatch,
    /// The comparator matched and an interrupt was requested.
    Interrupt,
    /// The comparator matched and a record was queued.
    Recorded,
    /// The comparator matched but the queue was full; the record was dropped.
    QueueFull,
}

/// A programmable event probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventProbe {
    /// Counter the probe watches.
    pub source: CounterId,
    /// Comparator operation.
    pub op: ComparatorOp,
    /// Trigger register.
    pub trigger: u64,
    /// Bit mask applied to the watched value before comparison.
    pub mask: u64,
    /// Action taken on a match.
    pub action: ProbeAction,
    queue: VecDeque<EventRecord>,
    queue_capacity: usize,
    pending_interrupts: u64,
}

impl EventProbe {
    /// Default depth of the hardware event queue.
    pub const DEFAULT_QUEUE_DEPTH: usize = 16;

    /// Creates a probe watching `source` with the given comparator, trigger,
    /// and action; the mask defaults to all ones.
    pub fn new(source: CounterId, op: ComparatorOp, trigger: u64, action: ProbeAction) -> Self {
        EventProbe {
            source,
            op,
            trigger,
            mask: u64::MAX,
            action,
            queue: VecDeque::new(),
            queue_capacity: Self::DEFAULT_QUEUE_DEPTH,
            pending_interrupts: 0,
        }
    }

    /// Sets the comparison mask (only bits set in the mask participate).
    pub fn with_mask(mut self, mask: u64) -> Self {
        self.mask = mask;
        self
    }

    /// Sets the queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_capacity = depth;
        self
    }

    /// Presents the current value of the watched state to the probe.
    pub fn observe(&mut self, value: u64, now: f64) -> ProbeOutcome {
        let masked = value & self.mask;
        let masked_trigger = self.trigger & self.mask;
        if !self.op.matches(masked, masked_trigger) {
            return ProbeOutcome::NoMatch;
        }
        match self.action {
            ProbeAction::Interrupt => {
                self.pending_interrupts += 1;
                ProbeOutcome::Interrupt
            }
            ProbeAction::Record => {
                if self.queue.len() >= self.queue_capacity {
                    ProbeOutcome::QueueFull
                } else {
                    self.queue.push_back(EventRecord {
                        source: self.source,
                        value: masked,
                        timestamp: now,
                    });
                    ProbeOutcome::Recorded
                }
            }
        }
    }

    /// Number of interrupts raised and not yet acknowledged.
    pub fn pending_interrupts(&self) -> u64 {
        self.pending_interrupts
    }

    /// Acknowledges all pending interrupts, returning how many there were.
    pub fn acknowledge_interrupts(&mut self) -> u64 {
        std::mem::take(&mut self.pending_interrupts)
    }

    /// Number of queued event records.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Pops the oldest queued event record, if any.
    pub fn pop_event(&mut self) -> Option<EventRecord> {
        self.queue.pop_front()
    }

    /// Drains every queued event record, oldest first.
    pub fn drain_events(&mut self) -> Vec<EventRecord> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_ops_cover_all_relations() {
        assert!(ComparatorOp::Equal.matches(5, 5));
        assert!(!ComparatorOp::Equal.matches(5, 6));
        assert!(ComparatorOp::NotEqual.matches(5, 6));
        assert!(ComparatorOp::LessThan.matches(4, 5));
        assert!(!ComparatorOp::LessThan.matches(5, 5));
        assert!(ComparatorOp::GreaterOrEqual.matches(5, 5));
        assert!(ComparatorOp::GreaterThan.matches(6, 5));
        assert!(ComparatorOp::LessOrEqual.matches(5, 5));
    }

    #[test]
    fn recording_probe_queues_until_full() {
        let mut probe = EventProbe::new(
            CounterId::CacheMisses,
            ComparatorOp::GreaterOrEqual,
            100,
            ProbeAction::Record,
        )
        .with_queue_depth(2);
        assert_eq!(probe.observe(50, 0.0), ProbeOutcome::NoMatch);
        assert_eq!(probe.observe(150, 1.0), ProbeOutcome::Recorded);
        assert_eq!(probe.observe(200, 2.0), ProbeOutcome::Recorded);
        assert_eq!(probe.observe(300, 3.0), ProbeOutcome::QueueFull);
        assert_eq!(probe.queue_len(), 2);
        let first = probe.pop_event().unwrap();
        assert_eq!(first.value, 150);
        assert_eq!(first.timestamp, 1.0);
        assert_eq!(first.source, CounterId::CacheMisses);
        assert_eq!(probe.drain_events().len(), 1);
        assert_eq!(probe.queue_len(), 0);
    }

    #[test]
    fn interrupt_probe_counts_and_acknowledges() {
        let mut probe = EventProbe::new(
            CounterId::StallCycles,
            ComparatorOp::GreaterThan,
            1000,
            ProbeAction::Interrupt,
        );
        assert_eq!(probe.observe(2000, 0.0), ProbeOutcome::Interrupt);
        assert_eq!(probe.observe(3000, 0.1), ProbeOutcome::Interrupt);
        assert_eq!(probe.pending_interrupts(), 2);
        assert_eq!(probe.acknowledge_interrupts(), 2);
        assert_eq!(probe.pending_interrupts(), 0);
    }

    #[test]
    fn mask_restricts_compared_bits() {
        // Watch only the low byte.
        let mut probe = EventProbe::new(
            CounterId::FlitsSent,
            ComparatorOp::Equal,
            0x42,
            ProbeAction::Record,
        )
        .with_mask(0xFF);
        assert_eq!(probe.observe(0xAB42, 0.0), ProbeOutcome::Recorded);
        assert_eq!(probe.observe(0xAB43, 0.1), ProbeOutcome::NoMatch);
    }
}
