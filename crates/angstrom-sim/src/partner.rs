//! Partner cores: low-power helpers for runtime decision making.
//!
//! Self-aware optimisation is not free — resources must be devoted to the
//! runtime decision engine. Each Angstrom main core therefore has a tightly
//! coupled *partner core* that can inspect and manipulate the main core's
//! state (performance counters, configuration registers, event queues) while
//! consuming only about 10 % of the area and 10 % of the power of the main
//! core (DAC 2012 §4.3, citing Lau et al., HotPar 2011). Running the SEEC
//! decision code on the partner core keeps the main core free for
//! application work.

use serde::{Deserialize, Serialize};

use crate::dvfs::{CoreEnergyModel, OperatingPoint};

/// Where runtime decision code executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DecisionPlacement {
    /// Decision code runs on the partner core; the main core keeps executing
    /// application work (no application slowdown, partner energy only).
    #[default]
    PartnerCore,
    /// Decision code steals cycles from the main core.
    MainCore,
}

/// Model of one partner core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartnerCore {
    /// Area relative to the main core (the paper estimates ~0.1).
    pub area_fraction: f64,
    /// Power relative to the main core at the same operating point (~0.1).
    pub power_fraction: f64,
    /// Clock of the partner core relative to the main core (simplified
    /// pipeline, lower frequency).
    pub frequency_fraction: f64,
    /// Cycles per instruction of the simplified partner pipeline relative to
    /// the main pipeline (fewer functional units, smaller caches).
    pub cpi_factor: f64,
}

impl Default for PartnerCore {
    fn default() -> Self {
        PartnerCore {
            area_fraction: 0.10,
            power_fraction: 0.10,
            frequency_fraction: 0.5,
            cpi_factor: 1.6,
        }
    }
}

impl PartnerCore {
    /// Wall-clock time to execute `instructions` of decision code when the
    /// main core runs at `point`, in seconds.
    pub fn decision_time(&self, instructions: f64, point: OperatingPoint) -> f64 {
        let frequency = point.frequency * self.frequency_fraction;
        if frequency <= 0.0 {
            return 0.0;
        }
        instructions * self.cpi_factor / frequency
    }

    /// Energy to execute `instructions` of decision code, in joules.
    pub fn decision_energy(
        &self,
        instructions: f64,
        point: OperatingPoint,
        main_core_model: &CoreEnergyModel,
    ) -> f64 {
        let main_power = main_core_model.active_power(point);
        let partner_power = main_power * self.power_fraction;
        partner_power * self.decision_time(instructions, point)
    }

    /// Idle (leakage) power of the partner core while it waits for work, in watts.
    pub fn idle_power(&self, point: OperatingPoint, main_core_model: &CoreEnergyModel) -> f64 {
        main_core_model.leakage_power(point) * self.power_fraction
    }

    /// Overhead of one decision on the *application*, in seconds of lost main
    /// core time, for a given placement. On the partner core the application
    /// loses nothing; on the main core it loses the time the decision takes
    /// to execute there.
    pub fn application_overhead(
        &self,
        instructions: f64,
        point: OperatingPoint,
        placement: DecisionPlacement,
    ) -> f64 {
        match placement {
            DecisionPlacement::PartnerCore => 0.0,
            DecisionPlacement::MainCore => {
                if point.frequency <= 0.0 {
                    0.0
                } else {
                    instructions / point.frequency
                }
            }
        }
    }

    /// Energy of one decision for a given placement, in joules.
    pub fn decision_energy_for_placement(
        &self,
        instructions: f64,
        point: OperatingPoint,
        main_core_model: &CoreEnergyModel,
        placement: DecisionPlacement,
    ) -> f64 {
        match placement {
            DecisionPlacement::PartnerCore => {
                self.decision_energy(instructions, point, main_core_model)
            }
            DecisionPlacement::MainCore => {
                let time = instructions / point.frequency.max(1.0);
                main_core_model.active_power(point) * time
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_core_is_about_ten_percent_of_main_core() {
        let partner = PartnerCore::default();
        assert!((partner.area_fraction - 0.10).abs() < 1e-12);
        assert!((partner.power_fraction - 0.10).abs() < 1e-12);
    }

    #[test]
    fn partner_decision_energy_is_cheaper_than_main_core() {
        let partner = PartnerCore::default();
        let model = CoreEnergyModel::default();
        let point = OperatingPoint::nominal();
        let instructions = 1.0e6;
        let on_partner = partner.decision_energy_for_placement(
            instructions,
            point,
            &model,
            DecisionPlacement::PartnerCore,
        );
        let on_main = partner.decision_energy_for_placement(
            instructions,
            point,
            &model,
            DecisionPlacement::MainCore,
        );
        assert!(on_partner < on_main, "partner core must be the efficient place to decide");
    }

    #[test]
    fn partner_decisions_do_not_slow_the_application() {
        let partner = PartnerCore::default();
        let point = OperatingPoint::nominal();
        assert_eq!(
            partner.application_overhead(1.0e6, point, DecisionPlacement::PartnerCore),
            0.0
        );
        assert!(
            partner.application_overhead(1.0e6, point, DecisionPlacement::MainCore) > 0.0
        );
    }

    #[test]
    fn partner_decisions_take_longer_than_main_core_would() {
        let partner = PartnerCore::default();
        let point = OperatingPoint::nominal();
        let partner_time = partner.decision_time(1.0e6, point);
        let main_time = 1.0e6 / point.frequency;
        assert!(partner_time > main_time, "partner core targets a lower performance point");
    }

    #[test]
    fn idle_power_tracks_leakage() {
        let partner = PartnerCore::default();
        let model = CoreEnergyModel::default();
        let idle = partner.idle_power(OperatingPoint::nominal(), &model);
        assert!(idle > 0.0);
        assert!(idle < model.leakage_power(OperatingPoint::nominal()));
    }
}
