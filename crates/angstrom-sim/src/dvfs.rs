//! Dynamic voltage and frequency scaling (DVFS) for Angstrom cores.
//!
//! Each Angstrom core can run at different voltage/frequency operating
//! points (DAC 2012 §4.2.1). The energy model is anchored to the
//! voltage-scalable 32-bit microprocessor of Ickes et al. (ESSCIRC 2011),
//! which the paper cites: ~10.2 pJ/cycle at 0.54 V, with dynamic energy
//! scaling as `C·V²` and leakage power falling super-linearly with voltage.

use serde::{Deserialize, Serialize};

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Clock frequency in hertz.
    pub frequency: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(voltage: f64, frequency: f64) -> Self {
        OperatingPoint { voltage, frequency }
    }

    /// The Angstrom low-power point used in the paper's evaluation
    /// (0.4 V, 100 MHz).
    pub fn low_power() -> Self {
        OperatingPoint::new(0.4, 100.0e6)
    }

    /// The Angstrom nominal point used in the paper's evaluation
    /// (0.8 V, 500 MHz).
    pub fn nominal() -> Self {
        OperatingPoint::new(0.8, 500.0e6)
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} V / {:.0} MHz",
            self.voltage,
            self.frequency / 1.0e6
        )
    }
}

/// Core energy parameters calibrated against the cited low-voltage design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreEnergyModel {
    /// Effective switched capacitance per cycle, in farads.
    pub switched_capacitance: f64,
    /// Leakage power at the reference voltage (0.8 V), in watts.
    pub leakage_at_nominal: f64,
    /// Exponent of leakage scaling with voltage (leakage ∝ V^exp).
    pub leakage_voltage_exponent: f64,
}

impl Default for CoreEnergyModel {
    fn default() -> Self {
        // 10.2 pJ/cycle at 0.54 V  =>  C_eff = 10.2e-12 / 0.54²  ≈ 35 pF.
        // Leakage falls super-linearly with voltage, but not so steeply that
        // low-voltage operation gets its static power for free.
        CoreEnergyModel {
            switched_capacitance: 35.0e-12,
            leakage_at_nominal: 5.0e-3,
            leakage_voltage_exponent: 2.5,
        }
    }
}

impl CoreEnergyModel {
    /// Dynamic energy per clock cycle at `point`, in joules.
    pub fn dynamic_energy_per_cycle(&self, point: OperatingPoint) -> f64 {
        self.switched_capacitance * point.voltage * point.voltage
    }

    /// Leakage power at `point`, in watts.
    pub fn leakage_power(&self, point: OperatingPoint) -> f64 {
        let ratio = point.voltage / OperatingPoint::nominal().voltage;
        self.leakage_at_nominal * ratio.powf(self.leakage_voltage_exponent)
    }

    /// Total core power when actively executing at `point`, in watts.
    pub fn active_power(&self, point: OperatingPoint) -> f64 {
        self.dynamic_energy_per_cycle(point) * point.frequency + self.leakage_power(point)
    }
}

/// A per-core DVFS controller exposing a discrete set of operating points.
///
/// The hardware performs the actual switch; the controller records the
/// current point and the transition delay the SEEC runtime must respect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsController {
    points: Vec<OperatingPoint>,
    current: usize,
    /// Seconds required for a voltage transition to settle.
    pub transition_delay: f64,
    energy_model: CoreEnergyModel,
}

impl DvfsController {
    /// Creates a controller over `points`, starting at the last (fastest)
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: Vec<OperatingPoint>) -> Self {
        assert!(!points.is_empty(), "DVFS controller needs at least one operating point");
        let current = points.len() - 1;
        DvfsController {
            points,
            current,
            transition_delay: 20.0e-6,
            energy_model: CoreEnergyModel::default(),
        }
    }

    /// The two-point table used by the paper's 256-core evaluation.
    pub fn angstrom_default() -> Self {
        DvfsController::new(vec![OperatingPoint::low_power(), OperatingPoint::nominal()])
    }

    /// All selectable operating points, slowest first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Index of the current operating point.
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The current operating point.
    pub fn current_point(&self) -> OperatingPoint {
        self.points[self.current]
    }

    /// Selects the operating point at `index`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid range when `index` is out of range.
    pub fn select(&mut self, index: usize) -> Result<(), String> {
        if index >= self.points.len() {
            return Err(format!(
                "operating point {index} out of range (0..{})",
                self.points.len()
            ));
        }
        self.current = index;
        Ok(())
    }

    /// The energy model shared by every point of this controller.
    pub fn energy_model(&self) -> &CoreEnergyModel {
        &self.energy_model
    }

    /// Replaces the energy model (used to model process variation between
    /// tiles).
    pub fn set_energy_model(&mut self, model: CoreEnergyModel) {
        self.energy_model = model;
    }

    /// Dynamic + leakage energy of executing `cycles` cycles plus idling for
    /// `idle_seconds` at the current point, in joules.
    pub fn energy(&self, cycles: f64, idle_seconds: f64) -> f64 {
        let point = self.current_point();
        let busy_seconds = if point.frequency > 0.0 {
            cycles / point.frequency
        } else {
            0.0
        };
        self.energy_model.dynamic_energy_per_cycle(point) * cycles
            + self.energy_model.leakage_power(point) * (busy_seconds + idle_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cited_design_point_matches_ten_picojoules() {
        let model = CoreEnergyModel::default();
        let point = OperatingPoint::new(0.54, 10.0e6);
        let pj = model.dynamic_energy_per_cycle(point) * 1.0e12;
        assert!((pj - 10.2).abs() < 0.5, "expected ~10.2 pJ/cycle, got {pj}");
    }

    #[test]
    fn lower_voltage_means_lower_energy_per_cycle_and_leakage() {
        let model = CoreEnergyModel::default();
        let low = OperatingPoint::low_power();
        let high = OperatingPoint::nominal();
        assert!(model.dynamic_energy_per_cycle(low) < model.dynamic_energy_per_cycle(high));
        assert!(model.leakage_power(low) < model.leakage_power(high));
        assert!(model.active_power(low) < model.active_power(high));
    }

    #[test]
    fn controller_selects_points_and_reports_energy() {
        let mut ctl = DvfsController::angstrom_default();
        assert_eq!(ctl.points().len(), 2);
        assert_eq!(ctl.current_index(), 1, "starts at fastest point");
        ctl.select(0).unwrap();
        assert_eq!(ctl.current_point(), OperatingPoint::low_power());
        assert!(ctl.select(9).is_err());

        let low_energy = ctl.energy(1.0e6, 0.0);
        ctl.select(1).unwrap();
        let high_energy = ctl.energy(1.0e6, 0.0);
        assert!(low_energy < high_energy);
    }

    #[test]
    fn idle_time_accrues_leakage_only() {
        let ctl = DvfsController::angstrom_default();
        let busy = ctl.energy(1.0e6, 0.0);
        let busy_plus_idle = ctl.energy(1.0e6, 1.0);
        let leakage = ctl.energy_model().leakage_power(ctl.current_point());
        assert!((busy_plus_idle - busy - leakage).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_point_table_panics() {
        let _ = DvfsController::new(vec![]);
    }

    #[test]
    fn operating_point_displays_in_mhz() {
        let s = OperatingPoint::nominal().to_string();
        assert!(s.contains("0.80 V") && s.contains("500 MHz"));
    }
}
