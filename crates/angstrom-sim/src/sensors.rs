//! Environmental and energy sensors.
//!
//! Besides processor state, Angstrom includes sensors for temperature,
//! voltage, battery charge, and energy consumption (DAC 2012 §4.1, citing
//! the Sandy Bridge power-management architecture for the energy counters).
//! They let the runtime react to changing environmental conditions — cooling
//! failures, dying batteries — and observe how its actions affect power and
//! temperature. Sensors are deployed per tile to capture variation across
//! the chip.

use serde::{Deserialize, Serialize};

/// First-order RC thermal model driven by dissipated power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureSensor {
    /// Current junction temperature, in °C.
    temperature: f64,
    /// Ambient temperature, in °C.
    pub ambient: f64,
    /// Thermal resistance junction→ambient, in °C per watt.
    pub thermal_resistance: f64,
    /// Thermal time constant, in seconds.
    pub time_constant: f64,
}

impl Default for TemperatureSensor {
    fn default() -> Self {
        TemperatureSensor {
            temperature: 45.0,
            ambient: 45.0,
            thermal_resistance: 8.0,
            time_constant: 0.05,
        }
    }
}

impl TemperatureSensor {
    /// Current junction temperature in °C.
    pub fn read(&self) -> f64 {
        self.temperature
    }

    /// Advances the thermal state by `dt` seconds with `power` watts
    /// dissipated in the tile.
    pub fn advance(&mut self, power: f64, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let steady_state = self.ambient + power * self.thermal_resistance;
        let alpha = 1.0 - (-dt / self.time_constant).exp();
        self.temperature += (steady_state - self.temperature) * alpha;
    }
}

/// Accumulating energy sensor (the "energy counter" of §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergySensor {
    joules: f64,
}

impl EnergySensor {
    /// Total energy accumulated so far, in joules.
    pub fn read(&self) -> f64 {
        self.joules
    }

    /// Adds `joules` of consumed energy.
    pub fn accumulate(&mut self, joules: f64) {
        if joules > 0.0 {
            self.joules += joules;
        }
    }

    /// Resets the accumulator, returning the previous total.
    pub fn reset(&mut self) -> f64 {
        std::mem::take(&mut self.joules)
    }
}

/// Supply-voltage sensor (reports the currently applied rail voltage plus
/// a small configurable droop under load).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageSensor {
    nominal: f64,
    /// Volts of droop per ampere of load current.
    pub droop_per_amp: f64,
    load_current: f64,
}

impl VoltageSensor {
    /// Creates a sensor for a rail whose regulator targets `nominal` volts.
    pub fn new(nominal: f64) -> Self {
        VoltageSensor {
            nominal,
            droop_per_amp: 0.005,
            load_current: 0.0,
        }
    }

    /// Updates the rail set-point (called on DVFS transitions).
    pub fn set_nominal(&mut self, volts: f64) {
        self.nominal = volts;
    }

    /// Updates the load current estimate from `power` watts drawn.
    pub fn set_load_power(&mut self, power: f64) {
        self.load_current = if self.nominal > 0.0 {
            power / self.nominal
        } else {
            0.0
        };
    }

    /// Measured rail voltage including droop, in volts.
    pub fn read(&self) -> f64 {
        (self.nominal - self.load_current * self.droop_per_amp).max(0.0)
    }
}

/// Battery state-of-charge sensor for energy-constrained deployments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySensor {
    capacity_joules: f64,
    remaining_joules: f64,
}

impl BatterySensor {
    /// Creates a full battery holding `capacity_joules`.
    pub fn new(capacity_joules: f64) -> Self {
        BatterySensor {
            capacity_joules,
            remaining_joules: capacity_joules,
        }
    }

    /// Remaining charge as a fraction in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        if self.capacity_joules > 0.0 {
            self.remaining_joules / self.capacity_joules
        } else {
            0.0
        }
    }

    /// Remaining energy in joules.
    pub fn remaining_joules(&self) -> f64 {
        self.remaining_joules
    }

    /// Draws `joules` from the battery, saturating at empty.
    pub fn discharge(&mut self, joules: f64) {
        self.remaining_joules = (self.remaining_joules - joules.max(0.0)).max(0.0);
    }

    /// Whether the battery is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining_joules <= 0.0
    }
}

/// The sensor complement of one tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorBank {
    /// Junction temperature sensor.
    pub temperature: TemperatureSensor,
    /// Accumulating energy counter.
    pub energy: EnergySensor,
    /// Rail-voltage sensor.
    pub voltage: VoltageSensor,
}

impl SensorBank {
    /// Creates a sensor bank for a rail at `nominal_voltage`.
    pub fn new(nominal_voltage: f64) -> Self {
        SensorBank {
            temperature: TemperatureSensor::default(),
            energy: EnergySensor::default(),
            voltage: VoltageSensor::new(nominal_voltage),
        }
    }

    /// Advances every sensor by `dt` seconds given `power` watts dissipated
    /// and `energy_joules` consumed in the interval.
    pub fn advance(&mut self, power: f64, energy_joules: f64, dt: f64) {
        self.temperature.advance(power, dt);
        self.energy.accumulate(energy_joules);
        self.voltage.set_load_power(power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_approaches_steady_state() {
        let mut sensor = TemperatureSensor::default();
        let power = 2.0; // watts
        for _ in 0..1000 {
            sensor.advance(power, 0.01);
        }
        let expected = sensor.ambient + power * sensor.thermal_resistance;
        assert!((sensor.read() - expected).abs() < 0.1);
        // Cooling back down when power drops.
        for _ in 0..1000 {
            sensor.advance(0.0, 0.01);
        }
        assert!((sensor.read() - sensor.ambient).abs() < 0.1);
    }

    #[test]
    fn temperature_ignores_non_positive_dt() {
        let mut sensor = TemperatureSensor::default();
        let before = sensor.read();
        sensor.advance(100.0, 0.0);
        sensor.advance(100.0, -1.0);
        assert_eq!(sensor.read(), before);
    }

    #[test]
    fn energy_sensor_accumulates_and_resets() {
        let mut sensor = EnergySensor::default();
        sensor.accumulate(1.5);
        sensor.accumulate(2.5);
        sensor.accumulate(-3.0); // ignored
        assert!((sensor.read() - 4.0).abs() < 1e-12);
        assert!((sensor.reset() - 4.0).abs() < 1e-12);
        assert_eq!(sensor.read(), 0.0);
    }

    #[test]
    fn voltage_droops_under_load() {
        let mut sensor = VoltageSensor::new(0.8);
        assert_eq!(sensor.read(), 0.8);
        sensor.set_load_power(4.0); // 5 A at 0.8 V
        assert!(sensor.read() < 0.8);
        sensor.set_nominal(0.4);
        sensor.set_load_power(0.0);
        assert_eq!(sensor.read(), 0.4);
    }

    #[test]
    fn battery_discharges_to_empty() {
        let mut battery = BatterySensor::new(10.0);
        assert_eq!(battery.state_of_charge(), 1.0);
        battery.discharge(4.0);
        assert!((battery.state_of_charge() - 0.6).abs() < 1e-12);
        battery.discharge(100.0);
        assert!(battery.is_empty());
        assert_eq!(battery.remaining_joules(), 0.0);
    }

    #[test]
    fn sensor_bank_advances_all_sensors() {
        let mut bank = SensorBank::new(0.8);
        bank.advance(1.0, 0.01, 0.01);
        assert!(bank.energy.read() > 0.0);
        assert!(bank.temperature.read() >= 45.0);
        assert!(bank.voltage.read() < 0.8);
    }
}
