//! Memory-mapped performance counters.
//!
//! Angstrom exposes multiple performance counters that are memory-mapped and
//! readable by any level of the software stack without kernel mediation
//! (DAC 2012 §4.1). They count simple events — memory operations, cache hits
//! and misses, pipeline stall cycles, network flits sent and received — and
//! are polled by software, so they capture average behaviour over an
//! interval rather than individual events (event probes cover those; see
//! [`crate::probes`]).

use serde::{Deserialize, Serialize};

/// Identifiers of the architecturally visible counters, in address order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CounterId {
    /// Retired instructions.
    Instructions,
    /// Elapsed core clock cycles.
    Cycles,
    /// Memory operations issued (loads + stores).
    MemoryOps,
    /// Cache hits in the private cache.
    CacheHits,
    /// Cache misses in the private cache.
    CacheMisses,
    /// Cycles the pipeline was stalled waiting for memory or the network.
    StallCycles,
    /// Network flits sent by this tile.
    FlitsSent,
    /// Network flits received by this tile.
    FlitsReceived,
    /// Energy consumed, in nanojoules (energy counters, §4.1).
    EnergyNanojoules,
}

impl CounterId {
    /// Every counter, in memory-map (address) order.
    pub const ALL: [CounterId; 9] = [
        CounterId::Instructions,
        CounterId::Cycles,
        CounterId::MemoryOps,
        CounterId::CacheHits,
        CounterId::CacheMisses,
        CounterId::StallCycles,
        CounterId::FlitsSent,
        CounterId::FlitsReceived,
        CounterId::EnergyNanojoules,
    ];

    /// Word offset of the counter in the memory-mapped counter page.
    pub fn address_offset(self) -> usize {
        CounterId::ALL
            .iter()
            .position(|&c| c == self)
            .expect("counter listed in ALL")
    }
}

impl std::fmt::Display for CounterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CounterId::Instructions => "instructions",
            CounterId::Cycles => "cycles",
            CounterId::MemoryOps => "memory_ops",
            CounterId::CacheHits => "cache_hits",
            CounterId::CacheMisses => "cache_misses",
            CounterId::StallCycles => "stall_cycles",
            CounterId::FlitsSent => "flits_sent",
            CounterId::FlitsReceived => "flits_received",
            CounterId::EnergyNanojoules => "energy_nj",
        };
        f.write_str(name)
    }
}

/// A snapshot of every counter at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    values: [u64; 9],
}

impl CounterSnapshot {
    /// Value of one counter in the snapshot.
    pub fn value(&self, id: CounterId) -> u64 {
        self.values[id.address_offset()]
    }

    /// Per-counter difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; 9];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CounterSnapshot { values }
    }
}

/// The counter bank of one tile.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerformanceCounters {
    values: [u64; 9],
}

impl PerformanceCounters {
    /// Creates a zeroed counter bank.
    pub fn new() -> Self {
        PerformanceCounters::default()
    }

    /// Adds `amount` events to `id`.
    pub fn add(&mut self, id: CounterId, amount: u64) {
        let slot = &mut self.values[id.address_offset()];
        *slot = slot.saturating_add(amount);
    }

    /// Reads one counter (models a memory-mapped load).
    pub fn read(&self, id: CounterId) -> u64 {
        self.values[id.address_offset()]
    }

    /// Reads the raw memory-mapped page, in address order.
    pub fn read_page(&self) -> [u64; 9] {
        self.values
    }

    /// Takes a snapshot of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            values: self.values,
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.values = [0; 9];
    }

    /// Cache miss ratio (misses / memory ops) observed so far, if any memory
    /// operations were counted.
    pub fn miss_ratio(&self) -> Option<f64> {
        let ops = self.read(CounterId::MemoryOps);
        if ops == 0 {
            None
        } else {
            Some(self.read(CounterId::CacheMisses) as f64 / ops as f64)
        }
    }

    /// Instructions per cycle observed so far, if any cycles elapsed.
    pub fn ipc(&self) -> Option<f64> {
        let cycles = self.read(CounterId::Cycles);
        if cycles == 0 {
            None
        } else {
            Some(self.read(CounterId::Instructions) as f64 / cycles as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut c = PerformanceCounters::new();
        c.add(CounterId::Instructions, 1000);
        c.add(CounterId::Instructions, 500);
        c.add(CounterId::Cycles, 3000);
        assert_eq!(c.read(CounterId::Instructions), 1500);
        assert_eq!(c.read(CounterId::Cycles), 3000);
        assert_eq!(c.read(CounterId::FlitsSent), 0);
        assert!((c.ipc().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn page_layout_matches_counter_order() {
        let mut c = PerformanceCounters::new();
        for (i, id) in CounterId::ALL.iter().enumerate() {
            c.add(*id, (i + 1) as u64);
        }
        let page = c.read_page();
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(page[i], c.read(*id));
            assert_eq!(id.address_offset(), i);
        }
    }

    #[test]
    fn snapshots_compute_deltas() {
        let mut c = PerformanceCounters::new();
        c.add(CounterId::MemoryOps, 100);
        let before = c.snapshot();
        c.add(CounterId::MemoryOps, 40);
        c.add(CounterId::CacheMisses, 8);
        let after = c.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.value(CounterId::MemoryOps), 40);
        assert_eq!(delta.value(CounterId::CacheMisses), 8);
        // Delta in the other direction saturates to zero rather than wrapping.
        assert_eq!(before.delta_since(&after).value(CounterId::MemoryOps), 0);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = PerformanceCounters::new();
        assert!(c.miss_ratio().is_none());
        assert!(c.ipc().is_none());
        let mut c = PerformanceCounters::new();
        c.add(CounterId::MemoryOps, 10);
        c.add(CounterId::CacheMisses, 1);
        assert!((c.miss_ratio().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = PerformanceCounters::new();
        c.add(CounterId::EnergyNanojoules, 999);
        c.reset();
        assert_eq!(c.read(CounterId::EnergyNanojoules), 0);
    }

    #[test]
    fn counter_display_names_are_stable() {
        assert_eq!(CounterId::StallCycles.to_string(), "stall_cycles");
        assert_eq!(CounterId::EnergyNanojoules.to_string(), "energy_nj");
    }
}
