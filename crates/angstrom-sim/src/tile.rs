//! A single Angstrom tile: main core, partner core, cache, counters,
//! probes, and sensors.

use serde::{Deserialize, Serialize};

use crate::cache::ReconfigurableCache;
use crate::config::ChipConfig;
use crate::counters::{CounterId, PerformanceCounters};
use crate::dvfs::DvfsController;
use crate::partner::PartnerCore;
use crate::probes::{EventProbe, ProbeOutcome};
use crate::sensors::SensorBank;

/// Activity attributed to one tile over a simulation quantum; used to update
/// its counters and sensors.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TileActivity {
    /// Retired instructions.
    pub instructions: f64,
    /// Elapsed core cycles.
    pub cycles: f64,
    /// Memory operations issued.
    pub memory_ops: f64,
    /// Private-cache misses.
    pub cache_misses: f64,
    /// Cycles stalled on memory or the network.
    pub stall_cycles: f64,
    /// Flits sent into the network.
    pub flits_sent: f64,
    /// Flits received from the network.
    pub flits_received: f64,
    /// Energy consumed by the tile, in joules.
    pub energy_joules: f64,
    /// Average power over the quantum, in watts.
    pub power_watts: f64,
    /// Quantum duration, in seconds.
    pub seconds: f64,
}

/// One tile of the Angstrom chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    /// Tile index (row-major position in the mesh).
    pub id: usize,
    /// Per-core DVFS controller.
    pub dvfs: DvfsController,
    /// Reconfigurable private cache.
    pub cache: ReconfigurableCache,
    /// Memory-mapped performance counters.
    pub counters: PerformanceCounters,
    /// Programmable event probes attached to the counters.
    pub probes: Vec<EventProbe>,
    /// Temperature / energy / voltage sensors.
    pub sensors: SensorBank,
    /// The tile's partner core.
    pub partner: PartnerCore,
}

impl Tile {
    /// Creates tile `id` of a chip described by `config`, in its nominal
    /// (fastest point, full cache) state.
    pub fn new(id: usize, config: &ChipConfig) -> Self {
        let dvfs = DvfsController::new(config.operating_points.clone());
        let nominal_voltage = dvfs.current_point().voltage;
        Tile {
            id,
            dvfs,
            cache: ReconfigurableCache::new(config.cache_geometry),
            counters: PerformanceCounters::new(),
            probes: Vec::new(),
            sensors: SensorBank::new(nominal_voltage),
            partner: PartnerCore::default(),
        }
    }

    /// Attaches an event probe, returning its index.
    pub fn add_probe(&mut self, probe: EventProbe) -> usize {
        self.probes.push(probe);
        self.probes.len() - 1
    }

    /// Records a quantum of activity: updates counters, feeds every probe the
    /// counter it watches, and advances the sensors. Returns the probe
    /// outcomes in probe order.
    pub fn record_activity(&mut self, activity: &TileActivity, now: f64) -> Vec<ProbeOutcome> {
        self.counters
            .add(CounterId::Instructions, activity.instructions.max(0.0) as u64);
        self.counters
            .add(CounterId::Cycles, activity.cycles.max(0.0) as u64);
        self.counters
            .add(CounterId::MemoryOps, activity.memory_ops.max(0.0) as u64);
        let hits = (activity.memory_ops - activity.cache_misses).max(0.0);
        self.counters.add(CounterId::CacheHits, hits as u64);
        self.counters
            .add(CounterId::CacheMisses, activity.cache_misses.max(0.0) as u64);
        self.counters
            .add(CounterId::StallCycles, activity.stall_cycles.max(0.0) as u64);
        self.counters
            .add(CounterId::FlitsSent, activity.flits_sent.max(0.0) as u64);
        self.counters
            .add(CounterId::FlitsReceived, activity.flits_received.max(0.0) as u64);
        self.counters.add(
            CounterId::EnergyNanojoules,
            (activity.energy_joules.max(0.0) * 1.0e9) as u64,
        );

        self.sensors
            .advance(activity.power_watts, activity.energy_joules, activity.seconds);

        let counters = &self.counters;
        self.probes
            .iter_mut()
            .map(|probe| {
                let value = counters.read(probe.source);
                probe.observe(value, now)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{ComparatorOp, ProbeAction};

    fn tile() -> Tile {
        Tile::new(3, &ChipConfig::angstrom_256())
    }

    fn activity() -> TileActivity {
        TileActivity {
            instructions: 1.0e6,
            cycles: 2.0e6,
            memory_ops: 3.0e5,
            cache_misses: 1.0e4,
            stall_cycles: 5.0e5,
            flits_sent: 2.0e4,
            flits_received: 2.0e4,
            energy_joules: 0.01,
            power_watts: 1.0,
            seconds: 0.01,
        }
    }

    #[test]
    fn tile_starts_in_nominal_state() {
        let t = tile();
        assert_eq!(t.id, 3);
        assert_eq!(t.dvfs.current_index(), 1, "fastest operating point");
        assert_eq!(t.cache.effective_capacity_kb(), 128.0);
        assert_eq!(t.counters.read(CounterId::Instructions), 0);
        assert!(t.probes.is_empty());
    }

    #[test]
    fn activity_updates_counters_and_sensors() {
        let mut t = tile();
        t.record_activity(&activity(), 0.01);
        assert_eq!(t.counters.read(CounterId::Instructions), 1_000_000);
        assert_eq!(t.counters.read(CounterId::CacheHits), 290_000);
        assert_eq!(t.counters.read(CounterId::CacheMisses), 10_000);
        assert_eq!(t.counters.read(CounterId::EnergyNanojoules), 10_000_000);
        assert!(t.sensors.energy.read() > 0.0);
        assert!(t.sensors.temperature.read() > 45.0);
    }

    #[test]
    fn probes_fire_on_recorded_activity() {
        let mut t = tile();
        let probe_index = t.add_probe(EventProbe::new(
            CounterId::CacheMisses,
            ComparatorOp::GreaterOrEqual,
            15_000,
            ProbeAction::Record,
        ));
        assert_eq!(probe_index, 0);
        let outcomes = t.record_activity(&activity(), 0.01);
        assert_eq!(outcomes, vec![ProbeOutcome::NoMatch]);
        let outcomes = t.record_activity(&activity(), 0.02);
        assert_eq!(outcomes, vec![ProbeOutcome::Recorded]);
        assert_eq!(t.probes[0].queue_len(), 1);
    }

    #[test]
    fn negative_activity_fields_are_clamped() {
        let mut t = tile();
        let bad = TileActivity {
            instructions: -5.0,
            cache_misses: 10.0,
            memory_ops: 5.0,
            ..TileActivity::default()
        };
        t.record_activity(&bad, 0.0);
        assert_eq!(t.counters.read(CounterId::Instructions), 0);
        assert_eq!(t.counters.read(CounterId::CacheHits), 0);
    }
}
