//! Substrate-neutral description of application demand.
//!
//! The simulator does not execute instructions; it consumes an analytical
//! description of *what the application asks of the hardware* over a quantum
//! of work. The `workloads` crate translates its SPLASH-2 models into this
//! form, and the SEEC experiments drive the chip one quantum at a time.

use serde::{Deserialize, Serialize};

/// Analytical description of one quantum of application demand.
///
/// All rates are expressed per dynamic instruction so that the same demand
/// can be evaluated under any hardware configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDemand {
    /// Total dynamic instructions in the quantum.
    pub instructions: f64,
    /// Fraction of the work that can execute in parallel (Amdahl's `p`).
    pub parallel_fraction: f64,
    /// Memory operations per instruction (loads + stores).
    pub memory_ops_per_instruction: f64,
    /// Total working-set size touched by the quantum, in bytes.
    pub working_set_bytes: f64,
    /// Exponent `α` of the power-law miss-rate curve `miss ∝ capacity^(-α)`
    /// (higher = the workload is more sensitive to cache capacity; the
    /// classic √2-rule corresponds to ~0.5).
    pub locality_exponent: f64,
    /// Fraction of memory operations that touch data shared between cores
    /// (drives coherence and on-chip network traffic).
    pub sharing_fraction: f64,
    /// Network flits injected per instruction beyond coherence traffic
    /// (explicit communication, e.g. boundary exchanges).
    pub communication_flits_per_instruction: f64,
    /// Load imbalance factor ≥ 1.0: ratio of the busiest core's work to the
    /// mean. 1.0 means perfectly balanced.
    pub load_imbalance: f64,
    /// Base cycles per instruction assuming an ideal memory system.
    pub base_cpi: f64,
    /// Application work units (e.g. particles, rays, frames) completed by
    /// this quantum; used by drivers to convert progress into heartbeats.
    pub work_units: f64,
}

impl WorkloadDemand {
    /// Starts building a demand description with sensible defaults.
    pub fn builder() -> WorkloadDemandBuilder {
        WorkloadDemandBuilder::default()
    }

    /// Splits the quantum into a smaller quantum containing `fraction` of the
    /// instructions and work units, keeping all per-instruction rates.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0.0, 1.0]`.
    pub fn scaled(&self, fraction: f64) -> WorkloadDemand {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        WorkloadDemand {
            instructions: self.instructions * fraction,
            work_units: self.work_units * fraction,
            ..self.clone()
        }
    }
}

/// Builder for [`WorkloadDemand`].
#[derive(Debug, Clone)]
pub struct WorkloadDemandBuilder {
    demand: WorkloadDemand,
}

impl Default for WorkloadDemandBuilder {
    fn default() -> Self {
        WorkloadDemandBuilder {
            demand: WorkloadDemand {
                instructions: 1.0e9,
                parallel_fraction: 0.9,
                memory_ops_per_instruction: 0.3,
                working_set_bytes: 4.0 * 1024.0 * 1024.0,
                locality_exponent: 0.5,
                sharing_fraction: 0.1,
                communication_flits_per_instruction: 0.01,
                load_imbalance: 1.0,
                base_cpi: 1.0,
                work_units: 1.0,
            },
        }
    }
}

impl WorkloadDemandBuilder {
    /// Sets the total dynamic instruction count.
    pub fn instructions(mut self, value: f64) -> Self {
        self.demand.instructions = value;
        self
    }

    /// Sets the parallel fraction (Amdahl's `p`).
    pub fn parallel_fraction(mut self, value: f64) -> Self {
        self.demand.parallel_fraction = value;
        self
    }

    /// Sets memory operations per instruction.
    pub fn memory_ops_per_instruction(mut self, value: f64) -> Self {
        self.demand.memory_ops_per_instruction = value;
        self
    }

    /// Sets the working-set size in bytes.
    pub fn working_set_bytes(mut self, value: f64) -> Self {
        self.demand.working_set_bytes = value;
        self
    }

    /// Sets the locality exponent of the miss-rate curve.
    pub fn locality_exponent(mut self, value: f64) -> Self {
        self.demand.locality_exponent = value;
        self
    }

    /// Sets the fraction of memory operations touching shared data.
    pub fn sharing_fraction(mut self, value: f64) -> Self {
        self.demand.sharing_fraction = value;
        self
    }

    /// Sets explicit communication flits per instruction.
    pub fn communication_flits_per_instruction(mut self, value: f64) -> Self {
        self.demand.communication_flits_per_instruction = value;
        self
    }

    /// Sets the load imbalance factor (≥ 1.0).
    pub fn load_imbalance(mut self, value: f64) -> Self {
        self.demand.load_imbalance = value;
        self
    }

    /// Sets the base (ideal-memory) CPI.
    pub fn base_cpi(mut self, value: f64) -> Self {
        self.demand.base_cpi = value;
        self
    }

    /// Sets the work units completed by the quantum.
    pub fn work_units(mut self, value: f64) -> Self {
        self.demand.work_units = value;
        self
    }

    /// Finalises the demand description, clamping out-of-range parameters to
    /// their valid domains (fractions to `[0, 1]`, factors to `≥ 1`, counts
    /// to `≥ 0`).
    pub fn build(self) -> WorkloadDemand {
        let d = self.demand;
        WorkloadDemand {
            instructions: d.instructions.max(0.0),
            parallel_fraction: d.parallel_fraction.clamp(0.0, 1.0),
            memory_ops_per_instruction: d.memory_ops_per_instruction.max(0.0),
            working_set_bytes: d.working_set_bytes.max(0.0),
            locality_exponent: d.locality_exponent.clamp(0.05, 3.0),
            sharing_fraction: d.sharing_fraction.clamp(0.0, 1.0),
            communication_flits_per_instruction: d.communication_flits_per_instruction.max(0.0),
            load_imbalance: d.load_imbalance.max(1.0),
            base_cpi: d.base_cpi.max(0.1),
            work_units: d.work_units.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_out_of_range_values() {
        let d = WorkloadDemand::builder()
            .parallel_fraction(1.7)
            .load_imbalance(0.2)
            .sharing_fraction(-0.5)
            .base_cpi(0.0)
            .build();
        assert_eq!(d.parallel_fraction, 1.0);
        assert_eq!(d.load_imbalance, 1.0);
        assert_eq!(d.sharing_fraction, 0.0);
        assert!(d.base_cpi > 0.0);
    }

    #[test]
    fn builder_defaults_are_reasonable() {
        let d = WorkloadDemand::builder().build();
        assert!(d.instructions > 0.0);
        assert!(d.parallel_fraction > 0.0 && d.parallel_fraction <= 1.0);
        assert!(d.working_set_bytes > 0.0);
    }

    #[test]
    fn scaled_preserves_rates() {
        let d = WorkloadDemand::builder()
            .instructions(100.0)
            .work_units(10.0)
            .build();
        let half = d.scaled(0.5);
        assert_eq!(half.instructions, 50.0);
        assert_eq!(half.work_units, 5.0);
        assert_eq!(half.parallel_fraction, d.parallel_fraction);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn scaled_rejects_zero_fraction() {
        let d = WorkloadDemand::builder().build();
        let _ = d.scaled(0.0);
    }
}
