//! Property tests for the arbitration policies.
//!
//! * **Budget conservation** — for every shipped policy and arbitrary app
//!   mixes (activity, weights, urgencies, absorption ceilings), the sum of
//!   awards never exceeds the budget, inactive apps are awarded exactly
//!   zero, and every award is non-negative, finite, and within the app's
//!   ceiling. The checks are the shared [`coordinator::invariants`]
//!   oracles — the same ones the scenario fuzzer asserts every quantum.
//! * **WeightedFair monotonicity** — raising one app's weight (all else
//!   fixed) never lowers that app's award.

use coordinator::invariants::{
    active_total, check_award_vector, check_budget_conservation, AwardedApp,
};
use coordinator::{AppRequest, ArbitrationPolicy, PerformanceMarket, StaticShare, WeightedFair};
use proptest::prelude::*;

/// Decodes one app request from four generated scalars.
fn request(active: usize, weight: f64, urgency: f64, max_power: f64) -> AppRequest {
    AppRequest {
        active: active == 1,
        weight,
        urgency,
        max_power_watts: max_power,
    }
}

fn policies() -> Vec<Box<dyn ArbitrationPolicy>> {
    vec![
        Box::new(StaticShare),
        Box::new(WeightedFair),
        Box::new(PerformanceMarket::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_policy_conserves_the_budget(
        budget in 1.0..500.0f64,
        actives in proptest::collection::vec(0usize..2, 1..12),
        weights in proptest::collection::vec(0.1..8.0f64, 12),
        urgencies in proptest::collection::vec(0.01..20.0f64, 12),
        ceilings in proptest::collection::vec(0.5..400.0f64, 12),
    ) {
        let requests: Vec<AppRequest> = actives
            .iter()
            .enumerate()
            .map(|(i, &active)| request(active, weights[i], urgencies[i], ceilings[i]))
            .collect();
        let apps: Vec<AwardedApp> = requests
            .iter()
            .map(|request| AwardedApp {
                active: request.active,
                ceiling: Some(request.max_power_watts),
            })
            .collect();
        let mut awards = Vec::new();
        for mut policy in policies() {
            policy.arbitrate(budget, &requests, &mut awards);
            prop_assert_eq!(awards.len(), requests.len());
            let violations = check_award_vector(&awards, &apps);
            prop_assert!(
                violations.is_empty(),
                "{}: award invariants violated: {violations:?}",
                policy.name()
            );
            let total = active_total(&awards, &apps);
            prop_assert!(
                check_budget_conservation(total, budget).is_none(),
                "{}: awards {total} exceed budget {budget}",
                policy.name()
            );
        }
    }

    #[test]
    fn weighted_fair_award_is_monotone_in_weight(
        budget in 1.0..500.0f64,
        actives in proptest::collection::vec(0usize..2, 2..10),
        weights in proptest::collection::vec(0.1..8.0f64, 10),
        ceilings in proptest::collection::vec(0.5..400.0f64, 10),
        subject in 0usize..10,
        raise in 0.1..8.0f64,
    ) {
        let subject = subject % actives.len();
        let mut requests: Vec<AppRequest> = actives
            .iter()
            .enumerate()
            .map(|(i, &active)| request(active, weights[i], 1.0, ceilings[i]))
            .collect();
        // The subject must be active for its award to be meaningful.
        requests[subject].active = true;

        let mut policy = WeightedFair;
        let mut before = Vec::new();
        policy.arbitrate(budget, &requests, &mut before);

        requests[subject].weight += raise;
        let mut after = Vec::new();
        policy.arbitrate(budget, &requests, &mut after);

        prop_assert!(
            after[subject] >= before[subject] - 1e-9,
            "raising weight lowered the award: {} -> {} (weights {:?})",
            before[subject],
            after[subject],
            requests.iter().map(|r| r.weight).collect::<Vec<_>>()
        );
    }
}
