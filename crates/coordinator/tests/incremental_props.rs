//! The incremental-arbitration differential harness.
//!
//! Incremental arbitration is only allowed to exist because it is
//! *undetectable* at tolerance 0: the engine must reproduce the full
//! re-arbitration fold **bit-for-bit** across every shipped policy, every
//! fleet shape, every churn sequence, and every worker count. These
//! properties pin that contract at two levels:
//!
//! * **Engine level** — a raw [`IncrementalArbiter`] at tolerance 0 against
//!   a bare [`ArbitrationPolicy`], over generated request traces with field
//!   churn, presence flips, budget steps, and explicit dirty marks. Award
//!   vectors are compared by `f64::to_bits`, not by tolerance.
//! * **Coordinator level** — a full [`Coordinator`] with
//!   `with_arbitration_tolerance(0.0)` against a legacy coordinator with
//!   the knob off, driven through identical register/retire/set_budget
//!   churn on the declared-effect synthetic platform, with the incremental
//!   side sharded across a generated worker count. Every app's awarded
//!   envelope and every step summary must agree bitwise.
//!
//! Nonzero tolerances trade exactness for skipped work, so their contract
//! is the invariant layer's, not bitwise identity: awards stay finite,
//! non-negative, within each app's absorption ceiling, zero for absent
//! apps, and the active total conserves the budget — checked through the
//! shared [`coordinator::invariants`] oracles every round.

use coordinator::invariants::{
    active_total, check_award_vector, check_budget_conservation, check_summary_total, AwardedApp,
};
use coordinator::{
    AppHandle, AppRequest, ArbitrationPolicy, Coordinator, IncrementalArbiter, ManagedApp,
    PerformanceMarket, StaticShare, WakeConfig, WeightedFair,
};
use obs::{Counter, Recorder};
use proptest::prelude::*;
use seec::{ExplorationPolicy, SeecRuntime};
use std::sync::Arc;
use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};

fn policies() -> Vec<Box<dyn ArbitrationPolicy>> {
    vec![
        Box::new(StaticShare),
        Box::new(WeightedFair),
        Box::new(PerformanceMarket::default()),
    ]
}

/// One generated quantum of engine-level churn, decoded from the parallel
/// scalar vectors the vendored proptest generates.
#[derive(Debug, Clone, Copy)]
struct ChurnRound {
    /// Slot whose request fields move this round.
    moved_slot: usize,
    /// New weight / urgency for the moved slot.
    weight: f64,
    urgency: f64,
    /// Slot whose presence flips (arrival / departure) — applied when the
    /// round index is odd so some rounds are pure field churn.
    flipped_slot: usize,
    /// Budget multiplier for this round (1.0 = unchanged).
    budget_scale: f64,
    /// Slot explicitly marked dirty (a health transition stand-in).
    marked_slot: usize,
}

#[allow(clippy::too_many_arguments)]
fn decode_rounds(
    rounds: usize,
    moved_slots: &[usize],
    weights: &[f64],
    urgencies: &[f64],
    flipped_slots: &[usize],
    budget_scales: &[f64],
    marked_slots: &[usize],
) -> Vec<ChurnRound> {
    (0..rounds.clamp(1, moved_slots.len()))
        .map(|i| ChurnRound {
            moved_slot: moved_slots[i],
            weight: weights[i],
            urgency: urgencies[i],
            flipped_slot: flipped_slots[i],
            budget_scale: budget_scales[i],
            marked_slot: marked_slots[i],
        })
        .collect()
}

fn initial_requests(
    actives: &[usize],
    weights: &[f64],
    urgencies: &[f64],
    ceilings: &[f64],
) -> Vec<AppRequest> {
    actives
        .iter()
        .enumerate()
        .map(|(i, &active)| AppRequest {
            active: active == 1,
            weight: weights[i],
            urgency: urgencies[i],
            max_power_watts: ceilings[i],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tolerance 0 is bitwise-identical to the full fold for every shipped
    /// policy, through arbitrary churn: field moves, presence flips,
    /// budget steps, and explicit dirty marks.
    #[test]
    fn engine_tolerance_zero_is_bitwise_identical_under_churn(
        budget in 1.0..500.0f64,
        actives in proptest::collection::vec(0usize..2, 1..16),
        weights in proptest::collection::vec(0.1..8.0f64, 16),
        urgencies in proptest::collection::vec(0.01..20.0f64, 16),
        ceilings in proptest::collection::vec(0.5..400.0f64, 16),
        round_count in 1usize..8,
        moved_slots in proptest::collection::vec(0usize..16, 8),
        move_weights in proptest::collection::vec(0.1..8.0f64, 8),
        move_urgencies in proptest::collection::vec(0.05..10.0f64, 8),
        flipped_slots in proptest::collection::vec(0usize..16, 8),
        budget_scales in proptest::collection::vec(0.5..1.5f64, 8),
        marked_slots in proptest::collection::vec(0usize..16, 8),
    ) {
        let rounds = decode_rounds(
            round_count, &moved_slots, &move_weights, &move_urgencies,
            &flipped_slots, &budget_scales, &marked_slots,
        );
        let mut requests = initial_requests(&actives, &weights, &urgencies, &ceilings);
        for (policy_index, mut full) in policies().into_iter().enumerate() {
            let mut wrapped = policies().swap_remove(policy_index);
            let mut engine = IncrementalArbiter::new(0.0);
            let mut expected = Vec::new();
            let mut actual = Vec::new();
            let mut budget = budget;
            for (index, round) in rounds.iter().enumerate() {
                let moved = round.moved_slot % requests.len();
                requests[moved].weight = round.weight;
                requests[moved].urgency = round.urgency;
                if index % 2 == 1 {
                    let flipped = round.flipped_slot % requests.len();
                    requests[flipped].active = !requests[flipped].active;
                }
                budget *= round.budget_scale;
                engine.mark_dirty(round.marked_slot % requests.len());

                full.arbitrate(budget, &requests, &mut expected);
                let outcome = engine.arbitrate(wrapped.as_mut(), budget, &requests, &mut actual);
                prop_assert!(outcome.full, "tolerance 0 always degenerates to the full fold");
                prop_assert_eq!(outcome.skipped, 0);
                let expected_bits: Vec<u64> =
                    expected.iter().map(|award| award.to_bits()).collect();
                let actual_bits: Vec<u64> =
                    actual.iter().map(|award| award.to_bits()).collect();
                prop_assert!(
                    expected_bits == actual_bits,
                    "{} diverged at round {index}: {expected:?} vs {actual:?}",
                    full.name()
                );
            }
        }
    }

    /// Nonzero tolerances keep every award inside the invariant layer's
    /// contract on every round of a churn trace: finite, non-negative,
    /// within the absorption ceiling, zero when absent, and the active
    /// total conserves the budget.
    #[test]
    fn engine_nonzero_tolerance_conserves_budget_and_envelopes(
        budget in 1.0..500.0f64,
        tolerance in 0.001..0.5f64,
        actives in proptest::collection::vec(0usize..2, 1..16),
        weights in proptest::collection::vec(0.1..8.0f64, 16),
        urgencies in proptest::collection::vec(0.01..20.0f64, 16),
        ceilings in proptest::collection::vec(0.5..400.0f64, 16),
        round_count in 1usize..8,
        moved_slots in proptest::collection::vec(0usize..16, 8),
        move_weights in proptest::collection::vec(0.1..8.0f64, 8),
        move_urgencies in proptest::collection::vec(0.05..10.0f64, 8),
        flipped_slots in proptest::collection::vec(0usize..16, 8),
        budget_scales in proptest::collection::vec(0.5..1.5f64, 8),
        marked_slots in proptest::collection::vec(0usize..16, 8),
    ) {
        let rounds = decode_rounds(
            round_count, &moved_slots, &move_weights, &move_urgencies,
            &flipped_slots, &budget_scales, &marked_slots,
        );
        let mut requests = initial_requests(&actives, &weights, &urgencies, &ceilings);
        for (policy_index, _) in policies().iter().enumerate() {
            let mut policy = policies().swap_remove(policy_index);
            let mut engine = IncrementalArbiter::new(tolerance);
            let mut awards = Vec::new();
            let mut budget = budget;
            let mut skipped = 0usize;
            let mut rearbitrated = 0usize;
            let mut active_app_rounds = 0usize;
            for (index, round) in rounds.iter().enumerate() {
                let moved = round.moved_slot % requests.len();
                requests[moved].weight = round.weight;
                requests[moved].urgency = round.urgency;
                if index % 2 == 1 {
                    let flipped = round.flipped_slot % requests.len();
                    requests[flipped].active = !requests[flipped].active;
                }
                budget *= round.budget_scale;
                if round.budget_scale != 1.0 {
                    // The coordinator invalidates held awards on budget
                    // steps; the raw engine is told the same way.
                    engine.mark_all_dirty();
                }

                let outcome = engine.arbitrate(policy.as_mut(), budget, &requests, &mut awards);
                skipped += outcome.skipped;
                rearbitrated += outcome.rearbitrated;
                active_app_rounds += requests.iter().filter(|request| request.active).count();

                let apps: Vec<AwardedApp> = requests
                    .iter()
                    .map(|request| AwardedApp {
                        active: request.active,
                        ceiling: Some(request.max_power_watts),
                    })
                    .collect();
                let violations = check_award_vector(&awards, &apps);
                prop_assert!(
                    violations.is_empty(),
                    "{} at tolerance {tolerance} round {index}: {violations:?}",
                    policy.name()
                );
                let total = active_total(&awards, &apps);
                prop_assert!(
                    check_budget_conservation(total, budget).is_none(),
                    "{} at tolerance {tolerance} round {index}: {total} > {budget}",
                    policy.name()
                );
            }
            // The telemetry identity the obs counters rely on: every active
            // app either skipped or re-entered the fold, every round.
            prop_assert_eq!(skipped + rearbitrated, active_app_rounds);
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator level: the engine embedded in the real step pipeline.
// ---------------------------------------------------------------------

/// A small action space whose declared effects the synthetic platform
/// mirrors exactly (same shape as the unit suite's).
fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    let dvfs = ActuatorSpec::builder("dvfs")
        .setting(
            SettingSpec::new("slow")
                .effect(Axis::Performance, 0.5)
                .effect(Axis::Power, 0.4),
        )
        .setting(SettingSpec::new("nominal"))
        .setting(
            SettingSpec::new("fast")
                .effect(Axis::Performance, 2.0)
                .effect(Axis::Power, 2.6),
        )
        .nominal(1)
        .build()
        .unwrap();
    let cores = ActuatorSpec::builder("cores")
        .setting(SettingSpec::new("1"))
        .setting(
            SettingSpec::new("2")
                .effect(Axis::Performance, 1.9)
                .effect(Axis::Power, 2.0),
        )
        .build()
        .unwrap();
    vec![
        Box::new(TableActuator::new(dvfs)),
        Box::new(TableActuator::new(cores)),
    ]
}

/// One generated application slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    seed: u64,
    weight: f64,
    target: f64,
    arrival: usize,
    departure: Option<usize>,
}

fn decode_slots(
    seeds: &[u64],
    weights: &[f64],
    targets: &[f64],
    arrivals: &[usize],
    departures: &[usize],
    quanta: usize,
) -> Vec<Slot> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let arrival = arrivals[i] % quanta;
            let departure = (departures[i] > 0)
                .then(|| (arrival + 1 + departures[i] % quanta).min(quanta));
            Slot {
                seed,
                weight: weights[i],
                target: targets[i],
                arrival,
                departure,
            }
        })
        .collect()
}

fn managed(slot: Slot, index: usize) -> ManagedApp {
    let benchmark = SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()];
    let driver = HeartbeatedWorkload::new(Workload::new(benchmark, slot.seed));
    driver.set_heart_rate_goal(slot.target);
    let runtime = SeecRuntime::builder(driver.monitor())
        .actuators(actuators())
        .exploration(ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        })
        .seed(slot.seed)
        .build()
        .unwrap();
    let mut app = ManagedApp::new(driver, runtime)
        .with_weight(slot.weight)
        .with_arrival(slot.arrival)
        .with_nominal_power_hint(10.0);
    if let Some(departure) = slot.departure {
        app = app.with_departure(departure);
    }
    app
}

/// The full per-step trace, with awards captured as raw bits so the
/// comparison is bitwise, not approximate.
type Trace = Vec<(
    coordinator::StepSummary,
    Vec<u64>,
    Vec<Option<seec::CapDecision>>,
)>;

/// Drives a fleet for `quanta` steps against a platform mirroring each
/// app's declared effects exactly. `tolerance` turns the incremental
/// engine on; `budget_step` applies a mid-run budget change (the
/// whole-fleet invalidation path); `wake` attaches a wake schedule on
/// top of the incremental engine.
fn drive_traced(
    policy: Box<dyn ArbitrationPolicy>,
    slots: &[Slot],
    quanta: usize,
    workers: usize,
    tolerance: Option<f64>,
    budget_step: Option<(usize, f64)>,
    wake: Option<WakeConfig>,
) -> Trace {
    let mut coordinator = Coordinator::new(35.0, policy)
        .with_workers(workers)
        .with_shard_threshold(0);
    coordinator.set_arbitration_tolerance(tolerance);
    coordinator.set_wake_schedule(wake);
    let handles: Vec<AppHandle> = slots
        .iter()
        .enumerate()
        .map(|(index, &slot)| coordinator.register(managed(slot, index)))
        .collect();
    let mut now = 0.0;
    let mut trace = Trace::new();
    for quantum in 0..quanta {
        if let Some((at, watts)) = budget_step {
            if at == quantum {
                coordinator.set_budget(watts);
            }
        }
        now += 1.0;
        for &handle in &handles {
            if !coordinator.app(handle).active_at(quantum) {
                continue;
            }
            let effect = {
                let runtime = coordinator.app(handle).runtime();
                runtime
                    .model()
                    .space()
                    .predicted_effect(runtime.current_configuration())
                    .unwrap()
            };
            coordinator.advance(
                handle,
                now - 1.0,
                now,
                10.0 * effect.performance,
                10.0 * effect.power,
            );
        }
        let summary = coordinator.step(now).unwrap();
        trace.push((
            summary,
            coordinator
                .awards()
                .iter()
                .map(|award| award.to_bits())
                .collect(),
            handles
                .iter()
                .map(|&h| coordinator.app(h).last_decision())
                .collect(),
        ));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A coordinator at tolerance 0 — through the whole incremental
    /// machinery, sharded across a generated worker count — produces
    /// bitwise the awards, summaries, and per-app decisions of a legacy
    /// (knob off, sequential) coordinator, through arrival/departure churn
    /// and a mid-run budget step.
    #[test]
    fn coordinator_tolerance_zero_matches_legacy_at_every_worker_count(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..7),
        weights in proptest::collection::vec(0.25..8.0f64, 7),
        targets in proptest::collection::vec(5.0..80.0f64, 7),
        arrivals in proptest::collection::vec(0usize..10, 7),
        departures in proptest::collection::vec(0usize..10, 7),
        policy_pick in 0usize..3,
        workers in 1usize..7,
        budget_step_at in 0usize..10,
        budget_step_watts in 10.0..60.0f64,
    ) {
        let quanta = 10;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);
        let budget_step = Some((budget_step_at, budget_step_watts));
        let policy = || policies().swap_remove(policy_pick);
        let legacy = drive_traced(policy(), &slots, quanta, 1, None, budget_step, None);
        let incremental =
            drive_traced(policy(), &slots, quanta, workers, Some(0.0), budget_step, None);
        prop_assert!(
            legacy == incremental,
            "tolerance-0 incremental diverged from the legacy path at {} workers over {} apps",
            workers,
            slots.len()
        );
    }

    /// A wake schedule with horizon 0 is configuration, not behaviour: at
    /// every worker count, every policy, and any `steady_quanta`, the
    /// traced run — awards by bits, step summaries, per-app decisions —
    /// is identical to the same coordinator with no wake schedule at all.
    /// This is the second level of the differential pin: the first
    /// (tolerance 0 vs legacy) proves the incremental engine is inert,
    /// this one proves the scheduler riding on it is.
    #[test]
    fn coordinator_horizon_zero_matches_plain_incremental_at_every_worker_count(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..7),
        weights in proptest::collection::vec(0.25..8.0f64, 7),
        targets in proptest::collection::vec(5.0..80.0f64, 7),
        arrivals in proptest::collection::vec(0usize..10, 7),
        departures in proptest::collection::vec(0usize..10, 7),
        policy_pick in 0usize..3,
        workers in 1usize..7,
        tolerance in 0.001..0.5f64,
        steady in 1u32..9,
        budget_step_at in 0usize..10,
        budget_step_watts in 10.0..60.0f64,
    ) {
        let quanta = 10;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);
        let budget_step = Some((budget_step_at, budget_step_watts));
        let policy = || policies().swap_remove(policy_pick);
        let plain =
            drive_traced(policy(), &slots, quanta, workers, Some(tolerance), budget_step, None);
        let gated = drive_traced(
            policy(),
            &slots,
            quanta,
            workers,
            Some(tolerance),
            budget_step,
            Some(WakeConfig { steady_quanta: steady, horizon: 0 }),
        );
        prop_assert!(
            plain == gated,
            "a horizon-0 wake schedule (steady_quanta {}) diverged from the plain \
             incremental path at {} workers over {} apps",
            steady,
            workers,
            slots.len()
        );
    }

    /// With the wake scheduler live, every active app-quantum lands in
    /// exactly one of the four decide-ledger counters — slept, skipped,
    /// re-arbitrated, or decided — through arrival/departure churn and a
    /// mid-run budget step, at every worker count. Alongside the ledger,
    /// the budget-step and retirement force-wake rules stay observable:
    /// awards conserve the *stepped* budget every quantum (a sleeper
    /// holding a pre-step award would overshoot a cut) and absent apps
    /// hold exactly 0 W (a sleeper outliving its departure would not).
    #[test]
    fn wake_scheduling_partitions_every_active_app_quantum(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..7),
        weights in proptest::collection::vec(0.25..8.0f64, 7),
        targets in proptest::collection::vec(5.0..80.0f64, 7),
        arrivals in proptest::collection::vec(0usize..10, 7),
        departures in proptest::collection::vec(0usize..10, 7),
        policy_pick in 0usize..3,
        workers in 1usize..5,
        tolerance in 0.001..0.5f64,
        steady in 1u32..4,
        horizon in 1usize..33,
        budget_step_at in 0usize..10,
        budget_step_watts in 10.0..60.0f64,
    ) {
        let quanta = 10;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);
        let policy = policies().swap_remove(policy_pick);
        let policy_name = policy.name();
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(35.0, policy)
            .with_workers(workers)
            .with_shard_threshold(0)
            .with_arbitration_tolerance(tolerance)
            .with_wake_schedule(WakeConfig { steady_quanta: steady, horizon })
            .with_obs(Arc::clone(&recorder));
        let handles: Vec<AppHandle> = slots
            .iter()
            .enumerate()
            .map(|(index, &slot)| coordinator.register(managed(slot, index)))
            .collect();
        let mut budget = 35.0;
        let mut now = 0.0;
        let mut active_app_quanta = 0u64;
        for quantum in 0..quanta {
            if budget_step_at == quantum {
                budget = budget_step_watts;
                coordinator.set_budget(budget);
            }
            now += 1.0;
            for &handle in &handles {
                if !coordinator.app(handle).active_at(quantum) {
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                coordinator.advance(
                    handle,
                    now - 1.0,
                    now,
                    10.0 * effect.performance,
                    10.0 * effect.power,
                );
            }
            coordinator.step(now).unwrap();

            let apps: Vec<AwardedApp> = handles
                .iter()
                .map(|&handle| {
                    let active = coordinator.app(handle).active_at(quantum);
                    active_app_quanta += active as u64;
                    AwardedApp { active, ceiling: None }
                })
                .collect();
            let violations = check_award_vector(coordinator.awards(), &apps);
            prop_assert!(
                violations.is_empty(),
                "{policy_name} with wake ({steady}, {horizon}) quantum {quantum}: {violations:?}"
            );
            let total = active_total(coordinator.awards(), &apps);
            prop_assert!(
                check_budget_conservation(total, budget * 0.95).is_none(),
                "{policy_name} with wake ({steady}, {horizon}) quantum {quantum}: \
                 {total} > {} — a sleeper held an award across the budget step",
                budget * 0.95
            );
        }
        let slept = recorder.counter(Counter::AppsSlept);
        let skipped = recorder.counter(Counter::AppsSkipped);
        let rearbitrated = recorder.counter(Counter::AppsRearbitrated);
        let decided = recorder.counter(Counter::AppsDecided);
        prop_assert!(
            slept + skipped + rearbitrated + decided == active_app_quanta,
            "{policy_name} with wake ({steady}, {horizon}): ledger slept {slept} + \
             skipped {skipped} + rearbitrated {rearbitrated} + decided {decided} must \
             partition {active_app_quanta} active app-quanta"
        );
    }

    /// A coordinator at a nonzero tolerance keeps every step inside the
    /// invariant layer's contract: finite non-negative awards, absent apps
    /// at exactly 0 W, the active total under the headroomed budget, and a
    /// summary total that matches the award vector.
    #[test]
    fn coordinator_nonzero_tolerance_conserves_the_headroomed_budget(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..7),
        weights in proptest::collection::vec(0.25..8.0f64, 7),
        targets in proptest::collection::vec(5.0..80.0f64, 7),
        arrivals in proptest::collection::vec(0usize..10, 7),
        departures in proptest::collection::vec(0usize..10, 7),
        policy_pick in 0usize..3,
        workers in 1usize..5,
        tolerance in 0.001..0.5f64,
        budget_step_at in 0usize..10,
        budget_step_watts in 10.0..60.0f64,
    ) {
        let quanta = 10;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);
        let policy = policies().swap_remove(policy_pick);
        let policy_name = policy.name();
        let mut coordinator = Coordinator::new(35.0, policy)
            .with_workers(workers)
            .with_shard_threshold(0)
            .with_arbitration_tolerance(tolerance);
        let handles: Vec<AppHandle> = slots
            .iter()
            .enumerate()
            .map(|(index, &slot)| coordinator.register(managed(slot, index)))
            .collect();
        let mut budget = 35.0;
        let mut now = 0.0;
        for quantum in 0..quanta {
            if budget_step_at == quantum {
                budget = budget_step_watts;
                coordinator.set_budget(budget);
            }
            now += 1.0;
            for &handle in &handles {
                if !coordinator.app(handle).active_at(quantum) {
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                coordinator.advance(
                    handle,
                    now - 1.0,
                    now,
                    10.0 * effect.performance,
                    10.0 * effect.power,
                );
            }
            let summary = coordinator.step(now).unwrap();

            let apps: Vec<AwardedApp> = handles
                .iter()
                .map(|&handle| AwardedApp {
                    active: coordinator.app(handle).active_at(quantum),
                    ceiling: None,
                })
                .collect();
            let violations = check_award_vector(coordinator.awards(), &apps);
            prop_assert!(
                violations.is_empty(),
                "{policy_name} at tolerance {tolerance} quantum {quantum}: {violations:?}"
            );
            let total = active_total(coordinator.awards(), &apps);
            prop_assert!(
                check_budget_conservation(total, budget * 0.95).is_none(),
                "{policy_name} at tolerance {tolerance} quantum {quantum}: {total} > {}",
                budget * 0.95
            );
            prop_assert!(
                check_summary_total(summary.awarded_watts_total, total).is_none(),
                "{policy_name}: summary total {} vs recomputed {total}",
                summary.awarded_watts_total
            );
        }
    }
}
