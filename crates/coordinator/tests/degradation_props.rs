//! Property pins for the watchdog degradation ladder.
//!
//! * **Award invariants survive arbitrary fault plans** — whatever mix of
//!   stalls, crashes, NaN telemetry, power misreports, and frozen reports
//!   a fleet throws at a watchdog-enabled coordinator, every step's award
//!   vector stays finite and non-negative, absent apps get exactly 0 W,
//!   quarantined apps are pinned at or under the floor envelope, and the
//!   fleet total conserves the headroomed budget
//!   ([`coordinator::invariants`] — the same oracles the scenario fuzzer
//!   asserts).
//! * **The ladder is deterministic at every worker count** — the sharded
//!   step with the watchdog on produces byte-identical awards, summaries,
//!   and health verdicts at 1, 2, and 3 workers, under fault churn.
//! * **Transient faults readmit** — an app whose heartbeat pipe stalls
//!   for a bounded window is quarantined while silent and readmitted
//!   after enough honest quanta; quarantine never sticks to an app whose
//!   fault has cleared.

use coordinator::invariants::{
    check_award_vector, check_budget_conservation, check_summary_total, AwardedApp,
};
use coordinator::{AppHandle, Coordinator, HealthState, ManagedApp, WatchdogConfig, WeightedFair};
use proptest::prelude::*;
use seec::{ExplorationPolicy, SeecRuntime};
use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};

fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    let dvfs = ActuatorSpec::builder("dvfs")
        .setting(
            SettingSpec::new("slow")
                .effect(Axis::Performance, 0.5)
                .effect(Axis::Power, 0.4),
        )
        .setting(SettingSpec::new("nominal"))
        .setting(
            SettingSpec::new("fast")
                .effect(Axis::Performance, 2.0)
                .effect(Axis::Power, 2.6),
        )
        .nominal(1)
        .build()
        .unwrap();
    let cores = ActuatorSpec::builder("cores")
        .setting(SettingSpec::new("1"))
        .setting(
            SettingSpec::new("2")
                .effect(Axis::Performance, 1.9)
                .effect(Axis::Power, 2.0),
        )
        .build()
        .unwrap();
    vec![
        Box::new(TableActuator::new(dvfs)),
        Box::new(TableActuator::new(cores)),
    ]
}

/// The faults the proptest schedules, mirroring [`workloads::FaultKind`]
/// at the telemetry boundary the coordinator actually sees.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// No advance at all during the window: no beats, no telemetry.
    Stall,
    /// Reported power is NaN during the window.
    NonFinite,
    /// Reported power is multiplied by 3 during the window.
    Misreport,
    /// Execution stops at onset and never resumes (window ignored).
    Crash,
    /// The last pre-fault report is replayed verbatim during the window.
    Freeze,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    seed: u64,
    weight: f64,
    target: f64,
    arrival: usize,
    departure: Option<usize>,
    fault: Fault,
    fault_from: usize,
    fault_until: Option<usize>,
}

impl Slot {
    fn fault_active(&self, quantum: usize) -> bool {
        if self.fault == Fault::None {
            return false;
        }
        if self.fault == Fault::Crash {
            return quantum >= self.fault_from;
        }
        quantum >= self.fault_from && self.fault_until.is_none_or(|u| quantum < u)
    }
}

#[allow(clippy::too_many_arguments)]
fn decode_slots(
    seeds: &[u64],
    weights: &[f64],
    targets: &[f64],
    arrivals: &[usize],
    departures: &[usize],
    fault_kinds: &[usize],
    fault_froms: &[usize],
    fault_lens: &[usize],
    quanta: usize,
) -> Vec<Slot> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let arrival = arrivals[i] % quanta;
            let departure =
                (departures[i] > 0).then(|| (arrival + 1 + departures[i] % quanta).min(quanta));
            let fault = match fault_kinds[i] % 6 {
                0 => Fault::None,
                1 => Fault::Stall,
                2 => Fault::NonFinite,
                3 => Fault::Misreport,
                4 => Fault::Crash,
                _ => Fault::Freeze,
            };
            let fault_from = fault_froms[i] % quanta;
            let fault_until =
                (fault_lens[i] > 0).then(|| fault_from + 1 + fault_lens[i] % quanta);
            Slot {
                seed,
                weight: weights[i],
                target: targets[i],
                arrival,
                departure,
                fault,
                fault_from,
                fault_until,
            }
        })
        .collect()
}

fn managed(slot: Slot, index: usize) -> ManagedApp {
    let benchmark = SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()];
    let driver = HeartbeatedWorkload::new(Workload::new(benchmark, slot.seed));
    driver.set_heart_rate_goal(slot.target);
    let runtime = SeecRuntime::builder(driver.monitor())
        .actuators(actuators())
        .exploration(ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        })
        .seed(slot.seed)
        .build()
        .unwrap();
    let mut app = ManagedApp::new(driver, runtime)
        .with_weight(slot.weight)
        .with_arrival(slot.arrival)
        .with_nominal_power_hint(10.0);
    if let Some(departure) = slot.departure {
        app = app.with_departure(departure);
    }
    app
}

/// Advances one quantum of the whole fleet against a platform that mirrors
/// each app's declared effects exactly, filtered through its fault: the
/// honest report is `10 x effect`, and the fault corrupts (or suppresses)
/// what the coordinator hears. `frozen` carries each app's replayed report.
fn advance_with_faults(
    coordinator: &mut Coordinator,
    slots: &[Slot],
    handles: &[AppHandle],
    frozen: &mut [Option<(f64, f64)>],
    now: f64,
    quantum: usize,
) {
    for (index, (&handle, slot)) in handles.iter().zip(slots).enumerate() {
        if !coordinator.app(handle).active_at(quantum) {
            continue;
        }
        let faulting = slot.fault_active(quantum);
        if faulting && matches!(slot.fault, Fault::Stall | Fault::Crash) {
            continue;
        }
        let effect = {
            let runtime = coordinator.app(handle).runtime();
            runtime
                .model()
                .space()
                .predicted_effect(runtime.current_configuration())
                .unwrap()
        };
        let honest = (10.0 * effect.performance, 10.0 * effect.power);
        let (work, power) = if faulting {
            match slot.fault {
                Fault::NonFinite => (honest.0, f64::NAN),
                Fault::Misreport => (honest.0, honest.1 * 3.0),
                Fault::Freeze => frozen[index].unwrap_or(honest),
                _ => honest,
            }
        } else {
            frozen[index] = Some(honest);
            honest
        };
        coordinator.advance(handle, now - 1.0, now, work, power);
    }
}

/// One full run: every step's award bits, summary, and health verdicts.
type Trace = Vec<(Vec<u64>, usize, u64, Vec<HealthState>)>;

fn run_fleet(slots: &[Slot], quanta: usize, budget: f64, workers: usize) -> Trace {
    let mut coordinator = Coordinator::new(budget, Box::new(WeightedFair))
        .with_watchdog(WatchdogConfig::default())
        .with_workers(workers);
    let handles: Vec<AppHandle> = slots
        .iter()
        .enumerate()
        .map(|(index, &slot)| coordinator.register(managed(slot, index)))
        .collect();
    let mut frozen = vec![None; slots.len()];
    let mut trace = Vec::with_capacity(quanta);
    let mut now = 0.0;
    for quantum in 0..quanta {
        now += 1.0;
        advance_with_faults(&mut coordinator, slots, &handles, &mut frozen, now, quantum);
        let summary = coordinator.step(now).unwrap();
        trace.push((
            coordinator.awards().iter().map(|a| a.to_bits()).collect(),
            summary.active_apps,
            summary.awarded_watts_total.to_bits(),
            handles
                .iter()
                .map(|&handle| coordinator.app(handle).health_state())
                .collect(),
        ));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn watchdog_preserves_award_invariants_under_fault_churn(
        seeds in proptest::collection::vec(1u64..1_000_000, 2..9),
        weights in proptest::collection::vec(0.25..8.0f64, 9),
        targets in proptest::collection::vec(5.0..80.0f64, 9),
        arrivals in proptest::collection::vec(0usize..16, 9),
        departures in proptest::collection::vec(0usize..16, 9),
        fault_kinds in proptest::collection::vec(0usize..6, 9),
        fault_froms in proptest::collection::vec(0usize..16, 9),
        fault_lens in proptest::collection::vec(0usize..16, 9),
        workers in 1usize..4,
    ) {
        let quanta = 16;
        let budget = 35.0;
        let config = WatchdogConfig::default();
        let slots = decode_slots(
            &seeds, &weights, &targets, &arrivals, &departures,
            &fault_kinds, &fault_froms, &fault_lens, quanta,
        );
        let mut coordinator = Coordinator::new(budget, Box::new(WeightedFair))
            .with_watchdog(config)
            .with_workers(workers);
        let handles: Vec<AppHandle> = slots
            .iter()
            .enumerate()
            .map(|(index, &slot)| coordinator.register(managed(slot, index)))
            .collect();
        let mut frozen = vec![None; slots.len()];
        let mut now = 0.0;
        for quantum in 0..quanta {
            now += 1.0;
            advance_with_faults(&mut coordinator, &slots, &handles, &mut frozen, now, quantum);
            let summary = coordinator.step(now).unwrap();

            // Awards: finite, non-negative, 0 W when absent, and pinned to
            // the floor seat while quarantined (the quarantine request
            // ceiling is the floor envelope).
            let judged: Vec<AwardedApp> = handles
                .iter()
                .map(|&handle| {
                    let app = coordinator.app(handle);
                    let slot = AwardedApp {
                        active: app.active_at(quantum),
                        ceiling: None,
                    };
                    if app.health_state() == HealthState::Quarantined {
                        slot.with_ceiling(config.quarantine_floor_watts)
                    } else {
                        slot
                    }
                })
                .collect();
            let violations = check_award_vector(coordinator.awards(), &judged);
            prop_assert!(
                violations.is_empty(),
                "award invariants violated at quantum {quantum}: {violations:?}"
            );

            // The fleet total conserves the headroomed budget, and the
            // summary agrees with the recomputed total.
            let total: f64 = coordinator.awards().iter().sum();
            prop_assert!(
                check_budget_conservation(total, budget * 0.95).is_none(),
                "fleet total {total} exceeds headroomed budget at quantum {quantum}"
            );
            prop_assert!(
                check_summary_total(summary.awarded_watts_total, total).is_none(),
                "summary total {} vs recomputed {total} at quantum {quantum}",
                summary.awarded_watts_total
            );

            // Ladder bookkeeping: a quarantine verdict always carries its
            // quantum, and readmission implies a prior quarantine.
            for &handle in &handles {
                let app = coordinator.app(handle);
                if app.health_state() == HealthState::Quarantined {
                    prop_assert!(app.quarantined_at().is_some());
                }
                if app.readmitted_at().is_some() {
                    prop_assert!(app.quarantined_at().is_some());
                }
            }
        }
    }

    #[test]
    fn degradation_is_bit_identical_at_every_worker_count(
        seeds in proptest::collection::vec(1u64..1_000_000, 2..8),
        weights in proptest::collection::vec(0.25..8.0f64, 8),
        targets in proptest::collection::vec(5.0..80.0f64, 8),
        arrivals in proptest::collection::vec(0usize..12, 8),
        departures in proptest::collection::vec(0usize..12, 8),
        fault_kinds in proptest::collection::vec(0usize..6, 8),
        fault_froms in proptest::collection::vec(0usize..12, 8),
        fault_lens in proptest::collection::vec(0usize..12, 8),
    ) {
        let quanta = 12;
        let budget = 35.0;
        let slots = decode_slots(
            &seeds, &weights, &targets, &arrivals, &departures,
            &fault_kinds, &fault_froms, &fault_lens, quanta,
        );
        let single = run_fleet(&slots, quanta, budget, 1);
        for workers in 2..=3 {
            let sharded = run_fleet(&slots, quanta, budget, workers);
            prop_assert!(
                single == sharded,
                "worker count {} diverged from the sequential ladder",
                workers
            );
        }
    }

    #[test]
    fn transient_stalls_quarantine_and_readmit(
        seeds in proptest::collection::vec(1u64..1_000_000, 3..6),
        stall_from in 9usize..13,
        stall_len in 6usize..10,
    ) {
        // One app's heartbeat pipe wedges for a bounded window after the
        // warmup grace; everyone else is honest throughout. The stalled
        // app must be quarantined while silent and readmitted once it has
        // been honest for the readmission window.
        let config = WatchdogConfig::default();
        let quanta = stall_from + stall_len + config.readmit_quanta + 8;
        let budget = 35.0;
        let slots: Vec<Slot> = seeds
            .iter()
            .enumerate()
            .map(|(index, &seed)| Slot {
                seed,
                weight: 1.0 + index as f64,
                target: 40.0,
                arrival: 0,
                departure: None,
                fault: if index == 0 { Fault::Stall } else { Fault::None },
                fault_from: stall_from,
                fault_until: Some(stall_from + stall_len),
            })
            .collect();
        let mut coordinator =
            Coordinator::new(budget, Box::new(WeightedFair)).with_watchdog(config);
        let handles: Vec<AppHandle> = slots
            .iter()
            .enumerate()
            .map(|(index, &slot)| coordinator.register(managed(slot, index)))
            .collect();
        let mut frozen = vec![None; slots.len()];
        let mut now = 0.0;
        let mut quarantined_during_stall = false;
        for quantum in 0..quanta {
            now += 1.0;
            advance_with_faults(&mut coordinator, &slots, &handles, &mut frozen, now, quantum);
            coordinator.step(now).unwrap();
            let stalled = coordinator.app(handles[0]);
            if quantum >= stall_from && quantum < stall_from + stall_len {
                quarantined_during_stall |=
                    stalled.health_state() == HealthState::Quarantined;
            }
            for &handle in &handles[1..] {
                prop_assert!(
                    coordinator.app(handle).health_state() != HealthState::Quarantined,
                    "an honest app was quarantined at quantum {quantum}"
                );
            }
        }
        // The stall outlives the stale threshold, so the ladder must have
        // acted; the honest tail outlives the readmission window, so it
        // must also have let go.
        prop_assert!(quarantined_during_stall, "the stalled app was never quarantined");
        let stalled = coordinator.app(handles[0]);
        prop_assert!(stalled.quarantined_at().is_some());
        prop_assert!(
            stalled.readmitted_at().is_some(),
            "the recovered app was never readmitted (final state {:?})",
            stalled.health_state()
        );
        prop_assert!(
            stalled.health_state() == HealthState::Readmitted
                || stalled.health_state() == HealthState::Healthy,
            "recovered app still on the quarantine rung: {:?}",
            stalled.health_state()
        );
    }
}
