//! Property pins for the rack → datacenter hierarchy.
//!
//! * **Budget conservation under arbitrary partitions** — for every shipped
//!   policy (at both levels) and arbitrary fleets cut into arbitrary rack
//!   partitions, the rack envelopes conserve the datacenter budget, every
//!   rack's app awards conserve its envelope, and therefore the
//!   app-awarded total across the whole datacenter conserves the budget
//!   end to end. Absent apps and app-less racks are awarded exactly 0 W.
//!   The conservation chain is the shared
//!   [`coordinator::invariants::check_hierarchy_conservation`] oracle —
//!   the same one the scenario fuzzer asserts for hierarchical runs.
//! * **The flat coordinator is the 1-rack degenerate case** — a
//!   [`DatacenterArbiter`] holding one rack (under a `StaticShare`
//!   datacenter policy and unit headroom) produces byte-for-byte the
//!   awards, decisions, and summaries of a flat [`Coordinator`] over the
//!   same fleet, at every step. (Water-filling datacenter policies agree
//!   only to within a division round-off — see the hierarchy module docs —
//!   so the exact pin uses `StaticShare`.)

use coordinator::invariants::{
    check_award_vector, check_hierarchy_conservation, check_summary_total, AwardedApp,
    HierarchyTotals,
};
use coordinator::{
    AppHandle, ArbitrationPolicy, Coordinator, DatacenterArbiter, ManagedApp, PerformanceMarket,
    RackCoordinator, StaticShare, WeightedFair,
};
use proptest::prelude::*;
use seec::{ExplorationPolicy, SeecRuntime};
use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};

fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    let dvfs = ActuatorSpec::builder("dvfs")
        .setting(
            SettingSpec::new("slow")
                .effect(Axis::Performance, 0.5)
                .effect(Axis::Power, 0.4),
        )
        .setting(SettingSpec::new("nominal"))
        .setting(
            SettingSpec::new("fast")
                .effect(Axis::Performance, 2.0)
                .effect(Axis::Power, 2.6),
        )
        .nominal(1)
        .build()
        .unwrap();
    let cores = ActuatorSpec::builder("cores")
        .setting(SettingSpec::new("1"))
        .setting(
            SettingSpec::new("2")
                .effect(Axis::Performance, 1.9)
                .effect(Axis::Power, 2.0),
        )
        .build()
        .unwrap();
    vec![
        Box::new(TableActuator::new(dvfs)),
        Box::new(TableActuator::new(cores)),
    ]
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    seed: u64,
    weight: f64,
    target: f64,
    arrival: usize,
    departure: Option<usize>,
}

fn decode_slots(
    seeds: &[u64],
    weights: &[f64],
    targets: &[f64],
    arrivals: &[usize],
    departures: &[usize],
    quanta: usize,
) -> Vec<Slot> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let arrival = arrivals[i] % quanta;
            let departure =
                (departures[i] > 0).then(|| (arrival + 1 + departures[i] % quanta).min(quanta));
            Slot {
                seed,
                weight: weights[i],
                target: targets[i],
                arrival,
                departure,
            }
        })
        .collect()
}

fn managed(slot: Slot, index: usize) -> ManagedApp {
    let benchmark = SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()];
    let driver = HeartbeatedWorkload::new(Workload::new(benchmark, slot.seed));
    driver.set_heart_rate_goal(slot.target);
    let runtime = SeecRuntime::builder(driver.monitor())
        .actuators(actuators())
        .exploration(ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        })
        .seed(slot.seed)
        .build()
        .unwrap();
    let mut app = ManagedApp::new(driver, runtime)
        .with_weight(slot.weight)
        .with_arrival(slot.arrival)
        .with_nominal_power_hint(10.0);
    if let Some(departure) = slot.departure {
        app = app.with_departure(departure);
    }
    app
}

fn policies() -> Vec<Box<dyn ArbitrationPolicy>> {
    vec![
        Box::new(StaticShare),
        Box::new(WeightedFair),
        Box::new(PerformanceMarket::default()),
    ]
}

/// Advances every app of every rack one quantum against a platform that
/// mirrors its declared effects exactly.
fn advance_datacenter(datacenter: &mut DatacenterArbiter, now: f64, quantum: usize) {
    for rack_index in 0..datacenter.len() {
        for position in 0..datacenter.rack(rack_index).coordinator().len() {
            let handle = AppHandle::from_index(position);
            if !datacenter
                .rack(rack_index)
                .coordinator()
                .app(handle)
                .active_at(quantum)
            {
                continue;
            }
            let effect = {
                let runtime = datacenter.rack(rack_index).coordinator().app(handle).runtime();
                runtime
                    .model()
                    .space()
                    .predicted_effect(runtime.current_configuration())
                    .unwrap()
            };
            datacenter.rack_mut(rack_index).advance(
                handle,
                now - 1.0,
                now,
                10.0 * effect.performance,
                10.0 * effect.power,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn hierarchy_conserves_the_budget_under_arbitrary_rack_partitions(
        seeds in proptest::collection::vec(1u64..1_000_000, 2..10),
        weights in proptest::collection::vec(0.25..8.0f64, 10),
        targets in proptest::collection::vec(5.0..80.0f64, 10),
        arrivals in proptest::collection::vec(0usize..10, 10),
        departures in proptest::collection::vec(0usize..10, 10),
        rack_of in proptest::collection::vec(0usize..4, 10),
        racks in 1usize..5,
        dc_policy_pick in 0usize..3,
        rack_policy_pick in 0usize..3,
        workers in 1usize..4,
    ) {
        let quanta = 10;
        let budget = 35.0;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);
        let dc_policy = policies().swap_remove(dc_policy_pick);
        let policy_name = dc_policy.name();
        let mut datacenter = DatacenterArbiter::new(budget, dc_policy).with_workers(workers);
        for rack_index in 0..racks {
            let rack_policy = policies().swap_remove(rack_policy_pick);
            datacenter.add_rack(RackCoordinator::new(
                format!("rack-{rack_index}"),
                Coordinator::new(budget, rack_policy),
            ));
        }
        // Arbitrary partition: app i lands on rack `rack_of[i] % racks`.
        for (index, &slot) in slots.iter().enumerate() {
            datacenter
                .rack_mut(rack_of[index] % racks)
                .register(managed(slot, index));
        }

        let mut now = 0.0;
        for quantum in 0..quanta {
            now += 1.0;
            advance_datacenter(&mut datacenter, now, quantum);
            let summary = datacenter.step(now).unwrap();

            // Rack envelopes are judged like an award vector: finite,
            // non-negative, and exactly 0 W for app-less or all-absent
            // racks.
            let rack_slots: Vec<AwardedApp> = datacenter
                .racks()
                .iter()
                .map(|rack| {
                    let any_active = (0..rack.coordinator().len()).any(|position| {
                        rack.coordinator()
                            .app(AppHandle::from_index(position))
                            .active_at(quantum)
                    });
                    AwardedApp {
                        active: any_active,
                        ceiling: None,
                    }
                })
                .collect();
            let violations = check_award_vector(datacenter.rack_awards(), &rack_slots);
            prop_assert!(
                violations.is_empty(),
                "{policy_name}: rack award invariants violated at quantum {quantum}: \
                 {violations:?}"
            );

            // Budget conservation datacenter → rack → app, via the shared
            // oracle: envelopes conserve the budget, each fleet conserves
            // its headroomed envelope, the app total conserves the
            // headroomed budget.
            let totals = HierarchyTotals {
                budget,
                rack_envelopes: datacenter.rack_awards().to_vec(),
                rack_fleet_totals: datacenter
                    .racks()
                    .iter()
                    .map(|rack| rack.coordinator().awards().iter().sum())
                    .collect(),
                headroom: 0.95,
            };
            let violations = check_hierarchy_conservation(&totals);
            prop_assert!(
                violations.is_empty(),
                "{policy_name}: hierarchy conservation violated at quantum {quantum}: \
                 {violations:?} (totals {totals:?})"
            );
            let rack_total: f64 = totals.rack_envelopes.iter().sum();
            prop_assert!(
                check_summary_total(summary.rack_awarded_watts_total, rack_total).is_none(),
                "{policy_name}: summary rack total {} vs recomputed {rack_total}",
                summary.rack_awarded_watts_total
            );
        }
    }

    #[test]
    fn one_rack_hierarchy_is_bit_identical_to_the_flat_coordinator(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..8),
        weights in proptest::collection::vec(0.25..8.0f64, 8),
        targets in proptest::collection::vec(5.0..80.0f64, 8),
        arrivals in proptest::collection::vec(0usize..12, 8),
        departures in proptest::collection::vec(0usize..12, 8),
        rack_policy_pick in 0usize..3,
    ) {
        let quanta = 12;
        // Every app's absorption ceiling (10 W hint x 5.2 max declared
        // powerup = 52 W) exceeds the budget, so the single rack is awarded
        // exactly the whole budget and the degenerate case is exact.
        let budget = 35.0;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);

        // Flat reference.
        let mut flat = Coordinator::new(budget, policies().swap_remove(rack_policy_pick));
        let flat_handles: Vec<AppHandle> = slots
            .iter()
            .enumerate()
            .map(|(index, &slot)| flat.register(managed(slot, index)))
            .collect();

        // The same fleet as the sole rack of a datacenter.
        let mut datacenter = DatacenterArbiter::new(budget, Box::new(StaticShare));
        let mut rack = RackCoordinator::new(
            "the-rack",
            Coordinator::new(budget, policies().swap_remove(rack_policy_pick)),
        );
        for (index, &slot) in slots.iter().enumerate() {
            rack.register(managed(slot, index));
        }
        datacenter.add_rack(rack);

        let mut now = 0.0;
        for quantum in 0..quanta {
            now += 1.0;
            // Drive both fleets identically.
            for &handle in &flat_handles {
                if !flat.app(handle).active_at(quantum) {
                    continue;
                }
                let effect = {
                    let runtime = flat.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                flat.advance(handle, now - 1.0, now, 10.0 * effect.performance, 10.0 * effect.power);
            }
            advance_datacenter(&mut datacenter, now, quantum);

            let flat_summary = flat.step(now).unwrap();
            let dc_summary = datacenter.step(now).unwrap();
            let rack = datacenter.rack(0);

            prop_assert_eq!(dc_summary.active_apps, flat_summary.active_apps);
            prop_assert!(
                dc_summary.app_awarded_watts_total.to_bits()
                    == flat_summary.awarded_watts_total.to_bits(),
                "awarded totals diverged at quantum {}: flat {} vs hierarchy {}",
                quantum,
                flat_summary.awarded_watts_total,
                dc_summary.app_awarded_watts_total
            );
            prop_assert!(rack.coordinator().awards() == flat.awards());
            for (position, &handle) in flat_handles.iter().enumerate() {
                let flat_decision = flat.app(handle).last_decision();
                let rack_decision = rack
                    .coordinator()
                    .app(AppHandle::from_index(position))
                    .last_decision();
                prop_assert!(
                    flat_decision == rack_decision,
                    "app {} decisions diverged at quantum {}",
                    position,
                    quantum
                );
            }
        }
    }
}
