//! Property tests for the coordinator's sharded step and runtime app
//! lifecycle.
//!
//! * **Shard bit-identity** — for arbitrary fleets (sizes, weights,
//!   targets, seeds, arrival/departure windows) and arbitrary worker
//!   counts, every step of the sharded coordinator produces byte-for-byte
//!   the awards, decisions, applied configurations, and summaries of the
//!   sequential coordinator. This is the guarantee that lets fig5 (and any
//!   other caller) turn sharding on purely as a performance knob.
//! * **Budget conservation under churn** — for every shipped policy and
//!   arbitrary interleavings of register/retire events during a run, the
//!   awards of present apps never exceed the headroomed budget, retired
//!   and not-yet-arrived apps are awarded exactly 0 W, and every award is
//!   non-negative and finite. The checks are the shared
//!   [`coordinator::invariants`] oracles, so the pins here and the
//!   scenario fuzzer's oracles cannot drift apart.

use coordinator::invariants::{
    active_total, check_award_vector, check_budget_conservation, check_summary_total, AwardedApp,
};
use coordinator::{
    AppHandle, ArbitrationPolicy, Coordinator, ManagedApp, PerformanceMarket, StaticShare,
    WeightedFair,
};
use proptest::prelude::*;
use seec::{ExplorationPolicy, SeecRuntime};
use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};

/// A small action space whose declared effects the synthetic platform
/// mirrors exactly (same shape as the unit suite's).
fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    let dvfs = ActuatorSpec::builder("dvfs")
        .setting(
            SettingSpec::new("slow")
                .effect(Axis::Performance, 0.5)
                .effect(Axis::Power, 0.4),
        )
        .setting(SettingSpec::new("nominal"))
        .setting(
            SettingSpec::new("fast")
                .effect(Axis::Performance, 2.0)
                .effect(Axis::Power, 2.6),
        )
        .nominal(1)
        .build()
        .unwrap();
    let cores = ActuatorSpec::builder("cores")
        .setting(SettingSpec::new("1"))
        .setting(
            SettingSpec::new("2")
                .effect(Axis::Performance, 1.9)
                .effect(Axis::Power, 2.0),
        )
        .build()
        .unwrap();
    vec![
        Box::new(TableActuator::new(dvfs)),
        Box::new(TableActuator::new(cores)),
    ]
}

/// One generated application slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    seed: u64,
    weight: f64,
    target: f64,
    arrival: usize,
    departure: Option<usize>,
}

fn decode_slots(
    seeds: &[u64],
    weights: &[f64],
    targets: &[f64],
    arrivals: &[usize],
    departures: &[usize],
    quanta: usize,
) -> Vec<Slot> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let arrival = arrivals[i] % quanta;
            // Departure scalar 0 = stays forever; otherwise a half-open
            // window of at least one quantum.
            let departure = (departures[i] > 0)
                .then(|| (arrival + 1 + departures[i] % quanta).min(quanta));
            Slot {
                seed,
                weight: weights[i],
                target: targets[i],
                arrival,
                departure,
            }
        })
        .collect()
}

fn managed(slot: Slot, index: usize) -> ManagedApp {
    let benchmark = SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()];
    let driver = HeartbeatedWorkload::new(Workload::new(benchmark, slot.seed));
    driver.set_heart_rate_goal(slot.target);
    let runtime = SeecRuntime::builder(driver.monitor())
        .actuators(actuators())
        .exploration(ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        })
        .seed(slot.seed)
        .build()
        .unwrap();
    let mut app = ManagedApp::new(driver, runtime)
        .with_weight(slot.weight)
        .with_arrival(slot.arrival)
        .with_nominal_power_hint(10.0);
    if let Some(departure) = slot.departure {
        app = app.with_departure(departure);
    }
    app
}

/// Drives a fleet for `quanta` steps against a platform mirroring each
/// app's declared effects exactly, returning the full per-step trace
/// (summary, awards, per-app decisions) for exact comparison.
type Trace = Vec<(
    coordinator::StepSummary,
    Vec<f64>,
    Vec<Option<seec::CapDecision>>,
)>;

fn drive(
    policy: Box<dyn ArbitrationPolicy>,
    slots: &[Slot],
    quanta: usize,
    workers: usize,
) -> Trace {
    // Threshold 0: even these small generated fleets exercise the pooled
    // (sharded) step rather than the inline one.
    let mut coordinator = Coordinator::new(35.0, policy)
        .with_workers(workers)
        .with_shard_threshold(0);
    let handles: Vec<AppHandle> = slots
        .iter()
        .enumerate()
        .map(|(index, &slot)| coordinator.register(managed(slot, index)))
        .collect();
    let mut now = 0.0;
    let mut trace = Trace::new();
    for quantum in 0..quanta {
        now += 1.0;
        for &handle in &handles {
            if !coordinator.app(handle).active_at(quantum) {
                continue;
            }
            let effect = {
                let runtime = coordinator.app(handle).runtime();
                runtime
                    .model()
                    .space()
                    .predicted_effect(runtime.current_configuration())
                    .unwrap()
            };
            coordinator.advance(
                handle,
                now - 1.0,
                now,
                10.0 * effect.performance,
                10.0 * effect.power,
            );
        }
        let summary = coordinator.step(now).unwrap();
        trace.push((
            summary,
            coordinator.awards().to_vec(),
            handles
                .iter()
                .map(|&h| coordinator.app(h).last_decision())
                .collect(),
        ));
    }
    trace
}

fn policies() -> Vec<Box<dyn ArbitrationPolicy>> {
    vec![
        Box::new(StaticShare),
        Box::new(WeightedFair),
        Box::new(PerformanceMarket::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_step_is_bit_identical_to_sequential_for_arbitrary_fleets(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..9),
        weights in proptest::collection::vec(0.25..8.0f64, 9),
        targets in proptest::collection::vec(5.0..80.0f64, 9),
        arrivals in proptest::collection::vec(0usize..12, 9),
        departures in proptest::collection::vec(0usize..12, 9),
        policy_pick in 0usize..3,
        workers_a in 2usize..9,
        workers_b in 2usize..9,
    ) {
        let quanta = 12;
        let slots = decode_slots(&seeds, &weights, &targets, &arrivals, &departures, quanta);
        let policy = || policies().swap_remove(policy_pick);
        let sequential = drive(policy(), &slots, quanta, 1);
        for workers in [workers_a, workers_b] {
            let sharded = drive(policy(), &slots, quanta, workers);
            prop_assert!(
                sequential == sharded,
                "sharded run diverged at {} workers over {} apps",
                workers,
                slots.len()
            );
        }
    }

    #[test]
    fn budget_is_conserved_across_arbitrary_register_retire_sequences(
        initial_seeds in proptest::collection::vec(1u64..1_000_000, 1..4),
        churn_seeds in proptest::collection::vec(1u64..1_000_000, 8),
        churn_quanta in proptest::collection::vec(0usize..16, 8),
        churn_kinds in proptest::collection::vec(0usize..2, 8),
        weights in proptest::collection::vec(0.25..8.0f64, 12),
        targets in proptest::collection::vec(5.0..80.0f64, 12),
        policy_pick in 0usize..3,
        workers in 1usize..5,
    ) {
        let quanta = 16usize;
        let budget = 30.0;
        let policy = policies().swap_remove(policy_pick);
        let policy_name = policy.name();
        let mut coordinator = Coordinator::new(budget, policy)
            .with_workers(workers)
            .with_shard_threshold(0);
        let mut handles: Vec<AppHandle> = Vec::new();
        let mut next_app = 0usize;
        let mut register = |coordinator: &mut Coordinator, handles: &mut Vec<AppHandle>, seed: u64| {
            let slot = Slot {
                seed,
                weight: weights[next_app % weights.len()],
                target: targets[next_app % targets.len()],
                arrival: 0,
                departure: None,
            };
            handles.push(coordinator.register(managed(slot, next_app)));
            next_app += 1;
        };
        for &seed in &initial_seeds {
            register(&mut coordinator, &mut handles, seed);
        }

        let mut now = 0.0;
        for quantum in 0..quanta {
            // Apply this quantum's churn events (in generated order).
            for (event, &at) in churn_quanta.iter().enumerate() {
                if at != quantum {
                    continue;
                }
                if churn_kinds[event] == 0 {
                    register(&mut coordinator, &mut handles, churn_seeds[event]);
                } else if let Some(&victim) =
                    handles.get(churn_seeds[event] as usize % handles.len().max(1))
                {
                    coordinator.retire(victim);
                }
            }

            now += 1.0;
            for &handle in &handles {
                if !coordinator.app(handle).active_at(coordinator.quantum()) {
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                coordinator.advance(
                    handle,
                    now - 1.0,
                    now,
                    10.0 * effect.performance,
                    10.0 * effect.power,
                );
            }
            let stepped_at = coordinator.quantum();
            let summary = coordinator.step(now).unwrap();
            prop_assert_eq!(summary.quantum, stepped_at);

            let apps: Vec<AwardedApp> = handles
                .iter()
                .map(|&handle| AwardedApp {
                    active: coordinator.app(handle).active_at(stepped_at),
                    ceiling: None,
                })
                .collect();
            let violations = check_award_vector(coordinator.awards(), &apps);
            prop_assert!(
                violations.is_empty(),
                "{policy_name}: award invariants violated at quantum {stepped_at}: {violations:?}"
            );
            let total = active_total(coordinator.awards(), &apps);
            prop_assert!(
                check_budget_conservation(total, budget * 0.95).is_none(),
                "{policy_name}: awards {total} exceed the headroomed budget at quantum {stepped_at} \
                 with {} registered apps",
                handles.len()
            );
            prop_assert!(
                check_summary_total(summary.awarded_watts_total, total).is_none(),
                "{policy_name}: summary total {} vs recomputed {total}",
                summary.awarded_watts_total
            );
        }
    }
}
