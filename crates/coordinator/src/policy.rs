//! Power-budget arbitration policies.
//!
//! Every decision quantum, the [`crate::Coordinator`] turns each
//! application's state into an [`AppRequest`] and asks an
//! [`ArbitrationPolicy`] to split the machine's power budget into per-app
//! envelopes. Policies are pluggable; three ship with the crate:
//!
//! * [`StaticShare`] — the budget divided equally among present apps,
//! * [`WeightedFair`] — water-filling proportional to priority weight,
//! * [`PerformanceMarket`] — water-filling proportional to
//!   `weight × heartbeat-gap urgency`, so applications behind on their
//!   goals outbid applications already meeting them.
//!
//! Every policy must *conserve the budget*: the awards of present apps sum
//! to at most the budget, and absent apps are awarded exactly zero. The
//! property suite (`tests/arbitration_props.rs`) pins this for arbitrary
//! app mixes, along with [`WeightedFair`]'s weight monotonicity.

/// One application's state, as the arbiter sees it this quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppRequest {
    /// Whether the application is present (arrived and not yet departed).
    /// Absent applications must be awarded exactly 0 W.
    pub active: bool,
    /// Priority weight; higher is more important. Must be positive.
    pub weight: f64,
    /// Heartbeat-gap urgency: the ratio of the application's target heart
    /// rate to its observed rate (1.0 = exactly on goal, above 1.0 =
    /// falling behind). 1.0 when the application has no feedback yet.
    pub urgency: f64,
    /// The most power the application can usefully absorb, in watts (its
    /// most expensive configuration). Awards above this are wasted, so
    /// water-filling policies redistribute the surplus.
    pub max_power_watts: f64,
}

/// A strategy for splitting a machine power budget into per-app envelopes.
///
/// Policies are pluggable: implement the trait and hand the box to
/// [`crate::Coordinator::new`] (or swap it mid-run with
/// [`crate::Coordinator::set_policy`]). A minimal custom policy — strict
/// priority, highest weight first, each app taking what it can absorb:
///
/// ```
/// use coordinator::{AppRequest, ArbitrationPolicy};
///
/// struct StrictPriority;
///
/// impl ArbitrationPolicy for StrictPriority {
///     fn name(&self) -> &'static str {
///         "strict-priority"
///     }
///
///     fn arbitrate(&mut self, budget: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
///         awards.clear();
///         awards.resize(requests.len(), 0.0);
///         // Highest weight first; ties resolve by index for determinism.
///         let mut order: Vec<usize> = (0..requests.len()).collect();
///         order.sort_by(|&a, &b| {
///             requests[b].weight.total_cmp(&requests[a].weight).then(a.cmp(&b))
///         });
///         let mut remaining = budget;
///         for i in order {
///             if !requests[i].active || remaining <= 0.0 {
///                 continue;
///             }
///             awards[i] = requests[i].max_power_watts.clamp(0.0, remaining);
///             remaining -= awards[i];
///         }
///     }
/// }
///
/// let requests = [
///     AppRequest { active: true, weight: 1.0, urgency: 1.0, max_power_watts: 40.0 },
///     AppRequest { active: true, weight: 4.0, urgency: 1.0, max_power_watts: 40.0 },
///     AppRequest { active: false, weight: 9.0, urgency: 1.0, max_power_watts: 40.0 },
/// ];
/// let mut awards = Vec::new();
/// StrictPriority.arbitrate(50.0, &requests, &mut awards);
/// assert_eq!(awards, vec![10.0, 40.0, 0.0]); // heavy first, absent app 0 W
/// assert!(awards.iter().sum::<f64>() <= 50.0); // budget conserved
/// ```
pub trait ArbitrationPolicy: Send {
    /// Short policy name for reports and JSON output.
    fn name(&self) -> &'static str;

    /// Splits `budget_watts` across `requests`, writing one award (watts)
    /// per request into `awards` (cleared first, so the buffer is reusable).
    ///
    /// Contract: `awards.len() == requests.len()`, every award is
    /// non-negative and finite, inactive requests are awarded 0, and the
    /// sum of awards is at most `budget_watts` (within floating-point
    /// round-off).
    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>);
}

/// Equal static shares: the budget divided by the number of present
/// applications, clamped to what each can absorb. Surplus from clamped
/// applications is *not* redistributed — the shares are static, which is
/// precisely this policy's weakness and why it is the arbitration baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticShare;

impl ArbitrationPolicy for StaticShare {
    fn name(&self) -> &'static str {
        "static-share"
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        awards.clear();
        let active = requests.iter().filter(|r| r.active).count();
        if active == 0 || budget_watts.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            awards.extend(std::iter::repeat_n(0.0, requests.len()));
            return;
        }
        if budget_watts.is_infinite() {
            award_ceilings(requests, awards);
            return;
        }
        let share = budget_watts / active as f64;
        awards.extend(
            requests
                .iter()
                .map(|r| if r.active { share.min(r.max_power_watts.max(0.0)) } else { 0.0 }),
        );
    }
}

/// Weighted max-min fairness: awards proportional to priority weight, with
/// water-filling — an application clamped at what it can absorb returns its
/// surplus to the pool, which is re-divided among the still-unclamped by
/// weight until the budget is spent or everyone is satisfied.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFair;

impl ArbitrationPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted-fair"
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        water_fill(budget_watts, requests, awards, |r| r.weight);
    }
}

/// A bid-based performance market: each application bids
/// `weight × urgency`, so applications behind on their heartbeat goals
/// outbid applications already meeting them, weighted by how much the
/// operator cares. Awards are water-filled proportional to bids.
#[derive(Debug, Clone, Copy)]
pub struct PerformanceMarket {
    /// Urgency is clamped into `[min_urgency, max_urgency]` before bidding,
    /// so an idle app still bids something (it needs power to keep making
    /// progress) and a starving app cannot corner the entire budget.
    pub min_urgency: f64,
    /// Upper urgency clamp.
    pub max_urgency: f64,
}

impl Default for PerformanceMarket {
    fn default() -> Self {
        PerformanceMarket {
            min_urgency: 0.25,
            max_urgency: 8.0,
        }
    }
}

impl ArbitrationPolicy for PerformanceMarket {
    fn name(&self) -> &'static str {
        "performance-market"
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        let (lo, hi) = (self.min_urgency, self.max_urgency);
        water_fill(budget_watts, requests, awards, |r| {
            let urgency = if r.urgency.is_finite() && r.urgency > 0.0 {
                r.urgency.clamp(lo, hi)
            } else {
                hi // no observable progress at all: bid the ceiling
            };
            r.weight * urgency
        });
    }
}

/// Water-filling proportional division: split `budget_watts` among active
/// requests proportionally to `key`, clamping each award at the request's
/// `max_power_watts` and re-dividing the freed surplus among the unclamped
/// until the budget is exhausted or everyone is clamped. Deterministic:
/// requests are processed in index order every round.
fn water_fill<K: Fn(&AppRequest) -> f64>(
    budget_watts: f64,
    requests: &[AppRequest],
    awards: &mut Vec<f64>,
    key: K,
) {
    awards.clear();
    awards.extend(std::iter::repeat_n(0.0, requests.len()));
    if budget_watts.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return;
    }
    if budget_watts.is_infinite() {
        // An unbounded budget has no proportional division to do (and the
        // arithmetic below would produce non-finite awards): everyone gets
        // what they can absorb.
        award_ceilings(requests, awards);
        return;
    }
    // `open[i]`: still participating in proportional division.
    let mut open: Vec<bool> = requests.iter().map(|r| r.active).collect();
    let mut remaining = budget_watts;
    // Each round clamps at least one request, so at most `len` rounds.
    for _ in 0..requests.len() {
        let total_key: f64 = requests
            .iter()
            .zip(&open)
            .filter(|(_, &o)| o)
            .map(|(r, _)| key(r).max(0.0))
            .sum();
        if total_key.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || remaining.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            break;
        }
        let mut clamped_any = false;
        let per_key = remaining / total_key;
        for (i, request) in requests.iter().enumerate() {
            if !open[i] {
                continue;
            }
            let share = per_key * key(request).max(0.0);
            let ceiling = request.max_power_watts.max(0.0);
            if awards[i] + share >= ceiling {
                // Clamp and leave the pool; the surplus stays in
                // `remaining` for the next round.
                remaining -= ceiling - awards[i];
                awards[i] = ceiling;
                open[i] = false;
                clamped_any = true;
            }
        }
        if !clamped_any {
            // No ceilings hit: hand out the proportional shares and stop.
            for (i, request) in requests.iter().enumerate() {
                if open[i] {
                    awards[i] += per_key * key(request).max(0.0);
                }
            }
            break;
        }
    }
    debug_assert!(
        awards.iter().sum::<f64>() <= budget_watts * (1.0 + 1e-9),
        "water-fill must conserve the budget"
    );
}

/// Awards every active request its absorption ceiling — the degenerate
/// division under an unbounded budget. Ceilings are saturated at
/// `f64::MAX` so the "every award is finite" contract holds even for
/// requests that declared an infinite ceiling.
fn award_ceilings(requests: &[AppRequest], awards: &mut Vec<f64>) {
    awards.clear();
    awards.extend(requests.iter().map(|request| {
        if request.active {
            request.max_power_watts.clamp(0.0, f64::MAX)
        } else {
            0.0
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(weight: f64, urgency: f64, max: f64) -> AppRequest {
        AppRequest {
            active: true,
            weight,
            urgency,
            max_power_watts: max,
        }
    }

    fn total(awards: &[f64]) -> f64 {
        awards.iter().sum()
    }

    #[test]
    fn static_share_divides_equally_and_zeroes_absent_apps() {
        let mut policy = StaticShare;
        let mut awards = Vec::new();
        let requests = [
            request(1.0, 1.0, 100.0),
            AppRequest {
                active: false,
                ..request(9.0, 9.0, 100.0)
            },
            request(4.0, 1.0, 100.0),
        ];
        policy.arbitrate(60.0, &requests, &mut awards);
        assert_eq!(awards, vec![30.0, 0.0, 30.0]);
        assert_eq!(policy.name(), "static-share");
    }

    #[test]
    fn static_share_clamps_to_what_an_app_can_absorb() {
        let mut policy = StaticShare;
        let mut awards = Vec::new();
        policy.arbitrate(100.0, &[request(1.0, 1.0, 10.0), request(1.0, 1.0, 100.0)], &mut awards);
        // The clamped app's surplus is NOT redistributed: that is the point.
        assert_eq!(awards, vec![10.0, 50.0]);
    }

    #[test]
    fn weighted_fair_is_proportional_and_water_fills() {
        let mut policy = WeightedFair;
        let mut awards = Vec::new();
        policy.arbitrate(
            90.0,
            &[request(1.0, 1.0, 1000.0), request(2.0, 1.0, 1000.0)],
            &mut awards,
        );
        assert!((awards[0] - 30.0).abs() < 1e-9);
        assert!((awards[1] - 60.0).abs() < 1e-9);
        // Clamp the heavy app at 40 W: its surplus flows to the light one.
        policy.arbitrate(
            90.0,
            &[request(1.0, 1.0, 1000.0), request(2.0, 1.0, 40.0)],
            &mut awards,
        );
        assert!((awards[1] - 40.0).abs() < 1e-9);
        assert!((awards[0] - 50.0).abs() < 1e-9);
        assert!(total(&awards) <= 90.0 + 1e-9);
    }

    #[test]
    fn market_pays_urgent_apps_more() {
        let mut policy = PerformanceMarket::default();
        let mut awards = Vec::new();
        // Equal weights; app 0 is on goal (urgency 1), app 1 is 3x behind.
        policy.arbitrate(
            80.0,
            &[request(1.0, 1.0, 1000.0), request(1.0, 3.0, 1000.0)],
            &mut awards,
        );
        assert!((awards[0] - 20.0).abs() < 1e-9);
        assert!((awards[1] - 60.0).abs() < 1e-9);
        // Urgency is clamped: a starving app cannot corner the budget.
        policy.arbitrate(
            80.0,
            &[request(1.0, 1.0, 1000.0), request(1.0, 1.0e9, 1000.0)],
            &mut awards,
        );
        assert!(awards[0] > 0.0);
        assert!((awards[1] / awards[0] - policy.max_urgency).abs() < 1e-9);
        // Unobservable progress bids the ceiling, not NaN.
        policy.arbitrate(
            80.0,
            &[request(1.0, f64::NAN, 1000.0), request(1.0, 1.0, 1000.0)],
            &mut awards,
        );
        assert!(total(&awards) <= 80.0 + 1e-9);
        assert!(awards[0] > awards[1]);
    }

    #[test]
    fn empty_or_inactive_fleets_award_nothing() {
        let mut awards = Vec::new();
        let inactive = [AppRequest {
            active: false,
            ..request(1.0, 1.0, 100.0)
        }];
        StaticShare.arbitrate(100.0, &inactive, &mut awards);
        assert_eq!(awards, vec![0.0]);
        WeightedFair.arbitrate(100.0, &inactive, &mut awards);
        assert_eq!(awards, vec![0.0]);
        PerformanceMarket::default().arbitrate(100.0, &inactive, &mut awards);
        assert_eq!(awards, vec![0.0]);
        StaticShare.arbitrate(100.0, &[], &mut awards);
        assert!(awards.is_empty());
    }

    #[test]
    fn infinite_budget_awards_finite_ceilings() {
        // An uncapped machine is documented as supported; awards must stay
        // finite even when an app's own ceiling is unknown (infinite).
        let mut awards = Vec::new();
        let requests = [
            request(1.0, 1.0, f64::INFINITY),
            request(2.0, 3.0, 40.0),
            AppRequest {
                active: false,
                ..request(1.0, 1.0, 10.0)
            },
        ];
        let mut policies: Vec<Box<dyn ArbitrationPolicy>> = vec![
            Box::new(StaticShare),
            Box::new(WeightedFair),
            Box::new(PerformanceMarket::default()),
        ];
        for policy in &mut policies {
            policy.arbitrate(f64::INFINITY, &requests, &mut awards);
            assert!(
                awards.iter().all(|a| a.is_finite() && *a >= 0.0),
                "{}: {awards:?}",
                policy.name()
            );
            assert_eq!(awards[1], 40.0, "{}", policy.name());
            assert_eq!(awards[2], 0.0, "{}", policy.name());
        }
    }

    #[test]
    fn everyone_clamped_leaves_budget_unspent() {
        let mut policy = WeightedFair;
        let mut awards = Vec::new();
        policy.arbitrate(100.0, &[request(1.0, 1.0, 10.0), request(5.0, 1.0, 15.0)], &mut awards);
        assert_eq!(awards, vec![10.0, 15.0]);
    }
}
