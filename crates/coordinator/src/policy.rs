//! Power-budget arbitration policies.
//!
//! Every decision quantum, the [`crate::Coordinator`] turns each
//! application's state into an [`AppRequest`] and asks an
//! [`ArbitrationPolicy`] to split the machine's power budget into per-app
//! envelopes. Policies are pluggable; three ship with the crate:
//!
//! * [`StaticShare`] — the budget divided equally among present apps,
//! * [`WeightedFair`] — water-filling proportional to priority weight,
//! * [`PerformanceMarket`] — water-filling proportional to
//!   `weight × heartbeat-gap urgency`, so applications behind on their
//!   goals outbid applications already meeting them.
//!
//! Every policy must *conserve the budget*: the awards of present apps sum
//! to at most the budget, and absent apps are awarded exactly zero. The
//! property suite (`tests/arbitration_props.rs`) pins this for arbitrary
//! app mixes, along with [`WeightedFair`]'s weight monotonicity.

/// One application's state, as the arbiter sees it this quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppRequest {
    /// Whether the application is present (arrived and not yet departed).
    /// Absent applications must be awarded exactly 0 W.
    pub active: bool,
    /// Priority weight; higher is more important. Must be positive.
    pub weight: f64,
    /// Heartbeat-gap urgency: the ratio of the application's target heart
    /// rate to its observed rate (1.0 = exactly on goal, above 1.0 =
    /// falling behind). 1.0 when the application has no feedback yet.
    pub urgency: f64,
    /// The most power the application can usefully absorb, in watts (its
    /// most expensive configuration). Awards above this are wasted, so
    /// water-filling policies redistribute the surplus.
    pub max_power_watts: f64,
}

/// A strategy for splitting a machine power budget into per-app envelopes.
///
/// Policies are pluggable: implement the trait and hand the box to
/// [`crate::Coordinator::new`] (or swap it mid-run with
/// [`crate::Coordinator::set_policy`]). A minimal custom policy — strict
/// priority, highest weight first, each app taking what it can absorb:
///
/// ```
/// use coordinator::{AppRequest, ArbitrationPolicy};
///
/// struct StrictPriority;
///
/// impl ArbitrationPolicy for StrictPriority {
///     fn name(&self) -> &'static str {
///         "strict-priority"
///     }
///
///     fn arbitrate(&mut self, budget: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
///         awards.clear();
///         awards.resize(requests.len(), 0.0);
///         // Highest weight first; ties resolve by index for determinism.
///         let mut order: Vec<usize> = (0..requests.len()).collect();
///         order.sort_by(|&a, &b| {
///             requests[b].weight.total_cmp(&requests[a].weight).then(a.cmp(&b))
///         });
///         let mut remaining = budget;
///         for i in order {
///             if !requests[i].active || remaining <= 0.0 {
///                 continue;
///             }
///             awards[i] = requests[i].max_power_watts.clamp(0.0, remaining);
///             remaining -= awards[i];
///         }
///     }
/// }
///
/// let requests = [
///     AppRequest { active: true, weight: 1.0, urgency: 1.0, max_power_watts: 40.0 },
///     AppRequest { active: true, weight: 4.0, urgency: 1.0, max_power_watts: 40.0 },
///     AppRequest { active: false, weight: 9.0, urgency: 1.0, max_power_watts: 40.0 },
/// ];
/// let mut awards = Vec::new();
/// StrictPriority.arbitrate(50.0, &requests, &mut awards);
/// assert_eq!(awards, vec![10.0, 40.0, 0.0]); // heavy first, absent app 0 W
/// assert!(awards.iter().sum::<f64>() <= 50.0); // budget conserved
/// ```
pub trait ArbitrationPolicy: Send {
    /// Short policy name for reports and JSON output.
    fn name(&self) -> &'static str;

    /// Splits `budget_watts` across `requests`, writing one award (watts)
    /// per request into `awards` (cleared first, so the buffer is reusable).
    ///
    /// Contract: `awards.len() == requests.len()`, every award is
    /// non-negative and finite, inactive requests are awarded 0, and the
    /// sum of awards is at most `budget_watts` (within floating-point
    /// round-off).
    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>);

    /// True when every award depends only on the *participating* requests —
    /// their values and their relative order — never on absolute slot
    /// indices or on state carried between calls. Deleting inactive rows
    /// from the slice then leaves every surviving award bit-identical
    /// (water-filling folds its participants in ascending index order, so
    /// the partial sums are unchanged). The incremental engine's wake
    /// scheduler uses this to arbitrate a *compacted* slice of just the
    /// dirty slots instead of a fleet-length masked one.
    ///
    /// Defaults to `false`: stateful policies that key held state on slot
    /// position (e.g. [`AwardHysteresis`]) must never be compacted.
    fn index_invariant(&self) -> bool {
        false
    }
}

/// Equal static shares: the budget divided by the number of present
/// applications, clamped to what each can absorb. Surplus from clamped
/// applications is *not* redistributed — the shares are static, which is
/// precisely this policy's weakness and why it is the arbitration baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticShare;

impl ArbitrationPolicy for StaticShare {
    fn name(&self) -> &'static str {
        "static-share"
    }

    fn index_invariant(&self) -> bool {
        true // stateless; awards depend on the active count and each row
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        awards.clear();
        let active = requests.iter().filter(|r| r.active).count();
        if active == 0 || budget_watts.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            awards.extend(std::iter::repeat_n(0.0, requests.len()));
            return;
        }
        if budget_watts.is_infinite() {
            award_ceilings(requests, awards);
            return;
        }
        let share = budget_watts / active as f64;
        awards.extend(
            requests
                .iter()
                .map(|r| if r.active { share.min(r.max_power_watts.max(0.0)) } else { 0.0 }),
        );
    }
}

/// Weighted max-min fairness: awards proportional to priority weight, with
/// water-filling — an application clamped at what it can absorb returns its
/// surplus to the pool, which is re-divided among the still-unclamped by
/// weight until the budget is spent or everyone is satisfied.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFair;

impl ArbitrationPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted-fair"
    }

    fn index_invariant(&self) -> bool {
        true // stateless water-fill in ascending index order
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        water_fill(budget_watts, requests, awards, |r| r.weight);
    }
}

/// A bid-based performance market: each application bids
/// `weight × urgency`, so applications behind on their heartbeat goals
/// outbid applications already meeting them, weighted by how much the
/// operator cares. Awards are water-filled proportional to bids.
#[derive(Debug, Clone, Copy)]
pub struct PerformanceMarket {
    /// Urgency is clamped into `[min_urgency, max_urgency]` before bidding,
    /// so an idle app still bids something (it needs power to keep making
    /// progress) and a starving app cannot corner the entire budget.
    pub min_urgency: f64,
    /// Upper urgency clamp.
    pub max_urgency: f64,
}

impl Default for PerformanceMarket {
    fn default() -> Self {
        PerformanceMarket {
            min_urgency: 0.25,
            max_urgency: 8.0,
        }
    }
}

impl ArbitrationPolicy for PerformanceMarket {
    fn name(&self) -> &'static str {
        "performance-market"
    }

    fn index_invariant(&self) -> bool {
        true // stateless water-fill over per-row bids
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        let (lo, hi) = (self.min_urgency, self.max_urgency);
        water_fill(budget_watts, requests, awards, |r| {
            let urgency = if r.urgency.is_finite() && r.urgency > 0.0 {
                r.urgency.clamp(lo, hi)
            } else {
                hi // no observable progress at all: bid the ceiling
            };
            r.weight * urgency
        });
    }
}

/// Hysteresis wrapper: suppresses award oscillation by holding the previous
/// award vector when the inner policy's fresh proposal differs by less than
/// a dead band.
///
/// Feedback-driven policies (notably [`PerformanceMarket`]) can *limit-cycle*:
/// an app that wins watts speeds up, its urgency drops, it loses the watts
/// next quantum, slows down, and wins them back — forever. The fuzzer's
/// pinned `oscillation` fixture is exactly this orbit. The wrapper breaks
/// the cycle without touching steady-state fairness: each quantum the inner
/// policy proposes a fresh vector, and the proposal is *adopted* only when
/// some award moved by more than `dead_band_fraction × budget`; otherwise
/// the previous awards are re-issued unchanged.
///
/// Reuse is refused (the proposal is always adopted) whenever it could be
/// unsound or mask a real change: the fleet's size or active set changed,
/// the budget dropped below what the held vector spends, or any held award
/// now exceeds a request's absorption ceiling.
///
/// A dead band alone cannot damp a *large*-amplitude limit cycle — when the
/// market swings an award by a third of the budget each quantum, every
/// proposal clears the band and is adopted whole, flip after flip. The
/// optional slew limit ([`AwardHysteresis::with_max_step_fraction`]) closes
/// that gap: a released proposal is approached, not adopted — the whole
/// vector moves proportionally toward it, with no single award moving more
/// than `max_step_fraction × budget` in one quantum. Sustained
/// redistribution still arrives (as a ramp over a few quanta); a limit
/// cycle decays into sub-band dither the hold then flattens. Proportional
/// movement keeps the emitted vector between two conserving vectors, so it
/// conserves the budget whenever the inner policy does.
///
/// ```
/// use coordinator::{AppRequest, ArbitrationPolicy, AwardHysteresis, WeightedFair};
///
/// let mut policy = AwardHysteresis::new(Box::new(WeightedFair), 0.05);
/// let mut awards = Vec::new();
/// let mut requests = [
///     AppRequest { active: true, weight: 1.0, urgency: 1.0, max_power_watts: 100.0 },
///     AppRequest { active: true, weight: 1.0, urgency: 1.0, max_power_watts: 100.0 },
/// ];
/// policy.arbitrate(60.0, &requests, &mut awards);
/// assert_eq!(awards, vec![30.0, 30.0]);
///
/// // A sub-dead-band wiggle (weight 1.0 -> 1.05 proposes ~0.7 W of
/// // movement, under 5% of 60 W): the held vector is re-issued.
/// requests[0].weight = 1.05;
/// policy.arbitrate(60.0, &requests, &mut awards);
/// assert_eq!(awards, vec![30.0, 30.0]);
///
/// // A real shift (weight 3.0) clears the band and is adopted.
/// requests[0].weight = 3.0;
/// policy.arbitrate(60.0, &requests, &mut awards);
/// assert_eq!(awards, vec![45.0, 15.0]);
/// ```
pub struct AwardHysteresis {
    inner: Box<dyn ArbitrationPolicy>,
    dead_band_fraction: f64,
    max_step_fraction: f64,
    held_awards: Vec<f64>,
    held_active: Vec<bool>,
    proposal: Vec<f64>,
}

impl AwardHysteresis {
    /// Wraps `inner`, holding its previous award vector until a fresh
    /// proposal moves some award by more than `dead_band_fraction` of the
    /// budget (clamped into `[0, 1]`; 0 disables the hold entirely).
    pub fn new(inner: Box<dyn ArbitrationPolicy>, dead_band_fraction: f64) -> Self {
        AwardHysteresis {
            inner,
            dead_band_fraction: if dead_band_fraction.is_finite() {
                dead_band_fraction.clamp(0.0, 1.0)
            } else {
                0.0
            },
            max_step_fraction: 0.0,
            held_awards: Vec::new(),
            held_active: Vec::new(),
            proposal: Vec::new(),
        }
    }

    /// Enables the slew limit: a released proposal is approached
    /// proportionally, with no single award moving more than
    /// `max_step_fraction` of the budget per quantum (clamped into
    /// `[0, 1]`; 0 restores whole-vector adoption). Structural changes —
    /// fleet shape, active set, a ceiling the held vector now violates —
    /// still adopt the fresh proposal outright.
    pub fn with_max_step_fraction(mut self, max_step_fraction: f64) -> Self {
        self.max_step_fraction = if max_step_fraction.is_finite() {
            max_step_fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// The configured dead band, as a fraction of the budget.
    pub fn dead_band_fraction(&self) -> f64 {
        self.dead_band_fraction
    }

    /// The configured slew limit, as a fraction of the budget (0 when
    /// disabled).
    pub fn max_step_fraction(&self) -> f64 {
        self.max_step_fraction
    }

    /// True when the held vector is still *structurally* valid: same fleet
    /// shape and active set, finite budget, and under every absorption
    /// ceiling. Affordability is judged separately — a hold needs the held
    /// spend to fit the budget outright, while the slew path can scale the
    /// vector down to fit.
    fn structurally_reusable(&self, budget: f64, requests: &[AppRequest], proposal: &[f64]) -> bool {
        self.held_awards.len() == proposal.len()
            && budget.is_finite()
            && !self
                .held_active
                .iter()
                .zip(requests)
                .any(|(&held, request)| held != request.active)
            && self
                .held_awards
                .iter()
                .zip(requests)
                .all(|(&held, request)| held <= request.max_power_watts.max(0.0) + 1e-9)
    }

    /// True when the held vector can stand in for `proposal` this quantum:
    /// same fleet shape and active set, still affordable under `budget`,
    /// under every ceiling, and within the dead band of the proposal.
    fn can_hold(&self, budget: f64, requests: &[AppRequest], proposal: &[f64]) -> bool {
        if !self.structurally_reusable(budget, requests, proposal) {
            return false;
        }
        if self.held_awards.iter().sum::<f64>() > budget * (1.0 + 1e-9) {
            return false;
        }
        let band = self.dead_band_fraction * budget;
        self.held_awards
            .iter()
            .zip(proposal)
            .all(|(&held, &fresh)| (fresh - held).abs() <= band)
    }
}

impl std::fmt::Debug for AwardHysteresis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AwardHysteresis")
            .field("inner", &self.inner.name())
            .field("dead_band_fraction", &self.dead_band_fraction)
            .finish_non_exhaustive()
    }
}

impl ArbitrationPolicy for AwardHysteresis {
    fn name(&self) -> &'static str {
        "award-hysteresis"
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        self.inner.arbitrate(budget_watts, requests, &mut self.proposal);
        let hold = self.dead_band_fraction > 0.0
            && self.can_hold(budget_watts, requests, &self.proposal);
        if !hold {
            if self.max_step_fraction > 0.0
                && self.structurally_reusable(budget_watts, requests, &self.proposal)
            {
                // Slew toward the released proposal: scale the held vector
                // down if a budget cut made it unaffordable, then move the
                // whole vector proportionally so no award steps more than
                // the slew limit. Every emitted award lies between its held
                // and proposed values, so conservation and ceilings carry
                // over from the two endpoint vectors.
                let held_sum: f64 = self.held_awards.iter().sum();
                if held_sum > budget_watts {
                    let scale = budget_watts.max(0.0) / held_sum;
                    for held in &mut self.held_awards {
                        *held *= scale;
                    }
                }
                let widest = self
                    .held_awards
                    .iter()
                    .zip(&self.proposal)
                    .map(|(&held, &fresh)| (fresh - held).abs())
                    .fold(0.0, f64::max);
                let step = self.max_step_fraction * budget_watts;
                let advance = if widest > step { step / widest } else { 1.0 };
                for (held, &fresh) in self.held_awards.iter_mut().zip(&self.proposal) {
                    *held += advance * (fresh - *held);
                }
            } else {
                self.held_awards.clear();
                self.held_awards.extend_from_slice(&self.proposal);
                self.held_active.clear();
                self.held_active.extend(requests.iter().map(|r| r.active));
            }
        }
        awards.clear();
        awards.extend_from_slice(&self.held_awards);
    }
}

/// Starvation-floor wrapper: reserves an opt-in minimum envelope share for
/// every present application before the inner policy divides the rest.
///
/// Urgency- and weight-driven policies can starve a low-priority app
/// outright when heavy apps can absorb the whole budget. The wrapper
/// guarantees each active app at least
/// `floor_share × budget / active_count` (clamped to the app's own
/// absorption ceiling, so an app that cannot use its floor seat returns the
/// surplus), then lets the inner policy arbitrate the remaining budget on
/// top. Awards are `floor + inner award`, so the wrapper conserves the
/// budget whenever the inner policy does.
///
/// ```
/// use coordinator::{AppRequest, ArbitrationPolicy, StarvationFloor, WeightedFair};
///
/// // Weight 99 vs 1: bare WeightedFair awards the light app 1 W of 100.
/// let requests = [
///     AppRequest { active: true, weight: 99.0, urgency: 1.0, max_power_watts: 1000.0 },
///     AppRequest { active: true, weight: 1.0, urgency: 1.0, max_power_watts: 1000.0 },
/// ];
/// let mut awards = Vec::new();
/// // A 20% floor reserves 10 W per app; the inner policy splits the rest.
/// let mut policy = StarvationFloor::new(Box::new(WeightedFair), 0.2);
/// policy.arbitrate(100.0, &requests, &mut awards);
/// assert!(awards[1] >= 10.0);
/// assert!(awards.iter().sum::<f64>() <= 100.0 + 1e-9);
/// ```
pub struct StarvationFloor {
    inner: Box<dyn ArbitrationPolicy>,
    floor_share: f64,
    floors: Vec<f64>,
    adjusted: Vec<AppRequest>,
    inner_awards: Vec<f64>,
}

impl StarvationFloor {
    /// Wraps `inner`, reserving `floor_share` of the budget (clamped into
    /// `[0, 1]`; 0 disables the floor) as equal minimum seats for active
    /// apps.
    pub fn new(inner: Box<dyn ArbitrationPolicy>, floor_share: f64) -> Self {
        StarvationFloor {
            inner,
            floor_share: if floor_share.is_finite() {
                floor_share.clamp(0.0, 1.0)
            } else {
                0.0
            },
            floors: Vec::new(),
            adjusted: Vec::new(),
            inner_awards: Vec::new(),
        }
    }

    /// The fraction of the budget reserved for minimum seats.
    pub fn floor_share(&self) -> f64 {
        self.floor_share
    }
}

impl std::fmt::Debug for StarvationFloor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarvationFloor")
            .field("inner", &self.inner.name())
            .field("floor_share", &self.floor_share)
            .finish_non_exhaustive()
    }
}

impl ArbitrationPolicy for StarvationFloor {
    fn name(&self) -> &'static str {
        "starvation-floor"
    }

    fn index_invariant(&self) -> bool {
        // Floors are per-row functions of the active count; invariance is
        // inherited from whatever divides the rest.
        self.inner.index_invariant()
    }

    fn arbitrate(&mut self, budget_watts: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
        let active = requests.iter().filter(|r| r.active).count();
        if active == 0
            || self.floor_share <= 0.0
            || !budget_watts.is_finite()
            || budget_watts.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            // Nothing to reserve: degenerate cases fall through unchanged.
            self.inner.arbitrate(budget_watts, requests, awards);
            return;
        }
        let seat = self.floor_share * budget_watts / active as f64;
        self.floors.clear();
        self.floors.extend(requests.iter().map(|request| {
            if request.active {
                seat.min(request.max_power_watts.max(0.0))
            } else {
                0.0
            }
        }));
        let reserved: f64 = self.floors.iter().sum();
        // The inner pass sees each ceiling reduced by the seat already
        // granted, so `floor + inner` never exceeds what an app can absorb.
        self.adjusted.clear();
        self.adjusted
            .extend(requests.iter().zip(&self.floors).map(|(request, &floor)| {
                AppRequest {
                    max_power_watts: (request.max_power_watts - floor).max(0.0),
                    ..*request
                }
            }));
        self.inner.arbitrate(
            (budget_watts - reserved).max(0.0),
            &self.adjusted,
            &mut self.inner_awards,
        );
        awards.clear();
        awards.extend(
            self.floors
                .iter()
                .zip(&self.inner_awards)
                .map(|(&floor, &inner)| floor + inner),
        );
    }
}

/// Water-filling proportional division: split `budget_watts` among active
/// requests proportionally to `key`, clamping each award at the request's
/// `max_power_watts` and re-dividing the freed surplus among the unclamped
/// until the budget is exhausted or everyone is clamped. Deterministic:
/// requests are processed in index order every round.
fn water_fill<K: Fn(&AppRequest) -> f64>(
    budget_watts: f64,
    requests: &[AppRequest],
    awards: &mut Vec<f64>,
    key: K,
) {
    awards.clear();
    awards.extend(std::iter::repeat_n(0.0, requests.len()));
    if budget_watts.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return;
    }
    if budget_watts.is_infinite() {
        // An unbounded budget has no proportional division to do (and the
        // arithmetic below would produce non-finite awards): everyone gets
        // what they can absorb.
        award_ceilings(requests, awards);
        return;
    }
    // `open[i]`: still participating in proportional division.
    let mut open: Vec<bool> = requests.iter().map(|r| r.active).collect();
    let mut remaining = budget_watts;
    // Each round clamps at least one request, so at most `len` rounds.
    for _ in 0..requests.len() {
        let total_key: f64 = requests
            .iter()
            .zip(&open)
            .filter(|(_, &o)| o)
            .map(|(r, _)| key(r).max(0.0))
            .sum();
        if total_key.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || remaining.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            break;
        }
        let mut clamped_any = false;
        let per_key = remaining / total_key;
        for (i, request) in requests.iter().enumerate() {
            if !open[i] {
                continue;
            }
            let share = per_key * key(request).max(0.0);
            let ceiling = request.max_power_watts.max(0.0);
            if awards[i] + share >= ceiling {
                // Clamp and leave the pool; the surplus stays in
                // `remaining` for the next round.
                remaining -= ceiling - awards[i];
                awards[i] = ceiling;
                open[i] = false;
                clamped_any = true;
            }
        }
        if !clamped_any {
            // No ceilings hit: hand out the proportional shares and stop.
            for (i, request) in requests.iter().enumerate() {
                if open[i] {
                    awards[i] += per_key * key(request).max(0.0);
                }
            }
            break;
        }
    }
    debug_assert!(
        awards.iter().sum::<f64>() <= budget_watts * (1.0 + 1e-9),
        "water-fill must conserve the budget"
    );
}

/// Awards every active request its absorption ceiling — the degenerate
/// division under an unbounded budget. Ceilings are saturated at
/// `f64::MAX` so the "every award is finite" contract holds even for
/// requests that declared an infinite ceiling.
fn award_ceilings(requests: &[AppRequest], awards: &mut Vec<f64>) {
    awards.clear();
    awards.extend(requests.iter().map(|request| {
        if request.active {
            request.max_power_watts.clamp(0.0, f64::MAX)
        } else {
            0.0
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(weight: f64, urgency: f64, max: f64) -> AppRequest {
        AppRequest {
            active: true,
            weight,
            urgency,
            max_power_watts: max,
        }
    }

    fn total(awards: &[f64]) -> f64 {
        awards.iter().sum()
    }

    #[test]
    fn static_share_divides_equally_and_zeroes_absent_apps() {
        let mut policy = StaticShare;
        let mut awards = Vec::new();
        let requests = [
            request(1.0, 1.0, 100.0),
            AppRequest {
                active: false,
                ..request(9.0, 9.0, 100.0)
            },
            request(4.0, 1.0, 100.0),
        ];
        policy.arbitrate(60.0, &requests, &mut awards);
        assert_eq!(awards, vec![30.0, 0.0, 30.0]);
        assert_eq!(policy.name(), "static-share");
    }

    #[test]
    fn static_share_clamps_to_what_an_app_can_absorb() {
        let mut policy = StaticShare;
        let mut awards = Vec::new();
        policy.arbitrate(100.0, &[request(1.0, 1.0, 10.0), request(1.0, 1.0, 100.0)], &mut awards);
        // The clamped app's surplus is NOT redistributed: that is the point.
        assert_eq!(awards, vec![10.0, 50.0]);
    }

    #[test]
    fn weighted_fair_is_proportional_and_water_fills() {
        let mut policy = WeightedFair;
        let mut awards = Vec::new();
        policy.arbitrate(
            90.0,
            &[request(1.0, 1.0, 1000.0), request(2.0, 1.0, 1000.0)],
            &mut awards,
        );
        assert!((awards[0] - 30.0).abs() < 1e-9);
        assert!((awards[1] - 60.0).abs() < 1e-9);
        // Clamp the heavy app at 40 W: its surplus flows to the light one.
        policy.arbitrate(
            90.0,
            &[request(1.0, 1.0, 1000.0), request(2.0, 1.0, 40.0)],
            &mut awards,
        );
        assert!((awards[1] - 40.0).abs() < 1e-9);
        assert!((awards[0] - 50.0).abs() < 1e-9);
        assert!(total(&awards) <= 90.0 + 1e-9);
    }

    #[test]
    fn market_pays_urgent_apps_more() {
        let mut policy = PerformanceMarket::default();
        let mut awards = Vec::new();
        // Equal weights; app 0 is on goal (urgency 1), app 1 is 3x behind.
        policy.arbitrate(
            80.0,
            &[request(1.0, 1.0, 1000.0), request(1.0, 3.0, 1000.0)],
            &mut awards,
        );
        assert!((awards[0] - 20.0).abs() < 1e-9);
        assert!((awards[1] - 60.0).abs() < 1e-9);
        // Urgency is clamped: a starving app cannot corner the budget.
        policy.arbitrate(
            80.0,
            &[request(1.0, 1.0, 1000.0), request(1.0, 1.0e9, 1000.0)],
            &mut awards,
        );
        assert!(awards[0] > 0.0);
        assert!((awards[1] / awards[0] - policy.max_urgency).abs() < 1e-9);
        // Unobservable progress bids the ceiling, not NaN.
        policy.arbitrate(
            80.0,
            &[request(1.0, f64::NAN, 1000.0), request(1.0, 1.0, 1000.0)],
            &mut awards,
        );
        assert!(total(&awards) <= 80.0 + 1e-9);
        assert!(awards[0] > awards[1]);
    }

    #[test]
    fn empty_or_inactive_fleets_award_nothing() {
        let mut awards = Vec::new();
        let inactive = [AppRequest {
            active: false,
            ..request(1.0, 1.0, 100.0)
        }];
        StaticShare.arbitrate(100.0, &inactive, &mut awards);
        assert_eq!(awards, vec![0.0]);
        WeightedFair.arbitrate(100.0, &inactive, &mut awards);
        assert_eq!(awards, vec![0.0]);
        PerformanceMarket::default().arbitrate(100.0, &inactive, &mut awards);
        assert_eq!(awards, vec![0.0]);
        StaticShare.arbitrate(100.0, &[], &mut awards);
        assert!(awards.is_empty());
    }

    #[test]
    fn infinite_budget_awards_finite_ceilings() {
        // An uncapped machine is documented as supported; awards must stay
        // finite even when an app's own ceiling is unknown (infinite).
        let mut awards = Vec::new();
        let requests = [
            request(1.0, 1.0, f64::INFINITY),
            request(2.0, 3.0, 40.0),
            AppRequest {
                active: false,
                ..request(1.0, 1.0, 10.0)
            },
        ];
        let mut policies: Vec<Box<dyn ArbitrationPolicy>> = vec![
            Box::new(StaticShare),
            Box::new(WeightedFair),
            Box::new(PerformanceMarket::default()),
        ];
        for policy in &mut policies {
            policy.arbitrate(f64::INFINITY, &requests, &mut awards);
            assert!(
                awards.iter().all(|a| a.is_finite() && *a >= 0.0),
                "{}: {awards:?}",
                policy.name()
            );
            assert_eq!(awards[1], 40.0, "{}", policy.name());
            assert_eq!(awards[2], 0.0, "{}", policy.name());
        }
    }

    #[test]
    fn hysteresis_holds_small_wiggles_and_releases_on_fleet_changes() {
        let mut policy = AwardHysteresis::new(Box::new(PerformanceMarket::default()), 0.05);
        assert_eq!(policy.name(), "award-hysteresis");
        let mut awards = Vec::new();
        let mut requests = vec![request(1.0, 1.0, 1000.0), request(1.0, 1.0, 1000.0)];
        policy.arbitrate(80.0, &requests, &mut awards);
        assert_eq!(awards, vec![40.0, 40.0]);

        // An urgency limit-cycle inside the band is flattened out.
        for step in 0..6 {
            requests[step % 2].urgency = 1.05;
            requests[(step + 1) % 2].urgency = 1.0;
            policy.arbitrate(80.0, &requests, &mut awards);
            assert_eq!(awards, vec![40.0, 40.0], "held through wiggle {step}");
        }

        // An app departing invalidates the held vector immediately.
        requests[1].active = false;
        policy.arbitrate(80.0, &requests, &mut awards);
        assert_eq!(awards[1], 0.0);
        assert!(awards[0] > 40.0);

        // A budget step below the held spend also forces re-adoption.
        requests[1].active = true;
        policy.arbitrate(80.0, &requests, &mut awards);
        let before: f64 = total(&awards);
        policy.arbitrate(30.0, &requests, &mut awards);
        assert!(total(&awards) <= 30.0 + 1e-9, "was {before}, now {awards:?}");
    }

    #[test]
    fn slew_limit_damps_a_large_limit_cycle_into_the_band() {
        // A scripted inner policy that swings one app's award by half the
        // budget every quantum — the large-amplitude cycle a dead band
        // alone cannot hold.
        struct Swing(usize);
        impl ArbitrationPolicy for Swing {
            fn name(&self) -> &'static str {
                "swing"
            }
            fn arbitrate(&mut self, budget: f64, _: &[AppRequest], awards: &mut Vec<f64>) {
                let hi = 0.75 * budget;
                let lo = 0.25 * budget;
                awards.clear();
                if self.0.is_multiple_of(2) {
                    awards.extend([hi, lo]);
                } else {
                    awards.extend([lo, hi]);
                }
                self.0 += 1;
            }
        }
        let requests = vec![request(1.0, 1.0, 1000.0), request(1.0, 1.0, 1000.0)];

        // Without the slew limit every swing is adopted whole.
        let mut bare = AwardHysteresis::new(Box::new(Swing(0)), 0.02);
        let mut awards = Vec::new();
        bare.arbitrate(100.0, &requests, &mut awards);
        let first = awards.clone();
        bare.arbitrate(100.0, &requests, &mut awards);
        assert!((awards[0] - first[0]).abs() > 2.0, "swing passes the band");

        // With it, no award ever moves more than the step per quantum and
        // the total stays conserved: the 50 W cycle decays into sub-band
        // dither an oscillation oracle reads as no material move at all.
        let mut damped =
            AwardHysteresis::new(Box::new(Swing(0)), 0.02).with_max_step_fraction(0.02);
        assert_eq!(damped.max_step_fraction(), 0.02);
        let mut previous: Option<Vec<f64>> = None;
        for quantum in 0..50 {
            damped.arbitrate(100.0, &requests, &mut awards);
            assert!(total(&awards) <= 100.0 + 1e-9);
            if let Some(previous) = previous {
                let widest = awards
                    .iter()
                    .zip(&previous)
                    .map(|(&a, &b)| (a - b).abs())
                    .fold(0.0, f64::max);
                assert!(widest <= 2.0 + 1e-9, "quantum {quantum} stepped {widest}");
            }
            previous = Some(awards.clone());
        }

        // A fleet change still releases the vector outright.
        let mut changed = requests.clone();
        changed[1].active = false;
        damped.arbitrate(100.0, &changed, &mut awards);
        assert_eq!(awards.len(), 2);
    }

    #[test]
    fn hysteresis_with_zero_band_is_the_inner_policy() {
        let mut wrapped = AwardHysteresis::new(Box::new(WeightedFair), 0.0);
        let mut bare = WeightedFair;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for urgency in [1.0, 4.0, 0.5, 2.0] {
            let requests = [request(1.0, urgency, 1000.0), request(2.0, 1.0, 50.0)];
            wrapped.arbitrate(90.0, &requests, &mut a);
            bare.arbitrate(90.0, &requests, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn starvation_floor_feeds_the_lightest_app() {
        let requests = [
            request(99.0, 8.0, 1000.0),
            request(1.0, 0.25, 1000.0),
            AppRequest {
                active: false,
                ..request(1.0, 1.0, 1000.0)
            },
        ];
        let mut bare = PerformanceMarket::default();
        let mut awards = Vec::new();
        bare.arbitrate(100.0, &requests, &mut awards);
        let starved = awards[1];

        let mut floored =
            StarvationFloor::new(Box::new(PerformanceMarket::default()), 0.2);
        assert_eq!(floored.name(), "starvation-floor");
        floored.arbitrate(100.0, &requests, &mut awards);
        assert!(awards[1] >= 10.0, "floor seat guaranteed, got {}", awards[1]);
        assert!(awards[1] > starved);
        assert_eq!(awards[2], 0.0, "absent apps get no seat");
        assert!(total(&awards) <= 100.0 + 1e-9);
    }

    #[test]
    fn starvation_floor_returns_unusable_seats_to_the_pool() {
        // App 0 can only absorb 2 W; its 10 W seat is clamped and the
        // freed 8 W stays arbitrable by the inner policy.
        let requests = [request(1.0, 1.0, 2.0), request(1.0, 1.0, 1000.0)];
        let mut policy = StarvationFloor::new(Box::new(WeightedFair), 0.2);
        let mut awards = Vec::new();
        policy.arbitrate(100.0, &requests, &mut awards);
        assert!(awards[0] <= 2.0 + 1e-9, "never above the ceiling: {awards:?}");
        assert!(total(&awards) > 95.0, "freed seat reused: {awards:?}");
        assert!(total(&awards) <= 100.0 + 1e-9);
    }

    #[test]
    fn wrappers_preserve_degenerate_budget_handling() {
        let mut policies: Vec<Box<dyn ArbitrationPolicy>> = vec![
            Box::new(AwardHysteresis::new(Box::new(WeightedFair), 0.05)),
            Box::new(StarvationFloor::new(Box::new(WeightedFair), 0.25)),
        ];
        let requests = [request(1.0, 1.0, f64::INFINITY), request(2.0, 1.0, 40.0)];
        let mut awards = Vec::new();
        for policy in &mut policies {
            policy.arbitrate(f64::INFINITY, &requests, &mut awards);
            assert!(
                awards.iter().all(|a| a.is_finite() && *a >= 0.0),
                "{}: {awards:?}",
                policy.name()
            );
            policy.arbitrate(0.0, &requests, &mut awards);
            assert_eq!(awards, vec![0.0, 0.0], "{}", policy.name());
            policy.arbitrate(f64::NAN, &requests, &mut awards);
            assert_eq!(awards, vec![0.0, 0.0], "{}", policy.name());
        }
    }

    #[test]
    fn everyone_clamped_leaves_budget_unspent() {
        let mut policy = WeightedFair;
        let mut awards = Vec::new();
        policy.arbitrate(100.0, &[request(1.0, 1.0, 10.0), request(5.0, 1.0, 15.0)], &mut awards);
        assert_eq!(awards, vec![10.0, 15.0]);
    }
}
