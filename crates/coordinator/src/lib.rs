//! # Multi-application SEEC coordination
//!
//! The Angstrom platform is built for *many* self-aware applications on one
//! machine (DAC 2012 §2): each application runs its own observe–decide–act
//! loop, and the platform arbitrates the resources they share. Without
//! arbitration, composed adaptive systems over- and under-shoot each other —
//! the uncoordinated-composition pathology of §5.2. This crate supplies the
//! missing platform layer:
//!
//! * [`Coordinator`] — owns N applications (each a heartbeat-instrumented
//!   workload driver plus the [`seec::SeecRuntime`] managing it), steps all
//!   of their decision loops on one shared simulated-time quantum schedule,
//!   and arbitrates a machine-level power budget across them every quantum.
//! * [`ArbitrationPolicy`] — the pluggable budget-splitting strategy:
//!   [`StaticShare`] (equal shares), [`WeightedFair`] (water-filling by
//!   priority weight), and [`PerformanceMarket`] (bidding by
//!   `weight × heartbeat-gap urgency`).
//! * [`RackCoordinator`] / [`DatacenterArbiter`] — the same structure one
//!   level up: racks fold their fleets into aggregate requests
//!   ([`Coordinator::fleet_request`]), the datacenter re-runs an
//!   [`ArbitrationPolicy`] across racks, and budget flows
//!   datacenter → rack → app (the flat coordinator is the 1-rack
//!   degenerate case; see the [`hierarchy`] module docs).
//!
//! Awarded watt envelopes become per-application *powerup caps*
//! (`envelope / estimated nominal watts`), and each runtime decides under
//! its cap ([`seec::SeecRuntime::decide_under_power_cap`]) — the admissible
//! configuration set is clamped to the prefix of the model's power-sorted
//! index, so arbitration costs no allocation and no extra model scans.
//!
//! Fleets are dynamic: applications [`Coordinator::register`] and
//! [`Coordinator::retire`] while the run is in flight, the budget can step
//! mid-run ([`Coordinator::set_budget`]), and the per-application stages of
//! [`Coordinator::step`] shard across worker threads
//! ([`Coordinator::with_workers`]) with output bit-identical to the
//! sequential step at every worker count.
//!
//! ```
//! use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
//! use coordinator::{Coordinator, ManagedApp, PerformanceMarket};
//! use seec::SeecRuntime;
//! use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};
//!
//! let managed = |benchmark, seed: u64, weight| {
//!     let dvfs = ActuatorSpec::builder("dvfs")
//!         .setting(SettingSpec::new("slow").effect(Axis::Performance, 0.5).effect(Axis::Power, 0.4))
//!         .setting(SettingSpec::new("fast"))
//!         .nominal(1)
//!         .build()
//!         .unwrap();
//!     let driver = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
//!     driver.set_heart_rate_goal(20.0);
//!     let runtime = SeecRuntime::builder(driver.monitor())
//!         .actuator(Box::new(TableActuator::new(dvfs)))
//!         .build()
//!         .unwrap();
//!     ManagedApp::new(driver, runtime).with_weight(weight)
//! };
//!
//! // A 50 W machine budget arbitrated by the performance market, with the
//! // per-app stages sharded across two worker threads (bit-identical to
//! // the sequential step — the worker count is purely a performance knob).
//! let mut coordinator =
//!     Coordinator::new(50.0, Box::new(PerformanceMarket::default())).with_workers(2);
//! let resident = coordinator.register(managed(SplashBenchmark::Barnes, 1, 2.0));
//!
//! // Each quantum: the platform runs the apps, reports back, the
//! // coordinator steps.
//! coordinator.advance(resident, 0.0, 1.0, 12.0, 9.5);
//! let summary = coordinator.step(1.0).unwrap();
//! assert_eq!(summary.active_apps, 1);
//! assert!(coordinator.app(resident).awarded_watts() <= 50.0);
//!
//! // The fleet is dynamic: a second app registers mid-run, the operator
//! // halves the budget, and later the newcomer retires again.
//! let visitor = coordinator.register(managed(SplashBenchmark::Volrend, 2, 1.0));
//! coordinator.set_budget(25.0);
//! let summary = coordinator.step(2.0).unwrap();
//! assert_eq!(summary.active_apps, 2);
//! assert!(summary.awarded_watts_total <= 25.0);
//!
//! coordinator.retire(visitor);
//! let summary = coordinator.step(3.0).unwrap();
//! assert_eq!(summary.active_apps, 1);
//! assert_eq!(coordinator.app(visitor).awarded_watts(), 0.0);
//! ```

// `warn` locally so exploratory builds are not blocked mid-edit; CI
// promotes both to errors (`RUSTFLAGS`/`RUSTDOCFLAGS` `-D warnings`), so
// no undocumented public item or broken link can land.
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod coordinator;
pub mod hierarchy;
pub mod incremental;
pub mod invariants;
mod policy;

pub use crate::coordinator::{
    AdmissionError, AppHandle, Coordinator, HealthState, ManagedApp, StepSummary, WatchdogConfig,
};
pub use crate::incremental::{IncrementalArbiter, IncrementalOutcome, WakeConfig};
pub use crate::hierarchy::{
    DatacenterArbiter, DatacenterStepSummary, EnforcementMode, RackCoordinator,
};
pub use crate::policy::{
    AppRequest, ArbitrationPolicy, AwardHysteresis, PerformanceMarket, StarvationFloor,
    StaticShare, WeightedFair,
};
