//! # Multi-application SEEC coordination
//!
//! The Angstrom platform is built for *many* self-aware applications on one
//! machine (DAC 2012 §2): each application runs its own observe–decide–act
//! loop, and the platform arbitrates the resources they share. Without
//! arbitration, composed adaptive systems over- and under-shoot each other —
//! the uncoordinated-composition pathology of §5.2. This crate supplies the
//! missing platform layer:
//!
//! * [`Coordinator`] — owns N applications (each a heartbeat-instrumented
//!   workload driver plus the [`seec::SeecRuntime`] managing it), steps all
//!   of their decision loops on one shared simulated-time quantum schedule,
//!   and arbitrates a machine-level power budget across them every quantum.
//! * [`ArbitrationPolicy`] — the pluggable budget-splitting strategy:
//!   [`StaticShare`] (equal shares), [`WeightedFair`] (water-filling by
//!   priority weight), and [`PerformanceMarket`] (bidding by
//!   `weight × heartbeat-gap urgency`).
//!
//! Awarded watt envelopes become per-application *powerup caps*
//! (`envelope / estimated nominal watts`), and each runtime decides under
//! its cap ([`seec::SeecRuntime::decide_under_power_cap`]) — the admissible
//! configuration set is clamped to the prefix of the model's power-sorted
//! index, so arbitration costs no allocation and no extra model scans.
//!
//! ```
//! use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
//! use coordinator::{Coordinator, ManagedApp, PerformanceMarket};
//! use seec::SeecRuntime;
//! use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};
//!
//! let dvfs = ActuatorSpec::builder("dvfs")
//!     .setting(SettingSpec::new("slow").effect(Axis::Performance, 0.5).effect(Axis::Power, 0.4))
//!     .setting(SettingSpec::new("fast"))
//!     .nominal(1)
//!     .build()
//!     .unwrap();
//!
//! let driver = HeartbeatedWorkload::new(Workload::new(SplashBenchmark::Barnes, 1));
//! driver.set_heart_rate_goal(20.0);
//! let runtime = SeecRuntime::builder(driver.monitor())
//!     .actuator(Box::new(TableActuator::new(dvfs)))
//!     .build()
//!     .unwrap();
//!
//! // A 50 W machine budget arbitrated by the performance market.
//! let mut coordinator = Coordinator::new(50.0, Box::new(PerformanceMarket::default()));
//! let app = coordinator.register(ManagedApp::new(driver, runtime).with_weight(2.0));
//!
//! // Each quantum: platform runs the apps, reports back, coordinator steps.
//! coordinator.advance(app, 0.0, 1.0, 12.0, 9.5);
//! let summary = coordinator.step(1.0).unwrap();
//! assert_eq!(summary.active_apps, 1);
//! assert!(coordinator.app(app).awarded_watts() <= 50.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod coordinator;
mod policy;

pub use crate::coordinator::{AppHandle, Coordinator, ManagedApp, StepSummary};
pub use crate::policy::{
    AppRequest, ArbitrationPolicy, PerformanceMarket, StaticShare, WeightedFair,
};
