//! The multi-application coordinator: N observe–decide–act loops on one
//! shared quantum schedule, arbitrating one machine-level power budget.

use std::sync::Arc;

use heartbeats::{observe_fleet, HeartbeatMonitor, MonitorObservation};
use seec::{CapDecision, SeecError, SeecRuntime};
use workloads::{HeartbeatedWorkload, QuantumDemand};

use crate::policy::{AppRequest, ArbitrationPolicy};

/// Opaque handle to one application registered with a [`Coordinator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppHandle(usize);

impl AppHandle {
    /// The registration index of the application (registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One application under coordination: its heartbeat-instrumented workload
/// (the phase driver), the SEEC runtime that manages it, and its place on
/// the shared schedule.
pub struct ManagedApp {
    name: Arc<str>,
    driver: HeartbeatedWorkload,
    monitor: HeartbeatMonitor,
    runtime: SeecRuntime,
    weight: f64,
    arrival: usize,
    departure: Option<usize>,
    /// Per-quantum demand phases; the app cycles through them while active.
    phases: Vec<QuantumDemand>,
    /// Fallback estimate of the app's nominal-configuration power draw, in
    /// watts, used to convert watt envelopes into powerup caps until the
    /// runtime's own estimator has observed real samples. 0 = unknown.
    nominal_power_hint: f64,
    awarded_watts: f64,
    last_decision: Option<CapDecision>,
}

impl std::fmt::Debug for ManagedApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedApp")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("arrival", &self.arrival)
            .field("departure", &self.departure)
            .field("awarded_watts", &self.awarded_watts)
            .finish_non_exhaustive()
    }
}

impl ManagedApp {
    /// Couples a heartbeat-instrumented workload with the SEEC runtime
    /// managing it. The runtime must have been built over (a monitor of)
    /// the driver's registry, so both observe the same application.
    pub fn new(driver: HeartbeatedWorkload, runtime: SeecRuntime) -> Self {
        let monitor = driver.monitor();
        ManagedApp {
            name: monitor.name(),
            driver,
            monitor,
            runtime,
            weight: 1.0,
            arrival: 0,
            departure: None,
            phases: Vec::new(),
            nominal_power_hint: 0.0,
            awarded_watts: 0.0,
            last_decision: None,
        }
    }

    /// Sets the arbitration weight (priority tier; default 1.0).
    ///
    /// # Panics
    ///
    /// Panics unless the weight is positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "weight must be positive");
        self.weight = weight;
        self
    }

    /// Sets the shared-schedule quantum at which the app arrives (default 0).
    pub fn with_arrival(mut self, quantum: usize) -> Self {
        self.arrival = quantum;
        self
    }

    /// Sets the shared-schedule quantum at which the app departs
    /// (exclusive; default: never).
    pub fn with_departure(mut self, quantum: usize) -> Self {
        self.departure = Some(quantum);
        self
    }

    /// Sets the app's per-quantum demand phases (cycled while active).
    pub fn with_phases(mut self, phases: Vec<QuantumDemand>) -> Self {
        self.phases = phases;
        self
    }

    /// Seeds the watts-per-nominal estimate used before the runtime's own
    /// power estimator has samples (see the field docs).
    pub fn with_nominal_power_hint(mut self, watts: f64) -> Self {
        self.nominal_power_hint = watts.max(0.0);
        self
    }

    /// The application's name (from its heartbeat registry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload phase driver.
    pub fn driver(&self) -> &HeartbeatedWorkload {
        &self.driver
    }

    /// The SEEC runtime managing this app.
    pub fn runtime(&self) -> &SeecRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime (tuning, manual actuation).
    pub fn runtime_mut(&mut self) -> &mut SeecRuntime {
        &mut self.runtime
    }

    /// The arbitration weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether the app is present at shared quantum `quantum`.
    pub fn active_at(&self, quantum: usize) -> bool {
        quantum >= self.arrival && self.departure.is_none_or(|d| quantum < d)
    }

    /// The demand phase the app presents at shared quantum `quantum`
    /// (`None` when absent or without phases). Phases cycle, anchored at
    /// the app's arrival.
    pub fn demand_at(&self, quantum: usize) -> Option<&QuantumDemand> {
        if !self.active_at(quantum) || self.phases.is_empty() {
            return None;
        }
        Some(&self.phases[(quantum - self.arrival) % self.phases.len()])
    }

    /// The watt envelope awarded at the most recent step (0 before the
    /// first step or while absent).
    pub fn awarded_watts(&self) -> f64 {
        self.awarded_watts
    }

    /// The decision taken at the most recent step this app was active.
    pub fn last_decision(&self) -> Option<CapDecision> {
        self.last_decision
    }

    /// Best current estimate of the app's nominal-configuration power, in
    /// watts: the runtime's learned estimate once initialised, the
    /// registration hint before that.
    pub fn nominal_power_watts(&self) -> f64 {
        self.runtime
            .estimated_nominal_power()
            .unwrap_or(self.nominal_power_hint)
    }
}

/// Summary of one coordinator step, as plain `Copy` data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// The shared quantum index this step covered.
    pub quantum: usize,
    /// Applications present this quantum.
    pub active_apps: usize,
    /// Watts handed out across the fleet (≤ budget × headroom).
    pub awarded_watts_total: f64,
}

/// Runs many applications' ODA loops on one shared quantum schedule and
/// arbitrates a machine-level power budget across them.
///
/// Per [`Coordinator::step`]:
///
/// 1. **Observe** — every app's monitor is snapshotted in one pass
///    ([`observe_fleet`]), one lock acquisition per app.
/// 2. **Arbitrate** — the [`ArbitrationPolicy`] splits the budget into
///    per-app watt envelopes from each app's priority weight and
///    heartbeat-gap urgency.
/// 3. **Decide** — each present app's [`SeecRuntime`] decides *under its
///    envelope* ([`SeecRuntime::decide_under_power_cap_with_observation`]):
///    the envelope in watts becomes a powerup cap via the app's
///    nominal-power estimate, clamping the admissible configuration set to
///    the prefix of the model's power-sorted index.
///
/// The platform then runs a quantum in the chosen configurations and feeds
/// completed work and measured power back through
/// [`Coordinator::advance`].
pub struct Coordinator {
    apps: Vec<ManagedApp>,
    /// Parallel monitor list for [`observe_fleet`] (clones of each app's
    /// monitor — `Arc`s, so cheap).
    monitors: Vec<HeartbeatMonitor>,
    policy: Box<dyn ArbitrationPolicy>,
    budget_watts: f64,
    headroom: f64,
    quantum: usize,
    // Reused per-step buffers: the steady-state step allocates nothing.
    observations: Vec<MonitorObservation>,
    requests: Vec<AppRequest>,
    awards: Vec<f64>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("apps", &self.apps.len())
            .field("policy", &self.policy.name())
            .field("budget_watts", &self.budget_watts)
            .field("quantum", &self.quantum)
            .finish_non_exhaustive()
    }
}

impl Coordinator {
    /// A coordinator arbitrating `budget_watts` (machine power above idle)
    /// under `policy`.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite: an
    /// uncapped machine still benefits from the shared schedule).
    pub fn new(budget_watts: f64, policy: Box<dyn ArbitrationPolicy>) -> Self {
        assert!(budget_watts > 0.0, "power budget must be positive");
        Coordinator {
            apps: Vec::new(),
            monitors: Vec::new(),
            policy,
            budget_watts,
            headroom: 0.95,
            quantum: 0,
            observations: Vec::new(),
            requests: Vec::new(),
            awards: Vec::new(),
        }
    }

    /// Sets the fraction of the budget actually handed out (default 0.95).
    /// The margin absorbs model error: envelopes are enforced against each
    /// app's *believed* power multipliers, which learning keeps close to —
    /// but never exactly at — the platform's true draws.
    ///
    /// # Panics
    ///
    /// Panics unless `headroom` is in `(0, 1]`.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1], got {headroom}"
        );
        self.headroom = headroom;
        self
    }

    /// Registers an application; returns its handle.
    pub fn register(&mut self, app: ManagedApp) -> AppHandle {
        self.monitors.push(app.monitor.clone());
        self.apps.push(app);
        AppHandle(self.apps.len() - 1)
    }

    /// Number of registered applications (present or not).
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The next shared quantum index [`Self::step`] will run.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// The machine power budget being arbitrated, in watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// The active arbitration policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Replaces the arbitration policy (takes effect next step).
    pub fn set_policy(&mut self, policy: Box<dyn ArbitrationPolicy>) {
        self.policy = policy;
    }

    /// The application behind `handle`.
    pub fn app(&self, handle: AppHandle) -> &ManagedApp {
        &self.apps[handle.0]
    }

    /// Mutable access to the application behind `handle`.
    pub fn app_mut(&mut self, handle: AppHandle) -> &mut ManagedApp {
        &mut self.apps[handle.0]
    }

    /// Every registered application, in registration order.
    pub fn apps(&self) -> &[ManagedApp] {
        &self.apps
    }

    /// The watt envelopes of the most recent step, in registration order.
    pub fn awards(&self) -> &[f64] {
        &self.awards
    }

    /// Runs one coordinated quantum at simulation time `now`:
    /// observe the fleet, arbitrate the budget, and let every present app
    /// decide under its envelope. Advances the shared quantum counter.
    ///
    /// # Errors
    ///
    /// Propagates the first decision error (e.g. [`SeecError::NoGoal`] for
    /// an app without a performance goal); earlier apps keep the decisions
    /// already applied.
    pub fn step(&mut self, now: f64) -> Result<StepSummary, SeecError> {
        let quantum = self.quantum;
        observe_fleet(&self.monitors, &mut self.observations);

        // ---- Arbitrate ----------------------------------------------
        self.requests.clear();
        for (app, observation) in self.apps.iter().zip(&self.observations) {
            let active = app.active_at(quantum);
            // The observation already carries the registry's target; only
            // the runtime's local override is consulted on top, so the
            // fleet snapshot stays the step's single lock per app.
            let target = app
                .runtime
                .target_override()
                .or(observation.target_heart_rate);
            let observed = observation.stats.window;
            let urgency = match target {
                Some(target) if observed > 0.0 && observation.stats.beats_in_window >= 2 => {
                    target / observed
                }
                _ => 1.0,
            };
            let nominal_power = app.nominal_power_watts();
            let max_power_watts = if nominal_power > 0.0 {
                nominal_power * app.runtime.model().table().max_declared_power()
            } else {
                // Power draw unknown yet: let the app absorb anything; its
                // envelope will bind as soon as samples arrive.
                self.budget_watts
            };
            self.requests.push(AppRequest {
                active,
                weight: app.weight,
                urgency,
                max_power_watts,
            });
        }
        self.policy.arbitrate(
            self.budget_watts * self.headroom,
            &self.requests,
            &mut self.awards,
        );

        // ---- Decide under the envelopes -----------------------------
        let mut active_apps = 0;
        let mut awarded_total = 0.0;
        for ((app, observation), &award) in self
            .apps
            .iter_mut()
            .zip(&self.observations)
            .zip(&self.awards)
        {
            app.awarded_watts = award;
            if !app.active_at(quantum) {
                continue;
            }
            active_apps += 1;
            awarded_total += award;
            let nominal_power = app.nominal_power_watts();
            let max_powerup = if nominal_power > 0.0 && award.is_finite() {
                award / nominal_power
            } else {
                f64::INFINITY
            };
            let decision =
                app.runtime
                    .decide_under_power_cap_with_observation(now, observation, max_powerup)?;
            app.last_decision = Some(decision);
        }

        self.quantum += 1;
        Ok(StepSummary {
            quantum,
            active_apps,
            awarded_watts_total: awarded_total,
        })
    }

    /// Feeds one quantum's outcome back to an application: the platform
    /// completed `work_units` of its work over `[start, end]` while the app
    /// drew `power_above_idle_watts`. Beats are stamped at interpolated
    /// times with one power sample each
    /// ([`HeartbeatedWorkload::advance_metered`]), so the runtime's window
    /// rates are unbiased and its power horizon matches the beat window.
    pub fn advance(
        &mut self,
        handle: AppHandle,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) {
        self.apps[handle.0]
            .driver
            .advance_metered(start, end, work_units, power_above_idle_watts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PerformanceMarket, StaticShare, WeightedFair};
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    use seec::ExplorationPolicy;
    use workloads::{SplashBenchmark, Workload};

    /// A small action space whose declared effects the synthetic platform
    /// mirrors exactly: DVFS x cores, speedups 0.5..6x, powers 0.4..5.2x.
    fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 2.0)
                    .effect(Axis::Power, 2.6),
            )
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.9)
                    .effect(Axis::Power, 2.0),
            )
            .build()
            .unwrap();
        vec![
            Box::new(TableActuator::new(dvfs)),
            Box::new(TableActuator::new(cores)),
        ]
    }

    fn managed_app(benchmark: SplashBenchmark, seed: u64, target: f64) -> ManagedApp {
        let driver = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
        driver.set_heart_rate_goal(target);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .exploration(ExplorationPolicy {
                epsilon: 0.0,
                ..ExplorationPolicy::default()
            })
            .seed(seed)
            .build()
            .unwrap();
        ManagedApp::new(driver, runtime).with_nominal_power_hint(10.0)
    }

    /// Drives `coordinator` for `ticks` quanta against a platform whose
    /// true behaviour mirrors each app's declared effects exactly (nominal
    /// rate 10 beats/s, nominal power 10 W), returning the machine power of
    /// the final tick.
    fn drive(coordinator: &mut Coordinator, handles: &[AppHandle], ticks: usize) -> Vec<f64> {
        let mut now = 0.0;
        let mut final_powers = Vec::new();
        for _ in 0..ticks {
            now += 1.0;
            final_powers.clear();
            for &handle in handles {
                if !coordinator.app(handle).active_at(coordinator.quantum()) {
                    final_powers.push(0.0);
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                let rate = 10.0 * effect.performance;
                let power = 10.0 * effect.power;
                coordinator.advance(handle, now - 1.0, now, rate, power);
                final_powers.push(power);
            }
            coordinator.step(now).unwrap();
        }
        final_powers
    }

    #[test]
    fn registration_and_accessors() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        assert!(coordinator.is_empty());
        let handle = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0));
        assert_eq!(coordinator.len(), 1);
        assert_eq!(handle.index(), 0);
        assert_eq!(coordinator.app(handle).name(), "barnes");
        assert_eq!(coordinator.app(handle).weight(), 1.0);
        assert_eq!(coordinator.policy_name(), "static-share");
        coordinator.set_policy(Box::new(WeightedFair));
        assert_eq!(coordinator.policy_name(), "weighted-fair");
        assert!(format!("{coordinator:?}").contains("Coordinator"));
        assert!(format!("{:?}", coordinator.app(handle)).contains("barnes"));
    }

    #[test]
    fn step_keeps_believed_power_inside_the_budget() {
        // Three greedy apps (targets far beyond reach) on a 30 W budget:
        // flat out they would draw 3 x 52 W. After warm-up, the believed
        // power of every applied configuration must fit the awards, which
        // conserve the (headroomed) budget.
        let mut coordinator = Coordinator::new(30.0, Box::new(WeightedFair));
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator
                    .register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0))
            })
            .collect();
        drive(&mut coordinator, &handles, 30);
        let awards_total: f64 = coordinator.awards().iter().sum();
        assert!(
            awards_total <= 30.0 * 0.95 + 1e-9,
            "awards {awards_total} must conserve the headroomed budget"
        );
        for &handle in &handles {
            let app = coordinator.app(handle);
            let decision = app.last_decision().unwrap();
            let believed_watts = decision.believed_powerup * app.nominal_power_watts();
            assert!(
                believed_watts <= app.awarded_watts() * 1.05 + 1e-9,
                "app {} believed draw {believed_watts} vs award {}",
                app.name(),
                app.awarded_watts()
            );
        }
    }

    #[test]
    fn arrivals_and_departures_follow_the_shared_schedule() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        let resident = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 15.0));
        let visitor = coordinator.register(
            managed_app(SplashBenchmark::Volrend, 2, 15.0)
                .with_arrival(5)
                .with_departure(10),
        );
        let mut now = 0.0;
        for tick in 0..15 {
            now += 1.0;
            let summary = coordinator.step(now).unwrap();
            assert_eq!(summary.quantum, tick);
            let expected = if (5..10).contains(&tick) { 2 } else { 1 };
            assert_eq!(summary.active_apps, expected, "tick {tick}");
            if !(5..10).contains(&tick) {
                assert_eq!(coordinator.app(visitor).awarded_watts(), 0.0);
            }
        }
        assert!(coordinator.app(resident).active_at(14));
        assert_eq!(coordinator.quantum(), 15);
    }

    #[test]
    fn higher_priority_gets_the_bigger_envelope() {
        let mut coordinator = Coordinator::new(40.0, Box::new(PerformanceMarket::default()));
        let light = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let heavy = coordinator.register(
            managed_app(SplashBenchmark::Raytrace, 2, 1000.0).with_weight(4.0),
        );
        let handles = [light, heavy];
        drive(&mut coordinator, &handles, 20);
        assert!(
            coordinator.app(heavy).awarded_watts() > coordinator.app(light).awarded_watts(),
            "heavy {} vs light {}",
            coordinator.app(heavy).awarded_watts(),
            coordinator.app(light).awarded_watts()
        );
    }

    #[test]
    fn demand_phases_cycle_from_arrival() {
        let workload = Workload::new(SplashBenchmark::Barnes, 3);
        let phases = workload.quanta(4);
        let app = managed_app(SplashBenchmark::Barnes, 3, 10.0)
            .with_phases(phases.clone())
            .with_arrival(2);
        assert!(app.demand_at(1).is_none());
        assert_eq!(app.demand_at(2).unwrap(), &phases[0]);
        assert_eq!(app.demand_at(5).unwrap(), &phases[3]);
        assert_eq!(app.demand_at(6).unwrap(), &phases[0]);
        let phaseless = managed_app(SplashBenchmark::Barnes, 3, 10.0);
        assert!(phaseless.demand_at(0).is_none());
    }

    #[test]
    fn app_without_goal_propagates_the_error() {
        let driver = HeartbeatedWorkload::new(Workload::new(SplashBenchmark::Barnes, 1));
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .build()
            .unwrap();
        let mut coordinator = Coordinator::new(50.0, Box::new(StaticShare));
        coordinator.register(ManagedApp::new(driver, runtime));
        assert!(matches!(coordinator.step(1.0), Err(SeecError::NoGoal)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_panics() {
        let _ = Coordinator::new(0.0, Box::new(StaticShare));
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn out_of_range_headroom_panics() {
        let _ = Coordinator::new(10.0, Box::new(StaticShare)).with_headroom(1.5);
    }
}
