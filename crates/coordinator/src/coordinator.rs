//! The multi-application coordinator: N observe–decide–act loops on one
//! shared quantum schedule, arbitrating one machine-level power budget.

use std::sync::Arc;

use exec::ExecPool;
use heartbeats::{observe_fleet, HeartbeatMonitor, MonitorObservation};
use seec::{CapDecision, SeecError, SeecRuntime};
use workloads::{HeartbeatedWorkload, QuantumDemand};

use crate::policy::{AppRequest, ArbitrationPolicy};

/// Opaque handle to one application registered with a [`Coordinator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppHandle(usize);

impl AppHandle {
    /// The registration index of the application (registration order).
    pub fn index(self) -> usize {
        self.0
    }

    /// The handle for registration index `index` — the inverse of
    /// [`Self::index`], for drivers that iterate a fleet by position
    /// (handles are issued densely, in registration order, by
    /// [`Coordinator::register`]). Indexes past the fleet size panic when
    /// used, exactly like a slice index.
    pub fn from_index(index: usize) -> Self {
        AppHandle(index)
    }
}

/// One application under coordination: its heartbeat-instrumented workload
/// (the phase driver), the SEEC runtime that manages it, and its place on
/// the shared schedule.
pub struct ManagedApp {
    name: Arc<str>,
    driver: HeartbeatedWorkload,
    monitor: HeartbeatMonitor,
    runtime: SeecRuntime,
    weight: f64,
    arrival: usize,
    departure: Option<usize>,
    /// Per-quantum demand phases; the app cycles through them while active.
    phases: Vec<QuantumDemand>,
    /// Fallback estimate of the app's nominal-configuration power draw, in
    /// watts, used to convert watt envelopes into powerup caps until the
    /// runtime's own estimator has observed real samples. 0 = unknown.
    nominal_power_hint: f64,
    awarded_watts: f64,
    last_decision: Option<CapDecision>,
}

impl std::fmt::Debug for ManagedApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedApp")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("arrival", &self.arrival)
            .field("departure", &self.departure)
            .field("awarded_watts", &self.awarded_watts)
            .finish_non_exhaustive()
    }
}

impl ManagedApp {
    /// Couples a heartbeat-instrumented workload with the SEEC runtime
    /// managing it. The runtime must have been built over (a monitor of)
    /// the driver's registry, so both observe the same application.
    pub fn new(driver: HeartbeatedWorkload, runtime: SeecRuntime) -> Self {
        let monitor = driver.monitor();
        ManagedApp {
            name: monitor.name(),
            driver,
            monitor,
            runtime,
            weight: 1.0,
            arrival: 0,
            departure: None,
            phases: Vec::new(),
            nominal_power_hint: 0.0,
            awarded_watts: 0.0,
            last_decision: None,
        }
    }

    /// Sets the arbitration weight (priority tier; default 1.0).
    ///
    /// # Panics
    ///
    /// Panics unless the weight is positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "weight must be positive");
        self.weight = weight;
        self
    }

    /// Sets the shared-schedule quantum at which the app arrives (default 0).
    pub fn with_arrival(mut self, quantum: usize) -> Self {
        self.arrival = quantum;
        self
    }

    /// Sets the shared-schedule quantum at which the app departs
    /// (exclusive; default: never).
    pub fn with_departure(mut self, quantum: usize) -> Self {
        self.departure = Some(quantum);
        self
    }

    /// Sets the app's per-quantum demand phases (cycled while active).
    pub fn with_phases(mut self, phases: Vec<QuantumDemand>) -> Self {
        self.phases = phases;
        self
    }

    /// Seeds the watts-per-nominal estimate used before the runtime's own
    /// power estimator has samples (see the field docs).
    pub fn with_nominal_power_hint(mut self, watts: f64) -> Self {
        self.nominal_power_hint = watts.max(0.0);
        self
    }

    /// The application's name (from its heartbeat registry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload phase driver.
    pub fn driver(&self) -> &HeartbeatedWorkload {
        &self.driver
    }

    /// The SEEC runtime managing this app.
    pub fn runtime(&self) -> &SeecRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime (tuning, manual actuation).
    pub fn runtime_mut(&mut self) -> &mut SeecRuntime {
        &mut self.runtime
    }

    /// The arbitration weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether the app is present at shared quantum `quantum`.
    pub fn active_at(&self, quantum: usize) -> bool {
        quantum >= self.arrival && self.departure.is_none_or(|d| quantum < d)
    }

    /// The demand phase the app presents at shared quantum `quantum`
    /// (`None` when absent or without phases). Phases cycle, anchored at
    /// the app's arrival.
    pub fn demand_at(&self, quantum: usize) -> Option<&QuantumDemand> {
        if !self.active_at(quantum) || self.phases.is_empty() {
            return None;
        }
        Some(&self.phases[(quantum - self.arrival) % self.phases.len()])
    }

    /// The watt envelope awarded at the most recent step (0 before the
    /// first step or while absent).
    pub fn awarded_watts(&self) -> f64 {
        self.awarded_watts
    }

    /// The decision taken at the most recent step this app was active.
    pub fn last_decision(&self) -> Option<CapDecision> {
        self.last_decision
    }

    /// Best current estimate of the app's nominal-configuration power, in
    /// watts: the runtime's learned estimate once initialised, the
    /// registration hint before that.
    pub fn nominal_power_watts(&self) -> f64 {
        self.runtime
            .estimated_nominal_power()
            .unwrap_or(self.nominal_power_hint)
    }
}

/// Summary of one coordinator step, as plain `Copy` data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// The shared quantum index this step covered.
    pub quantum: usize,
    /// Applications present this quantum.
    pub active_apps: usize,
    /// Watts handed out across the fleet (≤ budget × headroom).
    pub awarded_watts_total: f64,
}

/// Builds one application's [`AppRequest`] for this quantum from an
/// already-taken monitor snapshot. Free function (no `&self`) so the
/// sharded step can run it on worker threads over disjoint fleet chunks.
fn request_for(
    app: &ManagedApp,
    observation: &MonitorObservation,
    quantum: usize,
    budget_watts: f64,
) -> AppRequest {
    let active = app.active_at(quantum);
    // The observation already carries the registry's target; only the
    // runtime's local override is consulted on top, so the fleet snapshot
    // stays the step's single lock per app.
    let target = app
        .runtime
        .target_override()
        .or(observation.target_heart_rate);
    let observed = observation.stats.window;
    let urgency = match target {
        Some(target) if observed > 0.0 && observation.stats.beats_in_window >= 2 => {
            target / observed
        }
        _ => 1.0,
    };
    let nominal_power = app.nominal_power_watts();
    let max_power_watts = if nominal_power > 0.0 {
        nominal_power * app.runtime.model().table().max_declared_power()
    } else {
        // Power draw unknown yet: let the app absorb anything; its
        // envelope will bind as soon as samples arrive.
        budget_watts
    };
    AppRequest {
        active,
        weight: app.weight,
        urgency,
        max_power_watts,
    }
}

/// Folds per-app requests into one fleet-level aggregate (see
/// [`Coordinator::fleet_request`] for the field semantics). Registration
/// order, so every floating-point sum is deterministic.
fn aggregate_requests(requests: &[AppRequest]) -> AppRequest {
    let mut active = false;
    let mut weight = 0.0;
    let mut weighted_urgency = 0.0;
    let mut max_power_watts = 0.0;
    for request in requests.iter().filter(|request| request.active) {
        active = true;
        weight += request.weight;
        weighted_urgency += request.weight * request.urgency;
        max_power_watts += request.max_power_watts;
    }
    AppRequest {
        active,
        weight: if weight > 0.0 { weight } else { 1.0 },
        urgency: if weight > 0.0 { weighted_urgency / weight } else { 1.0 },
        max_power_watts,
    }
}

/// Runs the decide stage over one contiguous fleet chunk: records the award
/// on every app and lets each *present* app decide under its envelope.
/// Returns the chunk-local index and error of the first failing decision;
/// earlier apps in the chunk keep the decisions already applied.
fn decide_chunk(
    apps: &mut [ManagedApp],
    observations: &[MonitorObservation],
    awards: &[f64],
    now: f64,
    quantum: usize,
) -> Result<(), (usize, SeecError)> {
    for (offset, ((app, observation), &award)) in
        apps.iter_mut().zip(observations).zip(awards).enumerate()
    {
        app.awarded_watts = award;
        if !app.active_at(quantum) {
            continue;
        }
        let nominal_power = app.nominal_power_watts();
        let max_powerup = if nominal_power > 0.0 && award.is_finite() {
            award / nominal_power
        } else {
            f64::INFINITY
        };
        match app
            .runtime
            .decide_under_power_cap_with_observation(now, observation, max_powerup)
        {
            Ok(decision) => app.last_decision = Some(decision),
            Err(err) => return Err((offset, err)),
        }
    }
    Ok(())
}

/// Runs many applications' ODA loops on one shared quantum schedule and
/// arbitrates a machine-level power budget across them.
///
/// Per [`Coordinator::step`]:
///
/// 1. **Observe** — every app's monitor is snapshotted in one pass
///    ([`observe_fleet`]), one lock acquisition per app.
/// 2. **Arbitrate** — the [`ArbitrationPolicy`] splits the budget into
///    per-app watt envelopes from each app's priority weight and
///    heartbeat-gap urgency.
/// 3. **Decide** — each present app's [`SeecRuntime`] decides *under its
///    envelope* ([`SeecRuntime::decide_under_power_cap_with_observation`]):
///    the envelope in watts becomes a powerup cap via the app's
///    nominal-power estimate, clamping the admissible configuration set to
///    the prefix of the model's power-sorted index.
///
/// The platform then runs a quantum in the chosen configurations and feeds
/// completed work and measured power back through
/// [`Coordinator::advance`].
///
/// # Sharding
///
/// With [`Coordinator::with_workers`] above 1, the per-application stages —
/// observe/request (1–2) and decide (3) — run on a **persistent**
/// [`exec::ExecPool`] over contiguous fleet shards, while arbitration (the
/// only stage that couples applications) stays a sequential fold over the
/// full request list. The pool is created once (when the worker count is
/// set) and reused across every quantum, so the steady-state step pays a
/// wake-up instead of the per-step `std::thread::scope` spawn it replaced.
/// Because each application's observation, request, and decision are
/// functions of *its own* state plus the arbitration output, and the
/// arbitration input/output are identical regardless of how the fleet was
/// partitioned, the sharded step is **bit-identical** to the sequential one
/// at every worker count (pinned by the property suite,
/// `tests/lifecycle_props.rs`).
///
/// Sharding only engages once the registered fleet reaches
/// [`Coordinator::shard_threshold`] applications (default
/// [`Coordinator::DEFAULT_SHARD_THRESHOLD`]); below it, the fan-out
/// hand-off costs more than the per-app work it spreads out, so the step
/// runs inline. The threshold is purely a performance knob — output is
/// bit-identical on either side of it.
///
/// # Application lifecycle
///
/// Applications [`register`](Coordinator::register) and
/// [`retire`](Coordinator::retire) at any point of the run — the fleet is
/// not fixed at construction. A registered app is *present* while
/// `arrival ≤ quantum < departure` ([`ManagedApp::active_at`]); absent apps
/// are observed but awarded exactly 0 W and never decide. The budget itself
/// can step mid-run via [`Coordinator::set_budget`].
pub struct Coordinator {
    apps: Vec<ManagedApp>,
    /// Parallel monitor list for [`observe_fleet`] (clones of each app's
    /// monitor — `Arc`s, so cheap).
    monitors: Vec<HeartbeatMonitor>,
    policy: Box<dyn ArbitrationPolicy>,
    budget_watts: f64,
    headroom: f64,
    quantum: usize,
    /// Persistent worker pool the per-app stages shard across (`None` =
    /// everything inline). Sized once by [`Self::set_workers`] (or shared
    /// via [`Self::with_pool`]) and reused across every quantum.
    pool: Option<Arc<ExecPool>>,
    /// Fleet size from which the per-app stages use the pool.
    shard_threshold: usize,
    // Reused per-step buffers: the steady-state sequential step allocates
    // nothing (the pooled step allocates one small per-shard Vec).
    observations: Vec<MonitorObservation>,
    requests: Vec<AppRequest>,
    awards: Vec<f64>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("apps", &self.apps.len())
            .field("policy", &self.policy.name())
            .field("budget_watts", &self.budget_watts)
            .field("quantum", &self.quantum)
            .finish_non_exhaustive()
    }
}

impl Coordinator {
    /// A coordinator arbitrating `budget_watts` (machine power above idle)
    /// under `policy`.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite: an
    /// uncapped machine still benefits from the shared schedule).
    pub fn new(budget_watts: f64, policy: Box<dyn ArbitrationPolicy>) -> Self {
        assert!(budget_watts > 0.0, "power budget must be positive");
        Coordinator {
            apps: Vec::new(),
            monitors: Vec::new(),
            policy,
            budget_watts,
            headroom: 0.95,
            quantum: 0,
            pool: None,
            shard_threshold: Self::DEFAULT_SHARD_THRESHOLD,
            observations: Vec::new(),
            requests: Vec::new(),
            awards: Vec::new(),
        }
    }

    /// Default [`Self::shard_threshold`]: fleets below 64 apps step inline
    /// even when a pool is attached, because at the fleet sizes tracked in
    /// `BENCH_fig5.json` the fan-out hand-off outgrows the per-app decide
    /// work it spreads out.
    pub const DEFAULT_SHARD_THRESHOLD: usize = 64;

    /// Sets how many worker threads the per-application stages of
    /// [`Self::step`] shard across (default 1 = everything inline on the
    /// caller's thread). Counts above 1 create a persistent
    /// [`exec::ExecPool`], sized once and reused across every quantum;
    /// counts above the fleet size simply leave workers idle. Sharded
    /// output is bit-identical to sequential output at every worker count —
    /// see the type-level sharding notes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Changes the worker-thread count mid-run (see [`Self::with_workers`]).
    /// Replaces the pool only when the count actually changes.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers == self.workers() {
            return;
        }
        self.pool = (workers > 1).then(|| Arc::new(ExecPool::new(workers)));
    }

    /// Shards the per-application stages across an existing pool instead of
    /// creating a private one — the natural wiring when many coordinators
    /// (e.g. the racks of a [`crate::DatacenterArbiter`]) share one host.
    pub fn with_pool(mut self, pool: Arc<ExecPool>) -> Self {
        self.pool = (pool.threads() > 1).then_some(pool);
        self
    }

    /// Sets the fleet size from which the per-application stages use the
    /// worker pool (default [`Self::DEFAULT_SHARD_THRESHOLD`]; 0 = always).
    /// Purely a performance knob: output is bit-identical on either side.
    pub fn with_shard_threshold(mut self, threshold: usize) -> Self {
        self.set_shard_threshold(threshold);
        self
    }

    /// Changes the sharding threshold mid-run (see
    /// [`Self::with_shard_threshold`]).
    pub fn set_shard_threshold(&mut self, threshold: usize) {
        self.shard_threshold = threshold;
    }

    /// Fleet size from which the per-application stages use the pool.
    pub fn shard_threshold(&self) -> usize {
        self.shard_threshold
    }

    /// A sensible worker count for sharding on the current host: the
    /// available parallelism, capped at 8 (past that, per-step fan-out
    /// hand-off outgrows what extra shards buy at the fleet sizes tracked
    /// in BENCH_fig5.json). 1 on single-core hosts — i.e. the sequential
    /// step. The shared default keeps the experiment harness and the
    /// benchmark measuring the same configuration.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(8)
    }

    /// Worker threads the per-application stages shard across (the attached
    /// pool's thread count; 1 when everything runs inline).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, |pool| pool.threads())
    }

    /// Sets the fraction of the budget actually handed out (default 0.95).
    /// The margin absorbs model error: envelopes are enforced against each
    /// app's *believed* power multipliers, which learning keeps close to —
    /// but never exactly at — the platform's true draws.
    ///
    /// # Panics
    ///
    /// Panics unless `headroom` is in `(0, 1]`.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1], got {headroom}"
        );
        self.headroom = headroom;
        self
    }

    /// Registers an application; returns its handle. May be called at any
    /// point of the run: a mid-run registration takes part in arbitration
    /// from the next [`Self::step`] onward (its default arrival of 0 makes
    /// it present immediately; use [`ManagedApp::with_arrival`] to schedule
    /// it later on the shared quantum schedule).
    pub fn register(&mut self, app: ManagedApp) -> AppHandle {
        self.monitors.push(app.monitor.clone());
        self.apps.push(app);
        AppHandle(self.apps.len() - 1)
    }

    /// Retires an application at the current quantum: it is absent from the
    /// next [`Self::step`] onward (awarded exactly 0 W, never decides), but
    /// stays registered, so its handle, accessors, and final state remain
    /// valid. Idempotent; an earlier scheduled departure is kept if it has
    /// already passed.
    pub fn retire(&mut self, handle: AppHandle) {
        let quantum = self.quantum;
        let app = &mut self.apps[handle.0];
        app.departure = Some(app.departure.map_or(quantum, |d| d.min(quantum)));
    }

    /// Replaces the machine power budget (takes effect next step) — the
    /// mid-run "budget step" of operator- or rack-level power management.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite, as in
    /// [`Self::new`]).
    pub fn set_budget(&mut self, budget_watts: f64) {
        assert!(budget_watts > 0.0, "power budget must be positive");
        self.budget_watts = budget_watts;
    }

    /// Number of registered applications (present or not).
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The next shared quantum index [`Self::step`] will run.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// The machine power budget being arbitrated, in watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// The active arbitration policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Replaces the arbitration policy (takes effect next step).
    pub fn set_policy(&mut self, policy: Box<dyn ArbitrationPolicy>) {
        self.policy = policy;
    }

    /// The application behind `handle`.
    pub fn app(&self, handle: AppHandle) -> &ManagedApp {
        &self.apps[handle.0]
    }

    /// Mutable access to the application behind `handle`.
    pub fn app_mut(&mut self, handle: AppHandle) -> &mut ManagedApp {
        &mut self.apps[handle.0]
    }

    /// Every registered application, in registration order.
    pub fn apps(&self) -> &[ManagedApp] {
        &self.apps
    }

    /// The watt envelopes of the most recent step, in registration order.
    pub fn awards(&self) -> &[f64] {
        &self.awards
    }

    /// Folds the whole fleet's state into one machine-level [`AppRequest`]
    /// for the quantum [`Self::step`] will run next — what a
    /// [`crate::DatacenterArbiter`] arbitrates *between* coordinators, so
    /// budget can flow datacenter → rack → app through the same
    /// [`ArbitrationPolicy`] trait at both levels:
    ///
    /// * `active` — whether any application is present this quantum;
    /// * `weight` — the sum of present applications' weights (a rack full
    ///   of high-priority apps outweighs one full of batch jobs);
    /// * `urgency` — the weight-weighted mean of present applications'
    ///   heartbeat-gap urgencies;
    /// * `max_power_watts` — the sum of present applications' absorption
    ///   ceilings (water-filling at the datacenter level then returns a
    ///   rack's surplus to racks that can still use it).
    ///
    /// Observes the fleet (one lock per app, same snapshot `step` would
    /// take; the warmed buffers are reused by the following `step`, whose
    /// own observation of an unchanged fleet yields identical values).
    /// Deterministic: the folds run in registration order.
    pub fn fleet_request(&mut self) -> AppRequest {
        let quantum = self.quantum;
        let budget = self.budget_watts;
        observe_fleet(&self.monitors, &mut self.observations);
        self.requests.clear();
        self.requests.extend(
            self.apps
                .iter()
                .zip(&self.observations)
                .map(|(app, observation)| request_for(app, observation, quantum, budget)),
        );
        aggregate_requests(&self.requests)
    }

    /// Runs one coordinated quantum at simulation time `now`:
    /// observe the fleet, arbitrate the budget, and let every present app
    /// decide under its envelope. Advances the shared quantum counter.
    ///
    /// The per-application stages shard across the persistent worker pool
    /// ([`Self::workers`] threads, once the fleet reaches
    /// [`Self::shard_threshold`]); the output is bit-identical at every
    /// worker count (see the type-level sharding notes).
    ///
    /// # Errors
    ///
    /// Propagates the decision error of the lowest-indexed failing app
    /// (e.g. [`SeecError::NoGoal`] for an app without a performance goal).
    /// Apps whose decisions had already been applied when the error
    /// surfaced keep them — with more than one worker that may include
    /// apps at higher indices than the failing one.
    pub fn step(&mut self, now: f64) -> Result<StepSummary, SeecError> {
        let quantum = self.quantum;
        let pool = self
            .pool
            .as_ref()
            .filter(|_| self.apps.len() >= self.shard_threshold)
            .cloned();
        let shard = match &pool {
            Some(pool) => Self::shard_size(self.apps.len(), pool.threads()),
            None => self.apps.len().max(1),
        };

        // ---- Observe + build requests (per-app, sharded) ------------
        let budget = self.budget_watts;
        if shard >= self.apps.len() || self.observations.len() != self.apps.len() {
            // Sequential (single shard), or the buffers are cold because the
            // fleet changed since the last step: refill them in one pass.
            observe_fleet(&self.monitors, &mut self.observations);
            self.requests.clear();
            self.requests.extend(
                self.apps
                    .iter()
                    .zip(&self.observations)
                    .map(|(app, observation)| request_for(app, observation, quantum, budget)),
            );
        } else {
            // Warm buffers: overwrite them in place, one shard per pool
            // task. Shards are handed out as `&mut` chunks even though this
            // stage only reads the apps: exclusive chunks need
            // `ManagedApp: Send` rather than `Sync`, which boxed actuators
            // do not promise.
            struct ObserveShard<'a> {
                apps: &'a mut [ManagedApp],
                observations: &'a mut [MonitorObservation],
                requests: &'a mut [AppRequest],
            }
            let pool = pool.as_ref().expect("a shard smaller than the fleet implies a pool");
            let mut shards: Vec<ObserveShard> = self
                .apps
                .chunks_mut(shard)
                .zip(self.observations.chunks_mut(shard))
                .zip(self.requests.chunks_mut(shard))
                .map(|((apps, observations), requests)| ObserveShard {
                    apps,
                    observations,
                    requests,
                })
                .collect();
            pool.for_each_mut(&mut shards, |_, task| {
                for ((app, observation), request) in task
                    .apps
                    .iter()
                    .zip(task.observations.iter_mut())
                    .zip(task.requests.iter_mut())
                {
                    *observation = app.monitor.observation();
                    *request = request_for(app, observation, quantum, budget);
                }
            });
        }

        // ---- Arbitrate (sequential deterministic fold) --------------
        self.policy.arbitrate(
            self.budget_watts * self.headroom,
            &self.requests,
            &mut self.awards,
        );

        // ---- Decide under the envelopes (per-app, sharded) ----------
        if shard >= self.apps.len() {
            if let Err((_, err)) = decide_chunk(
                &mut self.apps,
                &self.observations,
                &self.awards,
                now,
                quantum,
            ) {
                return Err(err);
            }
        } else {
            struct DecideShard<'a> {
                apps: &'a mut [ManagedApp],
                observations: &'a [MonitorObservation],
                awards: &'a [f64],
                failure: Option<(usize, SeecError)>,
            }
            let pool = pool.as_ref().expect("a shard smaller than the fleet implies a pool");
            let mut shards: Vec<DecideShard> = self
                .apps
                .chunks_mut(shard)
                .zip(self.observations.chunks(shard))
                .zip(self.awards.chunks(shard))
                .map(|((apps, observations), awards)| DecideShard {
                    apps,
                    observations,
                    awards,
                    failure: None,
                })
                .collect();
            pool.for_each_mut(&mut shards, |index, task| {
                task.failure =
                    decide_chunk(task.apps, task.observations, task.awards, now, quantum)
                        .err()
                        .map(|(offset, err)| (index * shard + offset, err));
            });
            // Report the lowest-indexed failure, matching the sequential
            // path's choice when several apps would have failed.
            if let Some((_, err)) = shards
                .into_iter()
                .filter_map(|task| task.failure)
                .min_by_key(|(index, _)| *index)
            {
                return Err(err);
            }
        }

        // ---- Summarise (sequential, fixed order) --------------------
        // The awarded-watts total is folded in registration order whatever
        // the worker count, so the summary is part of the bit-identity
        // guarantee rather than an exception to it.
        let mut active_apps = 0;
        let mut awarded_total = 0.0;
        for (app, &award) in self.apps.iter().zip(&self.awards) {
            if app.active_at(quantum) {
                active_apps += 1;
                awarded_total += award;
            }
        }

        self.quantum += 1;
        Ok(StepSummary {
            quantum,
            active_apps,
            awarded_watts_total: awarded_total,
        })
    }

    /// Advances the shared quantum counter without deciding — used by the
    /// datacenter arbiter to keep a rack whose step failed in lockstep
    /// with the racks that succeeded (the failing rack simply takes no new
    /// decisions for that quantum).
    pub(crate) fn skip_quantum(&mut self) {
        self.quantum += 1;
    }

    /// Contiguous chunk length that spreads `apps` across `workers` shards
    /// (the whole fleet when a single worker suffices). Never zero.
    fn shard_size(apps: usize, workers: usize) -> usize {
        if workers <= 1 || apps <= 1 {
            apps.max(1)
        } else {
            apps.div_ceil(workers.min(apps))
        }
    }

    /// Feeds one quantum's outcome back to an application: the platform
    /// completed `work_units` of its work over `[start, end]` while the app
    /// drew `power_above_idle_watts`. Beats are stamped at interpolated
    /// times with one power sample each
    /// ([`HeartbeatedWorkload::advance_metered`]), so the runtime's window
    /// rates are unbiased and its power horizon matches the beat window.
    pub fn advance(
        &mut self,
        handle: AppHandle,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) {
        self.apps[handle.0]
            .driver
            .advance_metered(start, end, work_units, power_above_idle_watts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PerformanceMarket, StaticShare, WeightedFair};
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    use seec::ExplorationPolicy;
    use workloads::{SplashBenchmark, Workload};

    /// A small action space whose declared effects the synthetic platform
    /// mirrors exactly: DVFS x cores, speedups 0.5..6x, powers 0.4..5.2x.
    fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 2.0)
                    .effect(Axis::Power, 2.6),
            )
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.9)
                    .effect(Axis::Power, 2.0),
            )
            .build()
            .unwrap();
        vec![
            Box::new(TableActuator::new(dvfs)),
            Box::new(TableActuator::new(cores)),
        ]
    }

    fn managed_app(benchmark: SplashBenchmark, seed: u64, target: f64) -> ManagedApp {
        let driver = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
        driver.set_heart_rate_goal(target);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .exploration(ExplorationPolicy {
                epsilon: 0.0,
                ..ExplorationPolicy::default()
            })
            .seed(seed)
            .build()
            .unwrap();
        ManagedApp::new(driver, runtime).with_nominal_power_hint(10.0)
    }

    /// Drives `coordinator` for `ticks` quanta against a platform whose
    /// true behaviour mirrors each app's declared effects exactly (nominal
    /// rate 10 beats/s, nominal power 10 W), returning the machine power of
    /// the final tick.
    fn drive(coordinator: &mut Coordinator, handles: &[AppHandle], ticks: usize) -> Vec<f64> {
        let mut now = 0.0;
        let mut final_powers = Vec::new();
        for _ in 0..ticks {
            now += 1.0;
            final_powers.clear();
            for &handle in handles {
                if !coordinator.app(handle).active_at(coordinator.quantum()) {
                    final_powers.push(0.0);
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                let rate = 10.0 * effect.performance;
                let power = 10.0 * effect.power;
                coordinator.advance(handle, now - 1.0, now, rate, power);
                final_powers.push(power);
            }
            coordinator.step(now).unwrap();
        }
        final_powers
    }

    #[test]
    fn registration_and_accessors() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        assert!(coordinator.is_empty());
        let handle = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0));
        assert_eq!(coordinator.len(), 1);
        assert_eq!(handle.index(), 0);
        assert_eq!(coordinator.app(handle).name(), "barnes");
        assert_eq!(coordinator.app(handle).weight(), 1.0);
        assert_eq!(coordinator.policy_name(), "static-share");
        coordinator.set_policy(Box::new(WeightedFair));
        assert_eq!(coordinator.policy_name(), "weighted-fair");
        assert!(format!("{coordinator:?}").contains("Coordinator"));
        assert!(format!("{:?}", coordinator.app(handle)).contains("barnes"));
    }

    #[test]
    fn step_keeps_believed_power_inside_the_budget() {
        // Three greedy apps (targets far beyond reach) on a 30 W budget:
        // flat out they would draw 3 x 52 W. After warm-up, the believed
        // power of every applied configuration must fit the awards, which
        // conserve the (headroomed) budget.
        let mut coordinator = Coordinator::new(30.0, Box::new(WeightedFair));
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator
                    .register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0))
            })
            .collect();
        drive(&mut coordinator, &handles, 30);
        let awards_total: f64 = coordinator.awards().iter().sum();
        assert!(
            awards_total <= 30.0 * 0.95 + 1e-9,
            "awards {awards_total} must conserve the headroomed budget"
        );
        for &handle in &handles {
            let app = coordinator.app(handle);
            let decision = app.last_decision().unwrap();
            let believed_watts = decision.believed_powerup * app.nominal_power_watts();
            assert!(
                believed_watts <= app.awarded_watts() * 1.05 + 1e-9,
                "app {} believed draw {believed_watts} vs award {}",
                app.name(),
                app.awarded_watts()
            );
        }
    }

    #[test]
    fn arrivals_and_departures_follow_the_shared_schedule() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        let resident = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 15.0));
        let visitor = coordinator.register(
            managed_app(SplashBenchmark::Volrend, 2, 15.0)
                .with_arrival(5)
                .with_departure(10),
        );
        let mut now = 0.0;
        for tick in 0..15 {
            now += 1.0;
            let summary = coordinator.step(now).unwrap();
            assert_eq!(summary.quantum, tick);
            let expected = if (5..10).contains(&tick) { 2 } else { 1 };
            assert_eq!(summary.active_apps, expected, "tick {tick}");
            if !(5..10).contains(&tick) {
                assert_eq!(coordinator.app(visitor).awarded_watts(), 0.0);
            }
        }
        assert!(coordinator.app(resident).active_at(14));
        assert_eq!(coordinator.quantum(), 15);
    }

    #[test]
    fn higher_priority_gets_the_bigger_envelope() {
        let mut coordinator = Coordinator::new(40.0, Box::new(PerformanceMarket::default()));
        let light = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let heavy = coordinator.register(
            managed_app(SplashBenchmark::Raytrace, 2, 1000.0).with_weight(4.0),
        );
        let handles = [light, heavy];
        drive(&mut coordinator, &handles, 20);
        assert!(
            coordinator.app(heavy).awarded_watts() > coordinator.app(light).awarded_watts(),
            "heavy {} vs light {}",
            coordinator.app(heavy).awarded_watts(),
            coordinator.app(light).awarded_watts()
        );
    }

    #[test]
    fn demand_phases_cycle_from_arrival() {
        let workload = Workload::new(SplashBenchmark::Barnes, 3);
        let phases = workload.quanta(4);
        let app = managed_app(SplashBenchmark::Barnes, 3, 10.0)
            .with_phases(phases.clone())
            .with_arrival(2);
        assert!(app.demand_at(1).is_none());
        assert_eq!(app.demand_at(2).unwrap(), &phases[0]);
        assert_eq!(app.demand_at(5).unwrap(), &phases[3]);
        assert_eq!(app.demand_at(6).unwrap(), &phases[0]);
        let phaseless = managed_app(SplashBenchmark::Barnes, 3, 10.0);
        assert!(phaseless.demand_at(0).is_none());
    }

    #[test]
    fn sharded_step_is_bit_identical_to_sequential() {
        // The same five-app fleet driven under 1, 2, 3, and 7 workers must
        // produce byte-for-byte the same awards, decisions, and summaries
        // every tick (the full property version lives in
        // tests/lifecycle_props.rs).
        let run = |workers: usize| {
            let mut coordinator = Coordinator::new(40.0, Box::new(WeightedFair))
                .with_workers(workers)
                .with_shard_threshold(0);
            let handles: Vec<AppHandle> = (0..5)
                .map(|i| {
                    coordinator.register(
                        managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0)
                            .with_weight(1.0 + i as f64),
                    )
                })
                .collect();
            let mut now = 0.0;
            let mut trace = Vec::new();
            for _ in 0..20 {
                now += 1.0;
                for &handle in &handles {
                    let effect = {
                        let runtime = coordinator.app(handle).runtime();
                        runtime
                            .model()
                            .space()
                            .predicted_effect(runtime.current_configuration())
                            .unwrap()
                    };
                    coordinator.advance(
                        handle,
                        now - 1.0,
                        now,
                        10.0 * effect.performance,
                        10.0 * effect.power,
                    );
                }
                let summary = coordinator.step(now).unwrap();
                trace.push((
                    summary,
                    coordinator.awards().to_vec(),
                    handles
                        .iter()
                        .map(|&h| coordinator.app(h).last_decision())
                        .collect::<Vec<_>>(),
                ));
            }
            trace
        };
        let sequential = run(1);
        for workers in [2, 3, 7] {
            assert_eq!(sequential, run(workers), "workers = {workers}");
        }
    }

    #[test]
    fn retire_makes_an_app_absent_from_the_next_step() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        let resident = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 15.0));
        let doomed = coordinator.register(managed_app(SplashBenchmark::Volrend, 2, 15.0));
        for tick in 0..3 {
            let summary = coordinator.step(tick as f64 + 1.0).unwrap();
            assert_eq!(summary.active_apps, 2);
        }
        coordinator.retire(doomed);
        let summary = coordinator.step(4.0).unwrap();
        assert_eq!(summary.active_apps, 1);
        assert_eq!(coordinator.app(doomed).awarded_watts(), 0.0);
        assert!(coordinator.app(resident).active_at(coordinator.quantum()));
        // Idempotent, and an earlier scheduled departure is kept.
        coordinator.retire(doomed);
        assert!(!coordinator.app(doomed).active_at(coordinator.quantum()));
        let late = coordinator.register(
            managed_app(SplashBenchmark::Raytrace, 3, 15.0).with_departure(2),
        );
        coordinator.retire(late);
        assert!(!coordinator.app(late).active_at(3));
    }

    #[test]
    fn mid_run_registration_joins_arbitration_immediately() {
        let mut coordinator = Coordinator::new(60.0, Box::new(WeightedFair))
            .with_workers(2)
            .with_shard_threshold(0);
        let first = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let mut now = 0.0;
        for _ in 0..5 {
            now += 1.0;
            coordinator.step(now).unwrap();
        }
        let second = coordinator.register(managed_app(SplashBenchmark::OceanNonContiguous, 2, 1000.0));
        now += 1.0;
        let summary = coordinator.step(now).unwrap();
        assert_eq!(summary.active_apps, 2);
        assert!(coordinator.app(second).awarded_watts() > 0.0);
        assert!(coordinator.app(first).awarded_watts() > 0.0);
        assert_eq!(coordinator.len(), 2);
    }

    #[test]
    fn set_budget_steps_the_envelope_pool() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        coordinator.register(managed_app(SplashBenchmark::Volrend, 2, 1000.0));
        coordinator.step(1.0).unwrap();
        assert_eq!(coordinator.budget_watts(), 100.0);
        coordinator.set_budget(10.0);
        assert_eq!(coordinator.budget_watts(), 10.0);
        let summary = coordinator.step(2.0).unwrap();
        assert!(
            summary.awarded_watts_total <= 10.0 * 0.95 + 1e-9,
            "stepped budget must bind the very next quantum, awarded {}",
            summary.awarded_watts_total
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_step_panics() {
        let mut coordinator = Coordinator::new(10.0, Box::new(StaticShare));
        coordinator.set_budget(0.0);
    }

    #[test]
    fn worker_counts_are_clamped_and_reported() {
        let mut coordinator = Coordinator::new(10.0, Box::new(StaticShare)).with_workers(0);
        assert_eq!(coordinator.workers(), 1);
        coordinator.set_workers(8);
        assert_eq!(coordinator.workers(), 8);
        coordinator.set_shard_threshold(0);
        assert_eq!(coordinator.shard_threshold(), 0);
        // Empty fleets and fleets smaller than the worker count still step.
        coordinator.step(1.0).unwrap();
        coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 10.0));
        coordinator.step(2.0).unwrap();
        assert_eq!(coordinator.quantum(), 2);
        // An externally shared pool is adopted as-is.
        let pool = std::sync::Arc::new(exec::ExecPool::new(3));
        let shared = Coordinator::new(10.0, Box::new(StaticShare)).with_pool(pool);
        assert_eq!(shared.workers(), 3);
        assert_eq!(shared.shard_threshold(), Coordinator::DEFAULT_SHARD_THRESHOLD);
    }

    #[test]
    fn fleet_request_aggregates_present_apps() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        // Empty fleet: inactive aggregate with neutral weight/urgency.
        let idle = coordinator.fleet_request();
        assert!(!idle.active);
        assert_eq!(idle.weight, 1.0);
        assert_eq!(idle.urgency, 1.0);
        assert_eq!(idle.max_power_watts, 0.0);

        coordinator
            .register(managed_app(SplashBenchmark::Barnes, 1, 15.0).with_weight(2.0));
        coordinator.register(
            managed_app(SplashBenchmark::Volrend, 2, 15.0)
                .with_weight(3.0)
                .with_arrival(10), // absent at quantum 0: excluded from the fold
        );
        let request = coordinator.fleet_request();
        assert!(request.active);
        assert_eq!(request.weight, 2.0);
        // Present app's ceiling: 10 W nominal hint x the space's most
        // expensive declared powerup (2.6 x 2.0).
        assert!((request.max_power_watts - 10.0 * 5.2).abs() < 1e-9);
        assert!(request.urgency >= 1.0);
        // A fleet_request followed by a step must not perturb the step.
        coordinator.step(1.0).unwrap();
        assert_eq!(coordinator.quantum(), 1);
    }

    #[test]
    fn managed_app_shards_across_threads() {
        fn assert_send<T: Send>() {}
        assert_send::<ManagedApp>();
    }

    #[test]
    fn app_without_goal_propagates_the_error() {
        let driver = HeartbeatedWorkload::new(Workload::new(SplashBenchmark::Barnes, 1));
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .build()
            .unwrap();
        let mut coordinator = Coordinator::new(50.0, Box::new(StaticShare));
        coordinator.register(ManagedApp::new(driver, runtime));
        assert!(matches!(coordinator.step(1.0), Err(SeecError::NoGoal)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_panics() {
        let _ = Coordinator::new(0.0, Box::new(StaticShare));
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn out_of_range_headroom_panics() {
        let _ = Coordinator::new(10.0, Box::new(StaticShare)).with_headroom(1.5);
    }
}
