//! The multi-application coordinator: N observe–decide–act loops on one
//! shared quantum schedule, arbitrating one machine-level power budget.

use std::collections::BTreeMap;
use std::sync::Arc;

use exec::ExecPool;
use heartbeats::{observe_fleet, HeartbeatMonitor, MonitorObservation};
use obs::{Counter, Event, EventKind, Recorder, Stage, StageClock};
use seec::{CapDecision, SeecError, SeecRuntime};
use workloads::{HeartbeatedWorkload, QuantumDemand};

use crate::incremental::{IncrementalArbiter, WakeConfig};
use crate::policy::{AppRequest, ArbitrationPolicy};

/// Opaque handle to one application registered with a [`Coordinator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppHandle(usize);

impl AppHandle {
    /// The registration index of the application (registration order).
    pub fn index(self) -> usize {
        self.0
    }

    /// The handle for registration index `index` — the inverse of
    /// [`Self::index`], for drivers that iterate a fleet by position
    /// (handles are issued densely, in registration order, by
    /// [`Coordinator::register`]). Indexes past the fleet size panic when
    /// used, exactly like a slice index.
    pub fn from_index(index: usize) -> Self {
        AppHandle(index)
    }
}

/// Where an application sits on the watchdog's degradation ladder.
///
/// The ladder is `Healthy → Suspect → Quarantined → Readmitted`, driven
/// entirely by telemetry the coordinator already sees (no side channel to
/// the fault injector): missing heartbeats, non-finite reports, and
/// believed power persistently over the awarded envelope. `Readmitted` is
/// behaviourally identical to `Healthy` — it only records that the app
/// earned its way back — and a readmitted app can be quarantined again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No watchdog rule has fired recently.
    Healthy,
    /// A rule fired this quantum but has not persisted long enough to
    /// quarantine: the app keeps its normal arbitration seat.
    Suspect,
    /// A rule persisted past its threshold (or telemetry went non-finite):
    /// the app is pinned to the conservative floor envelope and its
    /// reclaimed watts are redistributed by the normal arbitration fold.
    Quarantined,
    /// The app produced [`WatchdogConfig::readmit_quanta`] consecutive
    /// clean quanta while quarantined and holds a normal seat again.
    Readmitted,
}

/// Thresholds for the coordinator's per-app watchdog (see
/// [`Coordinator::with_watchdog`]). All rules are evaluated once per step,
/// per app, in registration order, so the ladder is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Consecutive active quanta without a fresh heartbeat before
    /// quarantine (the paper's platform treats a silent app as gone).
    pub stale_beat_quanta: usize,
    /// Consecutive quanta of reported power above the envelope (times
    /// `1 + overdraw_tolerance`) before quarantine.
    pub overdraw_quanta: usize,
    /// Fractional slack on the overdraw comparison; believed power may
    /// legitimately exceed the envelope transiently while models learn.
    pub overdraw_tolerance: f64,
    /// The conservative watt envelope a quarantined app is pinned to (also
    /// the floor of the overdraw comparison, so freshly-arrived apps with
    /// a 0 W award are not instantly suspect). Should be at least the
    /// fleet's cheapest-configuration draw, or honest recovered apps can
    /// never requalify.
    pub quarantine_floor_watts: f64,
    /// Consecutive clean quanta (fresh beats, finite telemetry, no
    /// overdraw) a quarantined app needs before readmission.
    pub readmit_quanta: usize,
    /// Active quanta an app is judged before stale-beat and overdraw
    /// strikes count. A freshly-launched app's power model is uncalibrated
    /// (its first awards are guesses, so early "overdraw" is the model
    /// learning) and its heart rate is still ramping (a slow app may
    /// legitimately not beat for several quanta). Only the NaN rule is
    /// exempt — non-finite telemetry needs no calibration to be damning.
    pub warmup_quanta: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stale_beat_quanta: 4,
            overdraw_quanta: 4,
            overdraw_tolerance: 0.5,
            quarantine_floor_watts: 5.0,
            readmit_quanta: 8,
            warmup_quanta: 8,
        }
    }
}

/// Per-app watchdog bookkeeping (counters and the ladder position).
#[derive(Debug, Clone, Copy)]
struct HealthTracker {
    state: HealthState,
    /// Heartbeat count at the previous watchdog pass.
    last_beats: u64,
    /// Active quanta this app has been judged (the warmup clock).
    judged_quanta: usize,
    stale_quanta: usize,
    overdraw_quanta: usize,
    clean_quanta: usize,
    quarantined_at: Option<usize>,
    readmitted_at: Option<usize>,
}

impl HealthTracker {
    fn new() -> Self {
        HealthTracker {
            state: HealthState::Healthy,
            last_beats: 0,
            judged_quanta: 0,
            stale_quanta: 0,
            overdraw_quanta: 0,
            clean_quanta: 0,
            quarantined_at: None,
            readmitted_at: None,
        }
    }
}

/// One application under coordination: its heartbeat-instrumented workload
/// (the phase driver), the SEEC runtime that manages it, and its place on
/// the shared schedule.
pub struct ManagedApp {
    name: Arc<str>,
    driver: HeartbeatedWorkload,
    monitor: HeartbeatMonitor,
    runtime: SeecRuntime,
    weight: f64,
    arrival: usize,
    departure: Option<usize>,
    /// Per-quantum demand phases; the app cycles through them while active.
    phases: Vec<QuantumDemand>,
    /// Fallback estimate of the app's nominal-configuration power draw, in
    /// watts, used to convert watt envelopes into powerup caps until the
    /// runtime's own estimator has observed real samples. 0 = unknown.
    nominal_power_hint: f64,
    awarded_watts: f64,
    last_decision: Option<CapDecision>,
    /// Watchdog ladder state (inert until the coordinator enables a
    /// [`WatchdogConfig`]).
    health: HealthTracker,
}

impl std::fmt::Debug for ManagedApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedApp")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("arrival", &self.arrival)
            .field("departure", &self.departure)
            .field("awarded_watts", &self.awarded_watts)
            .finish_non_exhaustive()
    }
}

impl ManagedApp {
    /// Couples a heartbeat-instrumented workload with the SEEC runtime
    /// managing it. The runtime must have been built over (a monitor of)
    /// the driver's registry, so both observe the same application.
    pub fn new(driver: HeartbeatedWorkload, runtime: SeecRuntime) -> Self {
        let monitor = driver.monitor();
        ManagedApp {
            name: monitor.name(),
            driver,
            monitor,
            runtime,
            weight: 1.0,
            arrival: 0,
            departure: None,
            phases: Vec::new(),
            nominal_power_hint: 0.0,
            awarded_watts: 0.0,
            last_decision: None,
            health: HealthTracker::new(),
        }
    }

    /// Sets the arbitration weight (priority tier; default 1.0).
    ///
    /// # Panics
    ///
    /// Panics unless the weight is positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "weight must be positive");
        self.weight = weight;
        self
    }

    /// Sets the shared-schedule quantum at which the app arrives (default 0).
    pub fn with_arrival(mut self, quantum: usize) -> Self {
        self.arrival = quantum;
        self
    }

    /// Sets the shared-schedule quantum at which the app departs
    /// (exclusive; default: never).
    pub fn with_departure(mut self, quantum: usize) -> Self {
        self.departure = Some(quantum);
        self
    }

    /// Sets the app's per-quantum demand phases (cycled while active).
    pub fn with_phases(mut self, phases: Vec<QuantumDemand>) -> Self {
        self.phases = phases;
        self
    }

    /// Seeds the watts-per-nominal estimate used before the runtime's own
    /// power estimator has samples (see the field docs).
    pub fn with_nominal_power_hint(mut self, watts: f64) -> Self {
        self.nominal_power_hint = watts.max(0.0);
        self
    }

    /// The application's name (from its heartbeat registry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload phase driver.
    pub fn driver(&self) -> &HeartbeatedWorkload {
        &self.driver
    }

    /// The SEEC runtime managing this app.
    pub fn runtime(&self) -> &SeecRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime (tuning, manual actuation).
    pub fn runtime_mut(&mut self) -> &mut SeecRuntime {
        &mut self.runtime
    }

    /// The arbitration weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether the app is present at shared quantum `quantum`.
    pub fn active_at(&self, quantum: usize) -> bool {
        quantum >= self.arrival && self.departure.is_none_or(|d| quantum < d)
    }

    /// The demand phase the app presents at shared quantum `quantum`
    /// (`None` when absent or without phases). Phases cycle, anchored at
    /// the app's arrival.
    pub fn demand_at(&self, quantum: usize) -> Option<&QuantumDemand> {
        if !self.active_at(quantum) || self.phases.is_empty() {
            return None;
        }
        Some(&self.phases[(quantum - self.arrival) % self.phases.len()])
    }

    /// The watt envelope awarded at the most recent step (0 before the
    /// first step or while absent).
    pub fn awarded_watts(&self) -> f64 {
        self.awarded_watts
    }

    /// The decision taken at the most recent step this app was active.
    pub fn last_decision(&self) -> Option<CapDecision> {
        self.last_decision
    }

    /// Best current estimate of the app's nominal-configuration power, in
    /// watts: the runtime's learned estimate once initialised, the
    /// registration hint before that.
    pub fn nominal_power_watts(&self) -> f64 {
        self.runtime
            .estimated_nominal_power()
            .unwrap_or(self.nominal_power_hint)
    }

    /// The app's position on the watchdog's degradation ladder
    /// ([`HealthState::Healthy`] forever when no watchdog is enabled).
    pub fn health_state(&self) -> HealthState {
        self.health.state
    }

    /// The quantum at which the watchdog first quarantined the app
    /// (`None` = never quarantined).
    pub fn quarantined_at(&self) -> Option<usize> {
        self.health.quarantined_at
    }

    /// The quantum at which the watchdog most recently readmitted the app
    /// (`None` = never readmitted).
    pub fn readmitted_at(&self) -> Option<usize> {
        self.health.readmitted_at
    }
}

/// The believed power draw of `app`'s *cheapest* configuration, in watts —
/// the least it can physically draw while running at all (0 when its
/// nominal power is still unknown). The watchdog's overdraw envelope and
/// the admission feasibility pre-check both reason from this floor.
fn cheapest_floor_watts(app: &ManagedApp) -> f64 {
    app.nominal_power_watts() * app.runtime.model().table().min_declared_power()
}

/// What `app` commits against the cap for admission feasibility purposes:
/// once it has been decided at least once the platform can squeeze it to
/// its cheapest-configuration floor, but until then it is still facing its
/// landing quantum at full launch (nominal-configuration) power — the
/// transient that makes simultaneous launch storms infeasible.
fn committed_floor_watts(app: &ManagedApp) -> f64 {
    if app.last_decision.is_some() {
        cheapest_floor_watts(app)
    } else {
        app.nominal_power_watts()
    }
}

/// Runs the watchdog ladder over one application for the quantum about to
/// be arbitrated, mutating its request in place when quarantine pins it to
/// the floor envelope. Sequential, registration order, plain comparisons —
/// the ladder is bit-deterministic and, when no watchdog is configured,
/// never runs at all.
fn watchdog_app(
    app: &mut ManagedApp,
    request: &mut AppRequest,
    reported_work: Option<f64>,
    reported_power: Option<f64>,
    config: &WatchdogConfig,
    quantum: usize,
) {
    let beats = app.driver.emitted_beats();
    if !app.active_at(quantum) {
        // Absent apps are not judged; syncing the beat cursor makes the
        // staleness clock start at arrival, not registration.
        app.health.last_beats = beats;
        return;
    }
    let fresh = beats != app.health.last_beats;
    app.health.last_beats = beats;
    let warming_up = app.health.judged_quanta < config.warmup_quanta;
    app.health.judged_quanta = app.health.judged_quanta.saturating_add(1);

    // Non-finite telemetry or request fields quarantine immediately: a NaN
    // entering the arbitration fold would poison every downstream award.
    // (An *infinite* request ceiling is legitimate — apps without power
    // samples absorb anything — so only NaN is judged there.)
    let non_finite = reported_work.is_some_and(|w| !w.is_finite())
        || reported_power.is_some_and(|p| !p.is_finite())
        || request.urgency.is_nan()
        || request.max_power_watts.is_nan()
        || request.weight.is_nan();
    // Believed power persistently over the envelope (with slack for model
    // learning); the floor keeps 0 W-award quanta from counting. The
    // envelope also admits the believed draw of the app's *cheapest*
    // configuration: when awards squeeze an app below what it can
    // physically reach, drawing its floor is obedience, not overdraw —
    // and without this an honest app whose cheapest draw exceeds the
    // quarantine floor could never produce a clean quantum to requalify.
    // (A misreporter cannot hide behind this: at fault onset its believed
    // cheapest draw still reflects the honest model, and the Kalman
    // nominal-power estimate re-converges slower than the strike window.)
    let cheapest_watts = cheapest_floor_watts(app);
    let envelope = app
        .awarded_watts
        .max(config.quarantine_floor_watts)
        .max(cheapest_watts);
    let overdraw = !warming_up
        && reported_power
            .is_some_and(|p| p.is_finite() && p > envelope * (1.0 + config.overdraw_tolerance));
    app.health.stale_quanta = if fresh || warming_up {
        0
    } else {
        app.health.stale_quanta + 1
    };
    app.health.overdraw_quanta = if overdraw {
        app.health.overdraw_quanta + 1
    } else {
        0
    };

    match app.health.state {
        HealthState::Quarantined => {
            let clean = fresh && !non_finite && !overdraw;
            app.health.clean_quanta = if clean { app.health.clean_quanta + 1 } else { 0 };
            if app.health.clean_quanta >= config.readmit_quanta {
                app.health.state = HealthState::Readmitted;
                app.health.readmitted_at = Some(quantum);
                app.health.clean_quanta = 0;
                app.health.stale_quanta = 0;
                app.health.overdraw_quanta = 0;
            }
        }
        HealthState::Healthy | HealthState::Suspect | HealthState::Readmitted => {
            if non_finite
                || app.health.stale_quanta >= config.stale_beat_quanta
                || app.health.overdraw_quanta >= config.overdraw_quanta
            {
                app.health.state = HealthState::Quarantined;
                app.health.quarantined_at.get_or_insert(quantum);
                app.health.clean_quanta = 0;
            } else if !fresh || overdraw {
                app.health.state = HealthState::Suspect;
            } else if app.health.state == HealthState::Suspect {
                app.health.state = HealthState::Healthy;
            }
        }
    }

    if app.health.state == HealthState::Quarantined {
        // The conservative floor seat: unit urgency, ceiling pinned to the
        // floor. The normal arbitration fold then redistributes the watts
        // the app can no longer absorb.
        request.urgency = 1.0;
        request.max_power_watts = config.quarantine_floor_watts;
    }
}

/// Why [`Coordinator::try_register`] refused a registrant: with the
/// admission feasibility pre-check enabled, an app whose
/// cheapest-configuration power floor exceeds the remaining cap headroom is
/// rejected outright — arbitration could never award it a feasible
/// envelope, so admitting it would guarantee either starvation or a cap
/// violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionError {
    /// The refused application's name.
    pub app: String,
    /// The registrant's cheapest-configuration power floor, in watts.
    pub floor_watts: f64,
    /// Cap headroom that was still unclaimed by resident floors, in watts.
    pub headroom_watts: f64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission rejected: {} needs at least {:.3} W but only {:.3} W of cap headroom remains",
            self.app, self.floor_watts, self.headroom_watts
        )
    }
}

impl std::error::Error for AdmissionError {}

/// Summary of one coordinator step, as plain `Copy` data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// The shared quantum index this step covered.
    pub quantum: usize,
    /// Applications present this quantum.
    pub active_apps: usize,
    /// Watts handed out across the fleet (≤ budget × headroom).
    pub awarded_watts_total: f64,
}

/// Builds one application's [`AppRequest`] for this quantum from an
/// already-taken monitor snapshot. Free function (no `&self`) so the
/// sharded step can run it on worker threads over disjoint fleet chunks.
fn request_for(
    app: &ManagedApp,
    observation: &MonitorObservation,
    quantum: usize,
    budget_watts: f64,
) -> AppRequest {
    let active = app.active_at(quantum);
    // The observation already carries the registry's target; only the
    // runtime's local override is consulted on top, so the fleet snapshot
    // stays the step's single lock per app.
    let target = app
        .runtime
        .target_override()
        .or(observation.target_heart_rate);
    let observed = observation.stats.window;
    let urgency = match target {
        Some(target) if observed > 0.0 && observation.stats.beats_in_window >= 2 => {
            target / observed
        }
        _ => 1.0,
    };
    let nominal_power = app.nominal_power_watts();
    let max_power_watts = if nominal_power > 0.0 {
        nominal_power * app.runtime.model().table().max_declared_power()
    } else {
        // Power draw unknown yet: let the app absorb anything; its
        // envelope will bind as soon as samples arrive.
        budget_watts
    };
    AppRequest {
        active,
        weight: app.weight,
        urgency,
        max_power_watts,
    }
}

/// Folds per-app requests into one fleet-level aggregate (see
/// [`Coordinator::fleet_request`] for the field semantics). Registration
/// order, so every floating-point sum is deterministic.
fn aggregate_requests(requests: &[AppRequest]) -> AppRequest {
    let mut active = false;
    let mut weight = 0.0;
    let mut weighted_urgency = 0.0;
    let mut max_power_watts = 0.0;
    for request in requests.iter().filter(|request| request.active) {
        active = true;
        weight += request.weight;
        weighted_urgency += request.weight * request.urgency;
        max_power_watts += request.max_power_watts;
    }
    AppRequest {
        active,
        weight: if weight > 0.0 { weight } else { 1.0 },
        urgency: if weight > 0.0 { weighted_urgency / weight } else { 1.0 },
        max_power_watts,
    }
}

/// Runs the decide stage over one contiguous fleet chunk: records the award
/// on every app and lets each *present* app decide under its envelope.
/// Returns the chunk-local index and error of the first failing decision;
/// earlier apps in the chunk keep the decisions already applied.
///
/// With a `dirty` mask (the incremental path), clean apps skip the whole
/// decide quantum — their held award and previous decision stand — and are
/// counted [`Counter::AppsSkipped`]; dirty apps decide and are counted
/// [`Counter::AppsRearbitrated`]. Without a mask (the full path) every
/// present app decides and is counted [`Counter::AppsDecided`], so
/// `skipped + rearbitrated + decided` sums to quanta × active fleet on
/// either path.
fn decide_chunk(
    apps: &mut [ManagedApp],
    observations: &[MonitorObservation],
    awards: &[f64],
    dirty: Option<&[bool]>,
    now: f64,
    quantum: usize,
    observer: Option<&Recorder>,
) -> Result<(), (usize, SeecError)> {
    for (offset, ((app, observation), &award)) in
        apps.iter_mut().zip(observations).zip(awards).enumerate()
    {
        let dirty = dirty.map(|dirty| dirty[offset]);
        decide_one(app, observation, award, dirty, now, quantum, observer)
            .map_err(|err| (offset, err))?;
    }
    Ok(())
}

/// Runs the decide stage over the slots named by `list` — ascending global
/// indices, all within `base..base + apps.len()` — the wake-scheduled
/// decide walk. Sleeping slots never appear in the list: their held award
/// and previous decision stand untouched (`awarded_watts` still carries the
/// award from the quantum they last decided or skipped, bit-equal to the
/// engine's held row), and the step counts them [`Counter::AppsSlept`] once
/// from the arbitration outcome instead of per slot here. The `dirty` mask
/// chunk, when present, is indexed chunk-relative like the data slices.
/// Returns the *global* index and error of the first failing decision.
#[allow(clippy::too_many_arguments)] // the decide stage's full slice set, mirroring decide_chunk
fn decide_list(
    list: &[u32],
    base: usize,
    apps: &mut [ManagedApp],
    observations: &[MonitorObservation],
    awards: &[f64],
    dirty: Option<&[bool]>,
    now: f64,
    quantum: usize,
    observer: Option<&Recorder>,
) -> Result<(), (usize, SeecError)> {
    for &index in list {
        let offset = index as usize - base;
        let dirty = dirty.map(|dirty| dirty[offset]);
        decide_one(
            &mut apps[offset],
            &observations[offset],
            awards[offset],
            dirty,
            now,
            quantum,
            observer,
        )
        .map_err(|err| (index as usize, err))?;
    }
    Ok(())
}

/// The single-slot decide body shared by [`decide_chunk`] (contiguous
/// ranges, the always-awake walk) and [`decide_list`] (awake lists, the
/// wake-scheduled walk): records the award on the app and, when the app is
/// present and not masked clean, decides it under the envelope.
fn decide_one(
    app: &mut ManagedApp,
    observation: &MonitorObservation,
    award: f64,
    dirty: Option<bool>,
    now: f64,
    quantum: usize,
    observer: Option<&Recorder>,
) -> Result<(), SeecError> {
    app.awarded_watts = award;
    if !app.active_at(quantum) {
        return Ok(());
    }
    if dirty == Some(false) {
        if let Some(observer) = observer {
            observer.count(Counter::AppsSkipped);
        }
        return Ok(());
    }
    let nominal_power = app.nominal_power_watts();
    let max_powerup = if nominal_power > 0.0 && award.is_finite() {
        award / nominal_power
    } else {
        f64::INFINITY
    };
    // Per-decision latency: counter additions are order-free, so timing
    // from pool workers keeps the bucket counts deterministic; only the
    // wall-clock values vary.
    let clock = observer.map(|_| StageClock::start());
    match app
        .runtime
        .decide_under_power_cap_with_observation(now, observation, max_powerup)
    {
        Ok(decision) => app.last_decision = Some(decision),
        Err(err) => return Err(err),
    }
    if let (Some(observer), Some(clock)) = (observer, clock) {
        observer.count(if dirty.is_some() {
            Counter::AppsRearbitrated
        } else {
            Counter::AppsDecided
        });
        observer.time(Stage::Decision, clock.total());
    }
    Ok(())
}

/// Hot per-application state the step loop streams over every quantum, in
/// struct-of-arrays layout parallel to the coordinator's `apps` (one dense
/// row per registration slot, so the pool shards stream cache lines of
/// *one* field instead of pulling whole [`ManagedApp`]s). The observation,
/// request, and award buffers on [`Coordinator`] itself are the other three
/// columns of the same layout.
#[derive(Debug, Default)]
struct FleetHot {
    /// Work units reported through [`Coordinator::advance`] since the last
    /// step (`None` = nothing reported — a stalled or crashed app).
    reported_work: Vec<Option<f64>>,
    /// Power reported through [`Coordinator::advance`] since the last step.
    reported_power: Vec<Option<f64>>,
    /// Whether [`Coordinator::advance`] reported for this slot since the
    /// last step — the event that re-enrolls a steady app into observation
    /// on the incremental schedule.
    fresh: Vec<bool>,
    /// Per-step scratch: which slots skip re-observation this quantum
    /// (empty = observe everything).
    skip_observe: Vec<bool>,
    /// Wake-scheduled rounds only: the quantum's participant list —
    /// ascending slot indices awake this round, copied from the engine at
    /// round open (and refreshed after arbitration, which may merge
    /// mid-round wakes). Every per-app stage iterates this list instead of
    /// the fleet; sleeping slots appear in no stage at all.
    awake: Vec<u32>,
    /// Wake-scheduled rounds only: the subset of `awake` that needs a
    /// fresh snapshot this quantum. Awake slots that are steady, have no
    /// fresh report, and whose schedule presence is unchanged keep their
    /// buffered observation and request (the same skip rule the mask path
    /// applies fleet-wide, pre-filtered into a compact list).
    observe_list: Vec<u32>,
}

/// Runs many applications' ODA loops on one shared quantum schedule and
/// arbitrates a machine-level power budget across them.
///
/// Per [`Coordinator::step`]:
///
/// 1. **Observe** — every app's monitor is snapshotted in one pass
///    ([`observe_fleet`]), one lock acquisition per app.
/// 2. **Arbitrate** — the [`ArbitrationPolicy`] splits the budget into
///    per-app watt envelopes from each app's priority weight and
///    heartbeat-gap urgency.
/// 3. **Decide** — each present app's [`SeecRuntime`] decides *under its
///    envelope* ([`SeecRuntime::decide_under_power_cap_with_observation`]):
///    the envelope in watts becomes a powerup cap via the app's
///    nominal-power estimate, clamping the admissible configuration set to
///    the prefix of the model's power-sorted index.
///
/// The platform then runs a quantum in the chosen configurations and feeds
/// completed work and measured power back through
/// [`Coordinator::advance`].
///
/// # Sharding
///
/// With [`Coordinator::with_workers`] above 1, the per-application stages —
/// observe/request (1–2) and decide (3) — run on a **persistent**
/// [`exec::ExecPool`] over contiguous fleet shards, while arbitration (the
/// only stage that couples applications) stays a sequential fold over the
/// full request list. The pool is created once (when the worker count is
/// set) and reused across every quantum, so the steady-state step pays a
/// wake-up instead of the per-step `std::thread::scope` spawn it replaced.
/// Because each application's observation, request, and decision are
/// functions of *its own* state plus the arbitration output, and the
/// arbitration input/output are identical regardless of how the fleet was
/// partitioned, the sharded step is **bit-identical** to the sequential one
/// at every worker count (pinned by the property suite,
/// `tests/lifecycle_props.rs`).
///
/// Sharding only engages once the registered fleet reaches
/// [`Coordinator::shard_threshold`] applications (default
/// [`Coordinator::DEFAULT_SHARD_THRESHOLD`]); below it, the fan-out
/// hand-off costs more than the per-app work it spreads out, so the step
/// runs inline. The threshold is purely a performance knob — output is
/// bit-identical on either side of it.
///
/// # Application lifecycle
///
/// Applications [`register`](Coordinator::register) and
/// [`retire`](Coordinator::retire) at any point of the run — the fleet is
/// not fixed at construction. A registered app is *present* while
/// `arrival ≤ quantum < departure` ([`ManagedApp::active_at`]); absent apps
/// are observed but awarded exactly 0 W and never decide. The budget itself
/// can step mid-run via [`Coordinator::set_budget`].
pub struct Coordinator {
    apps: Vec<ManagedApp>,
    /// Parallel monitor list for [`observe_fleet`] (clones of each app's
    /// monitor — `Arc`s, so cheap).
    monitors: Vec<HeartbeatMonitor>,
    policy: Box<dyn ArbitrationPolicy>,
    budget_watts: f64,
    headroom: f64,
    quantum: usize,
    /// Persistent worker pool the per-app stages shard across (`None` =
    /// everything inline). Sized once by [`Self::set_workers`] (or shared
    /// via [`Self::with_pool`]) and reused across every quantum.
    pool: Option<Arc<ExecPool>>,
    /// Fleet size from which the per-app stages use the pool.
    shard_threshold: usize,
    /// Watchdog thresholds; `None` (the default) disables the degradation
    /// ladder entirely — the step is bit-identical to a pre-watchdog build.
    watchdog: Option<WatchdogConfig>,
    /// Whether a mid-run registration is immediately dropped to its
    /// cheapest configuration (see [`Self::with_admission_control`]).
    admission_control: bool,
    /// Whether [`Self::try_register`] runs the admission feasibility
    /// pre-check (see [`Self::with_admission_feasibility`]).
    admission_feasibility: bool,
    /// Incremental arbitration engine; `None` (the default) runs the full
    /// arbitration fold every quantum, byte-identical to every earlier
    /// build (see [`Self::with_arbitration_tolerance`]).
    incremental: Option<IncrementalArbiter>,
    /// Wake-scheduler configuration (see [`Self::with_wake_schedule`]).
    /// Stored on the coordinator so re-creating the incremental engine
    /// (a tolerance change) re-applies it; `None` — or a disabled config,
    /// or no engine to ride on — leaves every quantum on the always-awake
    /// path, byte-identical to a scheduler-free build.
    wake: Option<WakeConfig>,
    /// The wake calendar: quantum → slots whose `arrival` or `departure`
    /// falls there. Drained at the top of each step so a sleeping app is
    /// force-woken for the exact quantum its schedule presence flips.
    /// Only maintained while wake scheduling is active.
    wake_calendar: BTreeMap<usize, Vec<u32>>,
    /// Struct-of-arrays hot state parallel to `apps` (see [`FleetHot`]).
    hot: FleetHot,
    /// Simulation time of the most recent step (timestamps admission-
    /// control decisions for mid-run registrations).
    last_now: f64,
    // Reused per-step buffers: the steady-state sequential step allocates
    // nothing (the pooled step allocates one small per-shard Vec).
    observations: Vec<MonitorObservation>,
    requests: Vec<AppRequest>,
    awards: Vec<f64>,
    /// Telemetry recorder; `None` (the default) keeps every stage on the
    /// allocation-free hot path — no counter, no clock, no event. Counters
    /// and histogram timings go straight to the recorder (order-free
    /// atomics); discrete events route through [`Self::push_event`] so
    /// their order stays deterministic.
    observer: Option<Arc<Recorder>>,
    /// Events raised inside [`Self::step`] (health transitions), buffered
    /// so pooled callers can drain them in a deterministic order.
    pending_events: Vec<Event>,
    /// When true (set by a [`crate::RackCoordinator`] under a datacenter
    /// arbiter), [`Self::step`] leaves `pending_events` buffered and the
    /// owner drains them in rack order; when false, the step flushes its
    /// own buffer before returning.
    defer_events: bool,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("apps", &self.apps.len())
            .field("policy", &self.policy.name())
            .field("budget_watts", &self.budget_watts)
            .field("quantum", &self.quantum)
            .finish_non_exhaustive()
    }
}

impl Coordinator {
    /// A coordinator arbitrating `budget_watts` (machine power above idle)
    /// under `policy`.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite: an
    /// uncapped machine still benefits from the shared schedule).
    pub fn new(budget_watts: f64, policy: Box<dyn ArbitrationPolicy>) -> Self {
        assert!(budget_watts > 0.0, "power budget must be positive");
        Coordinator {
            apps: Vec::new(),
            monitors: Vec::new(),
            policy,
            budget_watts,
            headroom: 0.95,
            quantum: 0,
            pool: None,
            shard_threshold: Self::DEFAULT_SHARD_THRESHOLD,
            watchdog: None,
            admission_control: false,
            admission_feasibility: false,
            incremental: None,
            wake: None,
            wake_calendar: BTreeMap::new(),
            hot: FleetHot::default(),
            last_now: 0.0,
            observations: Vec::new(),
            requests: Vec::new(),
            awards: Vec::new(),
            observer: None,
            pending_events: Vec::new(),
            defer_events: false,
        }
    }

    /// Attaches a telemetry [`Recorder`]: stage latencies, pipeline
    /// counters, and the structured event stream flow into it from the next
    /// call onward. Telemetry is strictly passive — attaching a recorder
    /// cannot change any award, decision, or summary (pinned by
    /// `tests/obs_determinism.rs`).
    pub fn with_obs(mut self, recorder: Arc<Recorder>) -> Self {
        self.set_obs(Some(recorder));
        self
    }

    /// Attaches or detaches the telemetry recorder mid-run (see
    /// [`Self::with_obs`]).
    pub fn set_obs(&mut self, recorder: Option<Arc<Recorder>>) {
        self.observer = recorder;
    }

    /// The attached telemetry recorder, if any.
    pub fn obs(&self) -> Option<&Arc<Recorder>> {
        self.observer.as_ref()
    }

    /// Buffers (or emits) one discrete event. Must only be called from
    /// deterministic contexts — driver-thread lifecycle calls and the
    /// sequential stages of [`Self::step`] — never from pool workers.
    fn push_event(&mut self, kind: EventKind) {
        if self.observer.is_none() {
            return;
        }
        let event = Event {
            quantum: self.quantum as u64,
            kind,
        };
        if self.defer_events {
            self.pending_events.push(event);
        } else if let Some(observer) = &self.observer {
            observer.emit(event);
        }
    }

    /// Switches event delivery between immediate (`false`, the default) and
    /// deferred (`true`): a [`crate::DatacenterArbiter`] defers, stepping
    /// its racks on pool workers and draining each rack's buffer in rack
    /// order afterwards, so the combined stream is identical at every
    /// worker count.
    pub(crate) fn set_event_deferral(&mut self, defer: bool) {
        self.defer_events = defer;
    }

    /// Emits every buffered event, in buffer order, then clears the buffer.
    pub(crate) fn flush_events(&mut self) {
        if let Some(observer) = &self.observer {
            for event in self.pending_events.drain(..) {
                observer.emit(event);
            }
        } else {
            self.pending_events.clear();
        }
    }

    /// Default [`Self::shard_threshold`]: fleets below 64 apps step inline
    /// even when a pool is attached, because at the fleet sizes tracked in
    /// `BENCH_fig5.json` the fan-out hand-off outgrows the per-app decide
    /// work it spreads out.
    pub const DEFAULT_SHARD_THRESHOLD: usize = 64;

    /// Sets how many worker threads the per-application stages of
    /// [`Self::step`] shard across (default 1 = everything inline on the
    /// caller's thread). Counts above 1 create a persistent
    /// [`exec::ExecPool`], sized once and reused across every quantum;
    /// counts above the fleet size simply leave workers idle. Sharded
    /// output is bit-identical to sequential output at every worker count —
    /// see the type-level sharding notes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Changes the worker-thread count mid-run (see [`Self::with_workers`]).
    /// Replaces the pool only when the count actually changes.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers == self.workers() {
            return;
        }
        self.pool = (workers > 1).then(|| Arc::new(ExecPool::new(workers)));
    }

    /// Shards the per-application stages across an existing pool instead of
    /// creating a private one — the natural wiring when many coordinators
    /// (e.g. the racks of a [`crate::DatacenterArbiter`]) share one host.
    pub fn with_pool(mut self, pool: Arc<ExecPool>) -> Self {
        self.pool = (pool.threads() > 1).then_some(pool);
        self
    }

    /// Sets the fleet size from which the per-application stages use the
    /// worker pool (default [`Self::DEFAULT_SHARD_THRESHOLD`]; 0 = always).
    /// Purely a performance knob: output is bit-identical on either side.
    pub fn with_shard_threshold(mut self, threshold: usize) -> Self {
        self.set_shard_threshold(threshold);
        self
    }

    /// Changes the sharding threshold mid-run (see
    /// [`Self::with_shard_threshold`]).
    pub fn set_shard_threshold(&mut self, threshold: usize) {
        self.shard_threshold = threshold;
    }

    /// Fleet size from which the per-application stages use the pool.
    pub fn shard_threshold(&self) -> usize {
        self.shard_threshold
    }

    /// A sensible worker count for sharding on the current host: the
    /// available parallelism, capped at 8 (past that, per-step fan-out
    /// hand-off outgrows what extra shards buy at the fleet sizes tracked
    /// in BENCH_fig5.json). 1 on single-core hosts — i.e. the sequential
    /// step. The shared default keeps the experiment harness and the
    /// benchmark measuring the same configuration.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(8)
    }

    /// Worker threads the per-application stages shard across (the attached
    /// pool's thread count; 1 when everything runs inline).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, |pool| pool.threads())
    }

    /// Sets the fraction of the budget actually handed out (default 0.95).
    /// The margin absorbs model error: envelopes are enforced against each
    /// app's *believed* power multipliers, which learning keeps close to —
    /// but never exactly at — the platform's true draws.
    ///
    /// # Panics
    ///
    /// Panics unless `headroom` is in `(0, 1]`.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1], got {headroom}"
        );
        self.headroom = headroom;
        self
    }

    /// Enables or disables the per-app watchdog (default: disabled). With a
    /// config attached, every step runs the degradation ladder —
    /// [`HealthState`] transitions driven by stale heartbeats, non-finite
    /// telemetry, and persistent envelope overdraw — and quarantined apps
    /// are pinned to [`WatchdogConfig::quarantine_floor_watts`]. With
    /// `None`, the ladder never runs and the step is bit-identical to a
    /// watchdog-free coordinator.
    pub fn with_watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Changes the watchdog mid-run (see [`Self::with_watchdog`]).
    /// `None` disables it; ladder positions are kept but stop evolving.
    pub fn set_watchdog(&mut self, config: Option<WatchdogConfig>) {
        self.watchdog = config;
        // New thresholds can rewrite quarantine requests differently, so
        // every held award re-enters the fold.
        if let Some(engine) = self.incremental.as_mut() {
            engine.mark_all_dirty();
        }
    }

    /// The active watchdog thresholds, if any.
    pub fn watchdog(&self) -> Option<WatchdogConfig> {
        self.watchdog
    }

    /// Enables admission control for mid-run registrations (default: off).
    ///
    /// Without it, an application that registers between steps executes its
    /// landing quantum in whatever configuration it launched with — awards
    /// only bind at the *next* arbitration, so a hungry arrival can
    /// transiently blow the machine cap (the fuzzer's 2-app/3-quantum
    /// `cap_violation_machine` reproducer). With it, [`Self::register`]
    /// immediately decides the newcomer under a zero powerup cap, dropping
    /// it to its cheapest configuration until the next step awards it a
    /// real envelope.
    pub fn with_admission_control(mut self, enabled: bool) -> Self {
        self.admission_control = enabled;
        self
    }

    /// Changes admission control mid-run (see
    /// [`Self::with_admission_control`]).
    pub fn set_admission_control(&mut self, enabled: bool) {
        self.admission_control = enabled;
    }

    /// Whether mid-run registrations are admission-controlled.
    pub fn admission_control(&self) -> bool {
        self.admission_control
    }

    /// Enables the admission feasibility pre-check (default: off). With it,
    /// [`Self::try_register`] *rejects* — not just arbitrates — a
    /// registrant whose power floor does not fit in the cap headroom left
    /// after the floors of every resident app. A resident that has been
    /// decided at least once commits its cheapest-configuration floor
    /// (`nominal watts × cheapest declared power multiplier` — the least it
    /// can draw once squeezed); a resident still facing its landing quantum
    /// (no decision yet), and the registrant itself, commit their full
    /// launch (nominal-configuration) power — the landing transient a
    /// launch storm pays all at once is exactly what the check must refuse.
    /// A rejection raises an
    /// [`obs::EventKind::AdmissionRejected`] event on the
    /// telemetry stream. [`Self::register`] is never subject to the check —
    /// it cannot report a refusal — so feasibility-gated drivers must
    /// register through [`Self::try_register`].
    pub fn with_admission_feasibility(mut self, enabled: bool) -> Self {
        self.admission_feasibility = enabled;
        self
    }

    /// Changes the admission feasibility pre-check mid-run (see
    /// [`Self::with_admission_feasibility`]).
    pub fn set_admission_feasibility(&mut self, enabled: bool) {
        self.admission_feasibility = enabled;
    }

    /// Whether the admission feasibility pre-check is enabled.
    pub fn admission_feasibility(&self) -> bool {
        self.admission_feasibility
    }

    /// Enables **incremental arbitration** with the given tolerance:
    /// each step re-arbitrates only the applications whose request moved
    /// by at least `tolerance` (largest relative field movement) since
    /// they were last arbitrated, plus everything the dirty set names —
    /// fresh registrations, retirements, health transitions, and whole-
    /// fleet invalidations (budget or policy changes). Clean applications
    /// hold their award and skip the decide stage; with a positive
    /// tolerance, steady apps with no fresh report skip re-observation
    /// too, paying nothing at all for the quantum.
    ///
    /// Tolerance `0.0` marks every app dirty every quantum, so the engine
    /// degenerates to exactly the full fold — output is bit-identical to
    /// a coordinator without the knob (pinned by
    /// `tests/incremental_props.rs`) while still exercising the
    /// incremental machinery.
    ///
    /// # Panics
    ///
    /// Panics unless the tolerance is finite and non-negative.
    pub fn with_arbitration_tolerance(mut self, tolerance: f64) -> Self {
        self.set_arbitration_tolerance(Some(tolerance));
        self
    }

    /// Changes (or disables, with `None`) incremental arbitration mid-run
    /// (see [`Self::with_arbitration_tolerance`]). Any change discards the
    /// engine's held awards, so the next step re-arbitrates everything.
    pub fn set_arbitration_tolerance(&mut self, tolerance: Option<f64>) {
        self.incremental = tolerance.map(IncrementalArbiter::new);
        if let (Some(engine), Some(config)) = (self.incremental.as_mut(), self.wake) {
            engine.set_wake(config);
        }
        self.rebuild_wake_calendar();
    }

    /// The incremental arbitration tolerance (`None` = the full fold runs
    /// every quantum).
    pub fn arbitration_tolerance(&self) -> Option<f64> {
        self.incremental.as_ref().map(IncrementalArbiter::tolerance)
    }

    /// Enables the **event-driven wake scheduler** on top of incremental
    /// arbitration: an application whose request has stayed inside the
    /// arbitration tolerance for [`WakeConfig::steady_quanta`] consecutive
    /// quanta is put to sleep for up to [`WakeConfig::horizon`] quanta. A
    /// sleeping app is skipped by *every* per-app stage — not observed,
    /// not classified, not decided; its held award simply stands — so the
    /// step cost scales with the awake set instead of the fleet, and each
    /// slept quantum lands in [`obs::Counter::AppsSlept`] (keeping
    /// `slept + skipped + rearbitrated + decided` a partition of active
    /// app-quanta).
    ///
    /// Sleepers wake early on every event the incremental engine's
    /// invalidation rules name: a schedule presence flip (arrival or
    /// departure, via the wake calendar), [`Self::retire`], a watchdog
    /// health transition, or a whole-fleet invalidation (budget, policy,
    /// or watchdog change — no app sleeps through an envelope change).
    /// Otherwise the sleep deadline expires after `horizon` quanta and the
    /// app re-enters the fold. Reports delivered through [`Self::advance`]
    /// while asleep do *not* wake the app; they stay pending and re-enroll
    /// it into observation the quantum it wakes.
    ///
    /// Requires incremental arbitration: the config is stored immediately
    /// but stays inert until [`Self::with_arbitration_tolerance`] attaches
    /// an engine (the steady/dirty classification the sleep decision rides
    /// on is the engine's). Horizon 0 ([`WakeConfig::OFF`]) disables
    /// scheduling and is bit-identical to the plain incremental path at
    /// every worker count (pinned by `tests/incremental_props.rs`).
    pub fn with_wake_schedule(mut self, config: WakeConfig) -> Self {
        self.set_wake_schedule(Some(config));
        self
    }

    /// Changes (or removes, with `None`) the wake-scheduler configuration
    /// mid-run (see [`Self::with_wake_schedule`]). Any change wakes the
    /// whole fleet, so no app sleeps across a scheduling-rule change.
    pub fn set_wake_schedule(&mut self, config: Option<WakeConfig>) {
        self.wake = config;
        if let Some(engine) = self.incremental.as_mut() {
            engine.set_wake(config.unwrap_or(WakeConfig::OFF));
        }
        self.rebuild_wake_calendar();
    }

    /// The wake-scheduler configuration, if any (`None` = every app is
    /// awake every quantum).
    pub fn wake_schedule(&self) -> Option<WakeConfig> {
        self.wake
    }

    /// Whether wake scheduling actually runs this step: an enabled config
    /// riding on a live incremental engine.
    fn wake_scheduling_active(&self) -> bool {
        self.wake.is_some_and(|config| config.enabled()) && self.incremental.is_some()
    }

    /// Rebuilds the wake calendar from every app's pending arrival and
    /// departure quanta; cleared when wake scheduling is off (without
    /// sleepers there is nothing to force-wake). Entries at the current
    /// quantum are kept — the next step drains them, and a redundant wake
    /// of an already-awake slot is a no-op.
    fn rebuild_wake_calendar(&mut self) {
        self.wake_calendar.clear();
        if !self.wake_scheduling_active() {
            return;
        }
        let quantum = self.quantum;
        for (index, app) in self.apps.iter().enumerate() {
            if app.arrival >= quantum {
                self.wake_calendar
                    .entry(app.arrival)
                    .or_default()
                    .push(index as u32);
            }
            if let Some(departure) = app.departure {
                if departure >= quantum {
                    self.wake_calendar
                        .entry(departure)
                        .or_default()
                        .push(index as u32);
                }
            }
        }
    }

    /// Registers an application; returns its handle. May be called at any
    /// point of the run: a mid-run registration takes part in arbitration
    /// from the next [`Self::step`] onward (its default arrival of 0 makes
    /// it present immediately; use [`ManagedApp::with_arrival`] to schedule
    /// it later on the shared quantum schedule).
    ///
    /// With [`Self::with_admission_control`] enabled, a registration after
    /// the first step is immediately decided under a zero powerup cap — the
    /// cheapest-configuration landing that keeps its first quantum from
    /// executing under pre-arrival awards. Decision errors (e.g. a missing
    /// goal) are ignored: admission is best-effort, the next step decides
    /// properly.
    pub fn register(&mut self, mut app: ManagedApp) -> AppHandle {
        if self.admission_control && self.quantum > 0 {
            let observation = app.monitor.observation();
            let _ = app
                .runtime
                .decide_under_power_cap_with_observation(self.last_now, &observation, 0.0);
        }
        if self.observer.is_some() {
            if let Some(observer) = &self.observer {
                observer.count(Counter::Registrations);
            }
            let kind = EventKind::Register {
                app: app.name().to_string(),
            };
            self.push_event(kind);
        }
        self.monitors.push(app.monitor.clone());
        self.hot.reported_work.push(None);
        self.hot.reported_power.push(None);
        self.hot.fresh.push(false);
        self.apps.push(app);
        let handle = AppHandle(self.apps.len() - 1);
        if self.wake_scheduling_active() {
            // Future presence flips go on the wake calendar; a transition
            // at or before the current quantum needs no entry — the engine
            // registers the new slot dirty (hence awake) anyway.
            let app = &self.apps[handle.0];
            if app.arrival > self.quantum {
                self.wake_calendar
                    .entry(app.arrival)
                    .or_default()
                    .push(handle.0 as u32);
            }
            if let Some(departure) = app.departure {
                if departure > self.quantum {
                    self.wake_calendar
                        .entry(departure)
                        .or_default()
                        .push(handle.0 as u32);
                }
            }
        }
        handle
    }

    /// [`Self::register`] behind the admission feasibility pre-check:
    /// rejects a registrant whose launch-configuration power floor does
    /// not fit in the cap headroom left by resident apps' floors (see
    /// [`Self::with_admission_feasibility`]; with the check disabled, this
    /// never rejects). Registrants whose nominal power is still unknown
    /// (no hint, no samples) have a 0 W floor and always fit.
    ///
    /// # Errors
    ///
    /// Returns the [`AdmissionError`] describing the infeasible floor; the
    /// refused app is dropped and an
    /// [`obs::EventKind::AdmissionRejected`] event is raised.
    pub fn try_register(&mut self, app: ManagedApp) -> Result<AppHandle, AdmissionError> {
        if self.admission_feasibility {
            // The registrant lands at launch power: nothing has decided it
            // under the cap yet.
            let floor = app.nominal_power_watts();
            if floor > 0.0 {
                let quantum = self.quantum;
                let committed: f64 = self
                    .apps
                    .iter()
                    .filter(|resident| resident.departure.is_none_or(|d| d > quantum))
                    .map(committed_floor_watts)
                    .sum();
                let cap = self.budget_watts * self.headroom;
                if committed + floor > cap {
                    let error = AdmissionError {
                        app: app.name().to_string(),
                        floor_watts: floor,
                        headroom_watts: (cap - committed).max(0.0),
                    };
                    if self.observer.is_some() {
                        self.push_event(EventKind::AdmissionRejected {
                            app: error.app.clone(),
                            floor_watts: error.floor_watts,
                            headroom_watts: error.headroom_watts,
                        });
                    }
                    return Err(error);
                }
            }
        }
        Ok(self.register(app))
    }

    /// Retires an application at the current quantum: it is absent from the
    /// next [`Self::step`] onward (awarded exactly 0 W, never decides), but
    /// stays registered, so its handle, accessors, and final state remain
    /// valid. Idempotent; an earlier scheduled departure is kept if it has
    /// already passed.
    pub fn retire(&mut self, handle: AppHandle) {
        let quantum = self.quantum;
        let app = &mut self.apps[handle.0];
        app.departure = Some(app.departure.map_or(quantum, |d| d.min(quantum)));
        if let Some(engine) = self.incremental.as_mut() {
            engine.mark_dirty(handle.0);
        }
        if self.observer.is_some() {
            if let Some(observer) = &self.observer {
                observer.count(Counter::Retirements);
            }
            let kind = EventKind::Retire {
                app: self.apps[handle.0].name().to_string(),
            };
            self.push_event(kind);
        }
    }

    /// Replaces the machine power budget (takes effect next step) — the
    /// mid-run "budget step" of operator- or rack-level power management.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite, as in
    /// [`Self::new`]).
    pub fn set_budget(&mut self, budget_watts: f64) {
        self.set_budget_quiet(budget_watts);
        if self.observer.is_some() {
            if let Some(observer) = &self.observer {
                observer.count(Counter::BudgetChanges);
            }
            self.push_event(EventKind::BudgetChange {
                watts: budget_watts,
            });
        }
    }

    /// [`Self::set_budget`] without the telemetry event — for per-quantum
    /// envelope renewals (a rack re-applying its datacenter award every
    /// step) that would otherwise flood the event stream with non-changes.
    pub(crate) fn set_budget_quiet(&mut self, budget_watts: f64) {
        assert!(budget_watts > 0.0, "power budget must be positive");
        self.budget_watts = budget_watts;
        // A new budget invalidates every held award: the water level and
        // clearing price are functions of the budget.
        if let Some(engine) = self.incremental.as_mut() {
            engine.mark_all_dirty();
        }
    }

    /// Number of registered applications (present or not).
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The next shared quantum index [`Self::step`] will run.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// The machine power budget being arbitrated, in watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// The active arbitration policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Replaces the arbitration policy (takes effect next step; on the
    /// incremental path the whole fleet re-arbitrates under it).
    pub fn set_policy(&mut self, policy: Box<dyn ArbitrationPolicy>) {
        self.policy = policy;
        if let Some(engine) = self.incremental.as_mut() {
            engine.mark_all_dirty();
        }
    }

    /// The application behind `handle`.
    pub fn app(&self, handle: AppHandle) -> &ManagedApp {
        &self.apps[handle.0]
    }

    /// Mutable access to the application behind `handle`.
    pub fn app_mut(&mut self, handle: AppHandle) -> &mut ManagedApp {
        &mut self.apps[handle.0]
    }

    /// Every registered application, in registration order.
    pub fn apps(&self) -> &[ManagedApp] {
        &self.apps
    }

    /// The watt envelopes of the most recent step, in registration order.
    pub fn awards(&self) -> &[f64] {
        &self.awards
    }

    /// Folds the whole fleet's state into one machine-level [`AppRequest`]
    /// for the quantum [`Self::step`] will run next — what a
    /// [`crate::DatacenterArbiter`] arbitrates *between* coordinators, so
    /// budget can flow datacenter → rack → app through the same
    /// [`ArbitrationPolicy`] trait at both levels:
    ///
    /// * `active` — whether any application is present this quantum;
    /// * `weight` — the sum of present applications' weights (a rack full
    ///   of high-priority apps outweighs one full of batch jobs);
    /// * `urgency` — the weight-weighted mean of present applications'
    ///   heartbeat-gap urgencies;
    /// * `max_power_watts` — the sum of present applications' absorption
    ///   ceilings (water-filling at the datacenter level then returns a
    ///   rack's surplus to racks that can still use it).
    ///
    /// Observes the fleet (one lock per app, same snapshot `step` would
    /// take; the warmed buffers are reused by the following `step`, whose
    /// own observation of an unchanged fleet yields identical values).
    /// Deterministic: the folds run in registration order.
    pub fn fleet_request(&mut self) -> AppRequest {
        let quantum = self.quantum;
        let budget = self.budget_watts;
        observe_fleet(&self.monitors, &mut self.observations);
        self.requests.clear();
        self.requests.extend(
            self.apps
                .iter()
                .zip(&self.observations)
                .map(|(app, observation)| request_for(app, observation, quantum, budget)),
        );
        aggregate_requests(&self.requests)
    }

    /// Runs one coordinated quantum at simulation time `now`:
    /// observe the fleet, arbitrate the budget, and let every present app
    /// decide under its envelope. Advances the shared quantum counter.
    ///
    /// The per-application stages shard across the persistent worker pool
    /// ([`Self::workers`] threads, once the fleet reaches
    /// [`Self::shard_threshold`]); the output is bit-identical at every
    /// worker count (see the type-level sharding notes).
    ///
    /// # Errors
    ///
    /// Propagates the decision error of the lowest-indexed failing app
    /// (e.g. [`SeecError::NoGoal`] for an app without a performance goal).
    /// Apps whose decisions had already been applied when the error
    /// surfaced keep them — with more than one worker that may include
    /// apps at higher indices than the failing one.
    pub fn step(&mut self, now: f64) -> Result<StepSummary, SeecError> {
        let quantum = self.quantum;
        self.last_now = now;
        // Telemetry: the clock exists only when a recorder is attached, so
        // the disabled step never touches `Instant::now`.
        let observer = self.observer.clone();
        let mut clock = observer.as_ref().map(|_| StageClock::start());
        let pool = self
            .pool
            .as_ref()
            .filter(|_| self.apps.len() >= self.shard_threshold)
            .cloned();
        let shard = match &pool {
            Some(pool) => Self::shard_size(self.apps.len(), pool.threads()),
            None => self.apps.len().max(1),
        };

        // ---- Wake scheduling: force-wakes + round open --------------
        // Presence transitions landing at this quantum wake their slots
        // before the round's participant list is fixed; then the engine
        // opens the round — drains expired sleep deadlines, merges pending
        // wakes — and hands back the awake list every per-app stage below
        // iterates instead of the fleet.
        let wake_on = self.wake_scheduling_active();
        if wake_on {
            let engine = self
                .incremental
                .as_mut()
                .expect("wake scheduling requires the incremental engine");
            while let Some(entry) = self.wake_calendar.first_entry() {
                if *entry.key() > quantum {
                    break;
                }
                for index in entry.remove() {
                    engine.wake(index as usize);
                }
            }
            let awake = engine
                .begin_round(self.apps.len())
                .expect("wake scheduling implies an enabled engine round");
            self.hot.awake.clear();
            self.hot.awake.extend_from_slice(awake);
        }

        // ---- Observe + build requests (per-app, sharded) ------------
        let budget = self.budget_watts;
        // Event-driven observation skipping (incremental schedule only,
        // positive tolerance): an app that was clean at the last round,
        // has reported nothing since, and whose schedule presence is
        // unchanged already holds a current observation and request — it
        // pays nothing for the quantum. Any report, lifecycle event, or
        // fleet-wide invalidation re-enrolls it.
        self.hot.skip_observe.clear();
        self.hot.observe_list.clear();
        let warm =
            self.observations.len() == self.apps.len() && self.requests.len() == self.apps.len();
        // Wake-scheduled rounds pre-filter the awake list into a compact
        // observe list instead of building a fleet-length skip mask: the
        // walk below then touches only slots that need a fresh snapshot.
        // (Cold buffers — a fleet resize since the last step — fall back
        // to the full refill exactly like the mask path.)
        let wake_observe = wake_on && warm;
        if wake_observe {
            let engine = self
                .incremental
                .as_ref()
                .expect("wake scheduling requires the incremental engine");
            let requests = &self.requests;
            let apps = &self.apps;
            let FleetHot {
                awake,
                observe_list,
                fresh,
                ..
            } = &mut self.hot;
            observe_list.extend(awake.iter().copied().filter(|&index| {
                let index = index as usize;
                let app = &apps[index];
                !(engine.steady(index)
                    && !fresh[index]
                    && app.active_at(quantum) == requests[index].active)
            }));
        } else if let Some(engine) = &self.incremental {
            if engine.tolerance() > 0.0 && warm {
                let fresh = &self.hot.fresh;
                let requests = &self.requests;
                self.hot
                    .skip_observe
                    .extend(self.apps.iter().enumerate().map(|(index, app)| {
                        engine.steady(index)
                            && !fresh[index]
                            && app.active_at(quantum) == requests[index].active
                    }));
            }
        }
        let skipped_observe = self.hot.skip_observe.iter().filter(|&&skip| skip).count();
        let observed_apps = if wake_observe {
            self.hot.observe_list.len()
        } else {
            self.apps.len() - skipped_observe
        };
        if wake_observe {
            if shard >= self.apps.len() {
                // Sequential: walk only the observe list.
                for &index in &self.hot.observe_list {
                    let index = index as usize;
                    let app = &self.apps[index];
                    let observation = app.monitor.observation();
                    self.requests[index] = request_for(app, &observation, quantum, budget);
                    self.observations[index] = observation;
                }
            } else {
                // Pooled: the same contiguous fleet shards as the
                // always-awake path (exclusive `&mut` chunks — boxed
                // actuators make `ManagedApp` `Send` but not `Sync`), each
                // handed the sub-slice of the ascending observe list that
                // falls in its range.
                struct WakeObserveShard<'a> {
                    base: usize,
                    apps: &'a mut [ManagedApp],
                    observations: &'a mut [MonitorObservation],
                    requests: &'a mut [AppRequest],
                    list: &'a [u32],
                }
                let pool = pool.as_ref().expect("a shard smaller than the fleet implies a pool");
                let list = &self.hot.observe_list;
                let mut shards: Vec<WakeObserveShard> = self
                    .apps
                    .chunks_mut(shard)
                    .zip(self.observations.chunks_mut(shard))
                    .zip(self.requests.chunks_mut(shard))
                    .enumerate()
                    .map(|(chunk, ((apps, observations), requests))| {
                        let base = chunk * shard;
                        let end = base + apps.len();
                        let lo = list.partition_point(|&index| (index as usize) < base);
                        let hi = list.partition_point(|&index| (index as usize) < end);
                        WakeObserveShard {
                            base,
                            apps,
                            observations,
                            requests,
                            list: &list[lo..hi],
                        }
                    })
                    .collect();
                pool.for_each_mut(&mut shards, |_, task| {
                    for &index in task.list {
                        let offset = index as usize - task.base;
                        let app = &task.apps[offset];
                        let observation = app.monitor.observation();
                        task.requests[offset] = request_for(app, &observation, quantum, budget);
                        task.observations[offset] = observation;
                    }
                });
            }
        } else if shard >= self.apps.len() || self.observations.len() != self.apps.len() {
            if self.hot.skip_observe.is_empty() {
                // Sequential (single shard), or the buffers are cold because
                // the fleet changed since the last step: refill in one pass.
                observe_fleet(&self.monitors, &mut self.observations);
                self.requests.clear();
                self.requests.extend(
                    self.apps
                        .iter()
                        .zip(&self.observations)
                        .map(|(app, observation)| request_for(app, observation, quantum, budget)),
                );
            } else {
                // Sequential in-place pass honouring the skip mask (the
                // mask is only built over warm buffers).
                for (index, (app, (observation, request))) in self
                    .apps
                    .iter()
                    .zip(self.observations.iter_mut().zip(self.requests.iter_mut()))
                    .enumerate()
                {
                    if self.hot.skip_observe[index] {
                        continue;
                    }
                    *observation = app.monitor.observation();
                    *request = request_for(app, observation, quantum, budget);
                }
            }
        } else {
            // Warm buffers: overwrite them in place, one shard per pool
            // task. Shards are handed out as `&mut` chunks even though this
            // stage only reads the apps: exclusive chunks need
            // `ManagedApp: Send` rather than `Sync`, which boxed actuators
            // do not promise.
            struct ObserveShard<'a> {
                apps: &'a mut [ManagedApp],
                observations: &'a mut [MonitorObservation],
                requests: &'a mut [AppRequest],
                /// Chunk of the skip mask (empty = observe everything).
                skip: &'a [bool],
            }
            let pool = pool.as_ref().expect("a shard smaller than the fleet implies a pool");
            let mask = &self.hot.skip_observe;
            let mut shards: Vec<ObserveShard> = self
                .apps
                .chunks_mut(shard)
                .zip(self.observations.chunks_mut(shard))
                .zip(self.requests.chunks_mut(shard))
                .enumerate()
                .map(|(chunk, ((apps, observations), requests))| {
                    let skip = if mask.is_empty() {
                        &[][..]
                    } else {
                        &mask[chunk * shard..chunk * shard + apps.len()]
                    };
                    ObserveShard {
                        apps,
                        observations,
                        requests,
                        skip,
                    }
                })
                .collect();
            pool.for_each_mut(&mut shards, |_, task| {
                for (offset, ((app, observation), request)) in task
                    .apps
                    .iter()
                    .zip(task.observations.iter_mut())
                    .zip(task.requests.iter_mut())
                    .enumerate()
                {
                    if task.skip.get(offset).copied().unwrap_or(false) {
                        continue;
                    }
                    *observation = app.monitor.observation();
                    *request = request_for(app, observation, quantum, budget);
                }
            });
        }

        if let (Some(observer), Some(clock)) = (&observer, clock.as_mut()) {
            observer.add(Counter::AppsObserved, observed_apps as u64);
            observer.time(Stage::Observe, clock.lap());
        }

        // ---- Watchdog (sequential, registration order) --------------
        // Runs between request building and arbitration so quarantine
        // rewrites are part of the same fold every policy sees. With no
        // watchdog configured this is a no-op branch, keeping the step
        // bit-identical to a pre-watchdog build.
        if let Some(config) = self.watchdog {
            for (index, (app, request)) in
                self.apps.iter_mut().zip(self.requests.iter_mut()).enumerate()
            {
                let before = app.health.state;
                let first_quarantine = app.health.quarantined_at.is_none();
                let reported_work = self.hot.reported_work[index].take();
                let reported_power = self.hot.reported_power[index].take();
                watchdog_app(app, request, reported_work, reported_power, &config, quantum);
                let after = app.health.state;
                if after == before {
                    continue;
                }
                // A ladder move re-enters the app into the arbitration
                // fold: quarantine rewrote its request, readmission
                // restored it.
                if let Some(engine) = self.incremental.as_mut() {
                    engine.mark_dirty(index);
                }
                // Ladder telemetry, raised from this sequential loop only:
                // first-time quarantines match the figure summaries'
                // `quarantined_apps` (an app re-quarantined after
                // readmission counts once), readmissions count every time.
                if let Some(observer) = &observer {
                    if after == HealthState::Quarantined && first_quarantine {
                        observer.count(Counter::Quarantines);
                    }
                    if after == HealthState::Readmitted {
                        observer.count(Counter::Readmissions);
                    }
                    self.pending_events.push(Event {
                        quantum: quantum as u64,
                        kind: EventKind::HealthTransition {
                            app: app.name().to_string(),
                            index: index as u64,
                            from: format!("{before:?}"),
                            to: format!("{after:?}"),
                        },
                    });
                }
            }
        }

        // ---- Arbitrate (sequential deterministic fold) --------------
        // The incremental engine re-arbitrates only the dirty set against
        // the residual budget; at tolerance 0 every app is dirty and the
        // engine makes byte-for-byte the same policy call as the full
        // path below.
        let mut slept = 0;
        if let Some(engine) = self.incremental.as_mut() {
            let outcome = engine.arbitrate(
                self.policy.as_mut(),
                self.budget_watts * self.headroom,
                &self.requests,
                &mut self.awards,
            );
            slept = outcome.slept;
        } else {
            self.policy.arbitrate(
                self.budget_watts * self.headroom,
                &self.requests,
                &mut self.awards,
            );
        }

        if let (Some(observer), Some(clock)) = (&observer, clock.as_mut()) {
            observer.time(Stage::Arbitrate, clock.lap());
            // Sleeping-through-the-round apps are counted once per step
            // from the engine's ledger — not per slot, since no per-app
            // stage ever visits them — so the decide ledger
            // (slept + skipped + rearbitrated + decided) still partitions
            // every active app-quantum exactly once.
            if slept > 0 {
                observer.add(Counter::AppsSlept, slept as u64);
            }
            // Awards changed vs held: bit-for-bit comparison of each
            // present app's fresh award against the envelope it executed
            // the previous quantum under (recorded by the decide stage).
            let mut changed = 0;
            let mut held = 0;
            for (app, &award) in self.apps.iter().zip(&self.awards) {
                if !app.active_at(quantum) {
                    continue;
                }
                if award.to_bits() == app.awarded_watts.to_bits() {
                    held += 1;
                } else {
                    changed += 1;
                }
            }
            observer.add(Counter::AwardsChanged, changed);
            observer.add(Counter::AwardsHeld, held);
        }

        // ---- Decide under the envelopes (per-app, sharded) ----------
        // On the incremental path the engine's dirty mask rides along:
        // clean apps skip the whole decide quantum. Wake-scheduled rounds
        // walk the engine's participant list instead of the fleet —
        // re-read after arbitration so mid-round wakes (watchdog health
        // transitions) are decided too; sleeping slots are never visited,
        // their held award and previous decision stand.
        if wake_on {
            let engine = self
                .incremental
                .as_ref()
                .expect("wake scheduling requires the incremental engine");
            self.hot.awake.clear();
            self.hot.awake.extend_from_slice(engine.awake_slots());
        }
        let dirty_mask: Option<&[bool]> =
            self.incremental.as_ref().map(IncrementalArbiter::dirty_mask);
        if wake_on {
            if shard >= self.apps.len() {
                if let Err((_, err)) = decide_list(
                    &self.hot.awake,
                    0,
                    &mut self.apps,
                    &self.observations,
                    &self.awards,
                    dirty_mask,
                    now,
                    quantum,
                    observer.as_deref(),
                ) {
                    return Err(err);
                }
            } else {
                struct WakeDecideShard<'a> {
                    base: usize,
                    apps: &'a mut [ManagedApp],
                    observations: &'a [MonitorObservation],
                    awards: &'a [f64],
                    dirty: Option<&'a [bool]>,
                    list: &'a [u32],
                    failure: Option<(usize, SeecError)>,
                }
                let pool = pool.as_ref().expect("a shard smaller than the fleet implies a pool");
                let list = &self.hot.awake;
                let mut shards: Vec<WakeDecideShard> = self
                    .apps
                    .chunks_mut(shard)
                    .zip(self.observations.chunks(shard))
                    .zip(self.awards.chunks(shard))
                    .enumerate()
                    .map(|(chunk, ((apps, observations), awards))| {
                        let base = chunk * shard;
                        let end = base + apps.len();
                        let lo = list.partition_point(|&index| (index as usize) < base);
                        let hi = list.partition_point(|&index| (index as usize) < end);
                        let dirty =
                            dirty_mask.map(|mask| &mask[base..base + apps.len()]);
                        WakeDecideShard {
                            base,
                            apps,
                            observations,
                            awards,
                            dirty,
                            list: &list[lo..hi],
                            failure: None,
                        }
                    })
                    .collect();
                let decide_observer = observer.as_deref();
                pool.for_each_mut(&mut shards, |_, task| {
                    task.failure = decide_list(
                        task.list,
                        task.base,
                        task.apps,
                        task.observations,
                        task.awards,
                        task.dirty,
                        now,
                        quantum,
                        decide_observer,
                    )
                    .err();
                });
                // Report the lowest-indexed failure, matching the
                // sequential walk's choice (decide_list failures carry
                // global indices already).
                if let Some((_, err)) = shards
                    .into_iter()
                    .filter_map(|task| task.failure)
                    .min_by_key(|(index, _)| *index)
                {
                    return Err(err);
                }
            }
        } else if shard >= self.apps.len() {
            if let Err((_, err)) = decide_chunk(
                &mut self.apps,
                &self.observations,
                &self.awards,
                dirty_mask,
                now,
                quantum,
                observer.as_deref(),
            ) {
                return Err(err);
            }
        } else {
            struct DecideShard<'a> {
                apps: &'a mut [ManagedApp],
                observations: &'a [MonitorObservation],
                awards: &'a [f64],
                dirty: Option<&'a [bool]>,
                failure: Option<(usize, SeecError)>,
            }
            let pool = pool.as_ref().expect("a shard smaller than the fleet implies a pool");
            let mut shards: Vec<DecideShard> = self
                .apps
                .chunks_mut(shard)
                .zip(self.observations.chunks(shard))
                .zip(self.awards.chunks(shard))
                .enumerate()
                .map(|(chunk, ((apps, observations), awards))| {
                    let dirty = dirty_mask
                        .map(|mask| &mask[chunk * shard..chunk * shard + apps.len()]);
                    DecideShard {
                        apps,
                        observations,
                        awards,
                        dirty,
                        failure: None,
                    }
                })
                .collect();
            let decide_observer = observer.as_deref();
            pool.for_each_mut(&mut shards, |index, task| {
                task.failure = decide_chunk(
                    task.apps,
                    task.observations,
                    task.awards,
                    task.dirty,
                    now,
                    quantum,
                    decide_observer,
                )
                .err()
                .map(|(offset, err)| (index * shard + offset, err));
            });
            // Report the lowest-indexed failure, matching the sequential
            // path's choice when several apps would have failed.
            if let Some((_, err)) = shards
                .into_iter()
                .filter_map(|task| task.failure)
                .min_by_key(|(index, _)| *index)
            {
                return Err(err);
            }
        }

        // ---- Summarise (sequential, fixed order) --------------------
        // The awarded-watts total is folded in registration order whatever
        // the worker count, so the summary is part of the bit-identity
        // guarantee rather than an exception to it.
        let mut active_apps = 0;
        let mut awarded_total = 0.0;
        if let (Some(observer), Some(clock)) = (&observer, clock.as_mut()) {
            observer.time(Stage::Decide, clock.lap());
        }
        for (app, &award) in self.apps.iter().zip(&self.awards) {
            if app.active_at(quantum) {
                active_apps += 1;
                awarded_total += award;
            }
        }

        // The report-freshness flags describe "since the last step"; this
        // step consumed them (they only gate observation skipping, so the
        // full path never reads them). Wake-scheduled rounds clear only
        // the participants' flags: a report delivered to a *sleeping*
        // slot stays pending, so the wake quantum re-enrolls it into
        // observation.
        if wake_on {
            let FleetHot { awake, fresh, .. } = &mut self.hot;
            for &index in awake.iter() {
                fresh[index as usize] = false;
            }
        } else if self.incremental.is_some() {
            self.hot.fresh.iter_mut().for_each(|fresh| *fresh = false);
        }

        self.quantum += 1;
        if let (Some(observer), Some(clock)) = (&observer, clock.as_mut()) {
            observer.time(Stage::Summarise, clock.lap());
            observer.time(Stage::Step, clock.total());
            observer.count(Counter::QuantaStepped);
            observer.observe_fleet_size(active_apps as u64);
            if !self.defer_events {
                self.flush_events();
            }
        }
        Ok(StepSummary {
            quantum,
            active_apps,
            awarded_watts_total: awarded_total,
        })
    }

    /// Advances the shared quantum counter without deciding — used by the
    /// datacenter arbiter to keep a rack whose step failed in lockstep
    /// with the racks that succeeded (the failing rack simply takes no new
    /// decisions for that quantum).
    pub(crate) fn skip_quantum(&mut self) {
        self.quantum += 1;
    }

    /// Contiguous chunk length that spreads `apps` across `workers` shards
    /// (the whole fleet when a single worker suffices). Never zero.
    fn shard_size(apps: usize, workers: usize) -> usize {
        if workers <= 1 || apps <= 1 {
            apps.max(1)
        } else {
            apps.div_ceil(workers.min(apps))
        }
    }

    /// Feeds one quantum's outcome back to an application: the platform
    /// completed `work_units` of its work over `[start, end]` while the app
    /// drew `power_above_idle_watts`. Beats are stamped at interpolated
    /// times with one power sample each
    /// ([`HeartbeatedWorkload::advance_metered`]), so the runtime's window
    /// rates are unbiased and its power horizon matches the beat window.
    pub fn advance(
        &mut self,
        handle: AppHandle,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) {
        let app = &mut self.apps[handle.0];
        // Remember the raw report for the watchdog: the driver clamps NaN
        // work to 0 and the power estimator rejects non-finite samples, so
        // the *sanitised* path never sees what the app actually claimed.
        self.hot.reported_work[handle.0] = Some(work_units);
        self.hot.reported_power[handle.0] = Some(power_above_idle_watts);
        self.hot.fresh[handle.0] = true;
        app.driver
            .advance_metered(start, end, work_units, power_above_idle_watts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PerformanceMarket, StaticShare, WeightedFair};
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    use seec::ExplorationPolicy;
    use workloads::{SplashBenchmark, Workload};

    /// A small action space whose declared effects the synthetic platform
    /// mirrors exactly: DVFS x cores, speedups 0.5..6x, powers 0.4..5.2x.
    fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 2.0)
                    .effect(Axis::Power, 2.6),
            )
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.9)
                    .effect(Axis::Power, 2.0),
            )
            .build()
            .unwrap();
        vec![
            Box::new(TableActuator::new(dvfs)),
            Box::new(TableActuator::new(cores)),
        ]
    }

    fn managed_app(benchmark: SplashBenchmark, seed: u64, target: f64) -> ManagedApp {
        let driver = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
        driver.set_heart_rate_goal(target);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .exploration(ExplorationPolicy {
                epsilon: 0.0,
                ..ExplorationPolicy::default()
            })
            .seed(seed)
            .build()
            .unwrap();
        ManagedApp::new(driver, runtime).with_nominal_power_hint(10.0)
    }

    /// Drives `coordinator` for `ticks` quanta against a platform whose
    /// true behaviour mirrors each app's declared effects exactly (nominal
    /// rate 10 beats/s, nominal power 10 W), returning the machine power of
    /// the final tick.
    fn drive(coordinator: &mut Coordinator, handles: &[AppHandle], ticks: usize) -> Vec<f64> {
        let mut now = 0.0;
        let mut final_powers = Vec::new();
        for _ in 0..ticks {
            now += 1.0;
            final_powers.clear();
            for &handle in handles {
                if !coordinator.app(handle).active_at(coordinator.quantum()) {
                    final_powers.push(0.0);
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                let rate = 10.0 * effect.performance;
                let power = 10.0 * effect.power;
                coordinator.advance(handle, now - 1.0, now, rate, power);
                final_powers.push(power);
            }
            coordinator.step(now).unwrap();
        }
        final_powers
    }

    /// [`drive`] with a caller-held clock, so a test can interleave driving
    /// with lifecycle calls without resetting simulated time (heartbeat
    /// timestamps must stay monotonic across the whole run).
    fn drive_from(
        coordinator: &mut Coordinator,
        handles: &[AppHandle],
        ticks: usize,
        now: &mut f64,
    ) {
        for _ in 0..ticks {
            *now += 1.0;
            for &handle in handles {
                if !coordinator.app(handle).active_at(coordinator.quantum()) {
                    continue;
                }
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                coordinator.advance(
                    handle,
                    *now - 1.0,
                    *now,
                    10.0 * effect.performance,
                    10.0 * effect.power,
                );
            }
            coordinator.step(*now).unwrap();
        }
    }

    #[test]
    fn registration_and_accessors() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        assert!(coordinator.is_empty());
        let handle = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0));
        assert_eq!(coordinator.len(), 1);
        assert_eq!(handle.index(), 0);
        assert_eq!(coordinator.app(handle).name(), "barnes");
        assert_eq!(coordinator.app(handle).weight(), 1.0);
        assert_eq!(coordinator.policy_name(), "static-share");
        coordinator.set_policy(Box::new(WeightedFair));
        assert_eq!(coordinator.policy_name(), "weighted-fair");
        assert!(format!("{coordinator:?}").contains("Coordinator"));
        assert!(format!("{:?}", coordinator.app(handle)).contains("barnes"));
    }

    #[test]
    fn admission_feasibility_refuses_a_launch_storm_past_the_cap() {
        // Each test app hints 10 W of launch power; under a 25 W budget the
        // headroomed cap is 23.75 W, so two landers fit and the third's
        // 30 W committed landing transient is refused.
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(25.0, Box::new(StaticShare))
            .with_admission_feasibility(true)
            .with_obs(Arc::clone(&recorder));
        assert!(coordinator.admission_feasibility());
        coordinator
            .try_register(managed_app(SplashBenchmark::Barnes, 1, 20.0))
            .unwrap();
        coordinator
            .try_register(managed_app(SplashBenchmark::Volrend, 2, 20.0))
            .unwrap();
        let error = coordinator
            .try_register(managed_app(SplashBenchmark::Raytrace, 3, 20.0))
            .unwrap_err();
        assert_eq!(coordinator.len(), 2, "the refused app is dropped");
        assert_eq!(error.floor_watts, 10.0);
        assert!((error.headroom_watts - 3.75).abs() < 1e-9);
        assert!(error.to_string().contains("admission rejected"));
        let events = recorder.snapshot().events;
        assert!(
            events.iter().any(|event| matches!(
                &event.kind,
                EventKind::AdmissionRejected { app, floor_watts, .. }
                    if app == &error.app && *floor_watts == 10.0
            )),
            "a rejection event reaches the stream: {events:?}"
        );
    }

    #[test]
    fn decided_residents_commit_their_squeezed_floor_not_launch_power() {
        let mut coordinator =
            Coordinator::new(25.0, Box::new(WeightedFair)).with_admission_feasibility(true);
        let first = coordinator
            .try_register(managed_app(SplashBenchmark::Barnes, 1, 20.0))
            .unwrap();
        let second = coordinator
            .try_register(managed_app(SplashBenchmark::Volrend, 2, 20.0))
            .unwrap();
        // Both residents still face their landing quantum, so they commit
        // 20 W of launch transient and the third lander is refused.
        assert!(coordinator
            .try_register(managed_app(SplashBenchmark::Raytrace, 3, 20.0))
            .is_err());
        // One decided quantum later the platform can squeeze them to their
        // cheapest floors (10 W × 0.4 each): 8 + 10 W now fits the cap.
        drive(&mut coordinator, &[first, second], 1);
        assert!(coordinator
            .try_register(managed_app(SplashBenchmark::Raytrace, 3, 20.0))
            .is_ok());
    }

    #[test]
    fn feasibility_disabled_or_unknown_floors_always_admit() {
        // Disabled pre-check: the same storm sails through try_register.
        let mut unchecked = Coordinator::new(25.0, Box::new(StaticShare));
        for (benchmark, seed) in [
            (SplashBenchmark::Barnes, 1),
            (SplashBenchmark::Volrend, 2),
            (SplashBenchmark::Raytrace, 3),
        ] {
            unchecked.try_register(managed_app(benchmark, seed, 20.0)).unwrap();
        }
        assert_eq!(unchecked.len(), 3);
        // Enabled, but a registrant whose nominal power is unknown has a
        // 0 W floor and always fits, however full the machine.
        let mut checked =
            Coordinator::new(25.0, Box::new(StaticShare)).with_admission_feasibility(true);
        checked
            .try_register(managed_app(SplashBenchmark::Barnes, 1, 20.0))
            .unwrap();
        checked
            .try_register(managed_app(SplashBenchmark::Volrend, 2, 20.0))
            .unwrap();
        checked
            .try_register(
                managed_app(SplashBenchmark::Raytrace, 3, 20.0).with_nominal_power_hint(0.0),
            )
            .unwrap();
        assert_eq!(checked.len(), 3);
    }

    #[test]
    fn step_keeps_believed_power_inside_the_budget() {
        // Three greedy apps (targets far beyond reach) on a 30 W budget:
        // flat out they would draw 3 x 52 W. After warm-up, the believed
        // power of every applied configuration must fit the awards, which
        // conserve the (headroomed) budget.
        let mut coordinator = Coordinator::new(30.0, Box::new(WeightedFair));
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator
                    .register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0))
            })
            .collect();
        drive(&mut coordinator, &handles, 30);
        let awards_total: f64 = coordinator.awards().iter().sum();
        assert!(
            awards_total <= 30.0 * 0.95 + 1e-9,
            "awards {awards_total} must conserve the headroomed budget"
        );
        for &handle in &handles {
            let app = coordinator.app(handle);
            let decision = app.last_decision().unwrap();
            let believed_watts = decision.believed_powerup * app.nominal_power_watts();
            assert!(
                believed_watts <= app.awarded_watts() * 1.05 + 1e-9,
                "app {} believed draw {believed_watts} vs award {}",
                app.name(),
                app.awarded_watts()
            );
        }
    }

    #[test]
    fn arrivals_and_departures_follow_the_shared_schedule() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        let resident = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 15.0));
        let visitor = coordinator.register(
            managed_app(SplashBenchmark::Volrend, 2, 15.0)
                .with_arrival(5)
                .with_departure(10),
        );
        let mut now = 0.0;
        for tick in 0..15 {
            now += 1.0;
            let summary = coordinator.step(now).unwrap();
            assert_eq!(summary.quantum, tick);
            let expected = if (5..10).contains(&tick) { 2 } else { 1 };
            assert_eq!(summary.active_apps, expected, "tick {tick}");
            if !(5..10).contains(&tick) {
                assert_eq!(coordinator.app(visitor).awarded_watts(), 0.0);
            }
        }
        assert!(coordinator.app(resident).active_at(14));
        assert_eq!(coordinator.quantum(), 15);
    }

    #[test]
    fn higher_priority_gets_the_bigger_envelope() {
        let mut coordinator = Coordinator::new(40.0, Box::new(PerformanceMarket::default()));
        let light = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let heavy = coordinator.register(
            managed_app(SplashBenchmark::Raytrace, 2, 1000.0).with_weight(4.0),
        );
        let handles = [light, heavy];
        drive(&mut coordinator, &handles, 20);
        assert!(
            coordinator.app(heavy).awarded_watts() > coordinator.app(light).awarded_watts(),
            "heavy {} vs light {}",
            coordinator.app(heavy).awarded_watts(),
            coordinator.app(light).awarded_watts()
        );
    }

    #[test]
    fn demand_phases_cycle_from_arrival() {
        let workload = Workload::new(SplashBenchmark::Barnes, 3);
        let phases = workload.quanta(4);
        let app = managed_app(SplashBenchmark::Barnes, 3, 10.0)
            .with_phases(phases.clone())
            .with_arrival(2);
        assert!(app.demand_at(1).is_none());
        assert_eq!(app.demand_at(2).unwrap(), &phases[0]);
        assert_eq!(app.demand_at(5).unwrap(), &phases[3]);
        assert_eq!(app.demand_at(6).unwrap(), &phases[0]);
        let phaseless = managed_app(SplashBenchmark::Barnes, 3, 10.0);
        assert!(phaseless.demand_at(0).is_none());
    }

    #[test]
    fn sharded_step_is_bit_identical_to_sequential() {
        // The same five-app fleet driven under 1, 2, 3, and 7 workers must
        // produce byte-for-byte the same awards, decisions, and summaries
        // every tick (the full property version lives in
        // tests/lifecycle_props.rs).
        let run = |workers: usize| {
            let mut coordinator = Coordinator::new(40.0, Box::new(WeightedFair))
                .with_workers(workers)
                .with_shard_threshold(0);
            let handles: Vec<AppHandle> = (0..5)
                .map(|i| {
                    coordinator.register(
                        managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0)
                            .with_weight(1.0 + i as f64),
                    )
                })
                .collect();
            let mut now = 0.0;
            let mut trace = Vec::new();
            for _ in 0..20 {
                now += 1.0;
                for &handle in &handles {
                    let effect = {
                        let runtime = coordinator.app(handle).runtime();
                        runtime
                            .model()
                            .space()
                            .predicted_effect(runtime.current_configuration())
                            .unwrap()
                    };
                    coordinator.advance(
                        handle,
                        now - 1.0,
                        now,
                        10.0 * effect.performance,
                        10.0 * effect.power,
                    );
                }
                let summary = coordinator.step(now).unwrap();
                trace.push((
                    summary,
                    coordinator.awards().to_vec(),
                    handles
                        .iter()
                        .map(|&h| coordinator.app(h).last_decision())
                        .collect::<Vec<_>>(),
                ));
            }
            trace
        };
        let sequential = run(1);
        for workers in [2, 3, 7] {
            assert_eq!(sequential, run(workers), "workers = {workers}");
        }
    }

    #[test]
    fn retire_makes_an_app_absent_from_the_next_step() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        let resident = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 15.0));
        let doomed = coordinator.register(managed_app(SplashBenchmark::Volrend, 2, 15.0));
        for tick in 0..3 {
            let summary = coordinator.step(tick as f64 + 1.0).unwrap();
            assert_eq!(summary.active_apps, 2);
        }
        coordinator.retire(doomed);
        let summary = coordinator.step(4.0).unwrap();
        assert_eq!(summary.active_apps, 1);
        assert_eq!(coordinator.app(doomed).awarded_watts(), 0.0);
        assert!(coordinator.app(resident).active_at(coordinator.quantum()));
        // Idempotent, and an earlier scheduled departure is kept.
        coordinator.retire(doomed);
        assert!(!coordinator.app(doomed).active_at(coordinator.quantum()));
        let late = coordinator.register(
            managed_app(SplashBenchmark::Raytrace, 3, 15.0).with_departure(2),
        );
        coordinator.retire(late);
        assert!(!coordinator.app(late).active_at(3));
    }

    #[test]
    fn mid_run_registration_joins_arbitration_immediately() {
        let mut coordinator = Coordinator::new(60.0, Box::new(WeightedFair))
            .with_workers(2)
            .with_shard_threshold(0);
        let first = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let mut now = 0.0;
        for _ in 0..5 {
            now += 1.0;
            coordinator.step(now).unwrap();
        }
        let second = coordinator.register(managed_app(SplashBenchmark::OceanNonContiguous, 2, 1000.0));
        now += 1.0;
        let summary = coordinator.step(now).unwrap();
        assert_eq!(summary.active_apps, 2);
        assert!(coordinator.app(second).awarded_watts() > 0.0);
        assert!(coordinator.app(first).awarded_watts() > 0.0);
        assert_eq!(coordinator.len(), 2);
    }

    #[test]
    fn set_budget_steps_the_envelope_pool() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        coordinator.register(managed_app(SplashBenchmark::Volrend, 2, 1000.0));
        coordinator.step(1.0).unwrap();
        assert_eq!(coordinator.budget_watts(), 100.0);
        coordinator.set_budget(10.0);
        assert_eq!(coordinator.budget_watts(), 10.0);
        let summary = coordinator.step(2.0).unwrap();
        assert!(
            summary.awarded_watts_total <= 10.0 * 0.95 + 1e-9,
            "stepped budget must bind the very next quantum, awarded {}",
            summary.awarded_watts_total
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_step_panics() {
        let mut coordinator = Coordinator::new(10.0, Box::new(StaticShare));
        coordinator.set_budget(0.0);
    }

    #[test]
    fn worker_counts_are_clamped_and_reported() {
        let mut coordinator = Coordinator::new(10.0, Box::new(StaticShare)).with_workers(0);
        assert_eq!(coordinator.workers(), 1);
        coordinator.set_workers(8);
        assert_eq!(coordinator.workers(), 8);
        coordinator.set_shard_threshold(0);
        assert_eq!(coordinator.shard_threshold(), 0);
        // Empty fleets and fleets smaller than the worker count still step.
        coordinator.step(1.0).unwrap();
        coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 10.0));
        coordinator.step(2.0).unwrap();
        assert_eq!(coordinator.quantum(), 2);
        // An externally shared pool is adopted as-is.
        let pool = std::sync::Arc::new(exec::ExecPool::new(3));
        let shared = Coordinator::new(10.0, Box::new(StaticShare)).with_pool(pool);
        assert_eq!(shared.workers(), 3);
        assert_eq!(shared.shard_threshold(), Coordinator::DEFAULT_SHARD_THRESHOLD);
    }

    #[test]
    fn fleet_request_aggregates_present_apps() {
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare));
        // Empty fleet: inactive aggregate with neutral weight/urgency.
        let idle = coordinator.fleet_request();
        assert!(!idle.active);
        assert_eq!(idle.weight, 1.0);
        assert_eq!(idle.urgency, 1.0);
        assert_eq!(idle.max_power_watts, 0.0);

        coordinator
            .register(managed_app(SplashBenchmark::Barnes, 1, 15.0).with_weight(2.0));
        coordinator.register(
            managed_app(SplashBenchmark::Volrend, 2, 15.0)
                .with_weight(3.0)
                .with_arrival(10), // absent at quantum 0: excluded from the fold
        );
        let request = coordinator.fleet_request();
        assert!(request.active);
        assert_eq!(request.weight, 2.0);
        // Present app's ceiling: 10 W nominal hint x the space's most
        // expensive declared powerup (2.6 x 2.0).
        assert!((request.max_power_watts - 10.0 * 5.2).abs() < 1e-9);
        assert!(request.urgency >= 1.0);
        // A fleet_request followed by a step must not perturb the step.
        coordinator.step(1.0).unwrap();
        assert_eq!(coordinator.quantum(), 1);
    }

    #[test]
    fn managed_app_shards_across_threads() {
        fn assert_send<T: Send>() {}
        assert_send::<ManagedApp>();
    }

    /// Advances `handle` one quantum with the platform mirroring its
    /// declared effects (nominal 10 beats/s, 10 W), like `drive` does.
    fn advance_honestly(coordinator: &mut Coordinator, handle: AppHandle, now: f64) {
        let effect = {
            let runtime = coordinator.app(handle).runtime();
            runtime
                .model()
                .space()
                .predicted_effect(runtime.current_configuration())
                .unwrap()
        };
        coordinator.advance(
            handle,
            now - 1.0,
            now,
            10.0 * effect.performance,
            10.0 * effect.power,
        );
    }

    #[test]
    fn watchdog_quarantines_a_stalled_app_and_readmits_on_recovery() {
        let config = WatchdogConfig::default();
        let mut coordinator =
            Coordinator::new(30.0, Box::new(WeightedFair)).with_watchdog(config);
        assert_eq!(coordinator.watchdog(), Some(config));
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator
                    .register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0))
            })
            .collect();
        let mut now = 0.0;
        for _ in 0..8 {
            now += 1.0;
            for &handle in &handles {
                advance_honestly(&mut coordinator, handle, now);
            }
            coordinator.step(now).unwrap();
        }
        for &handle in &handles {
            assert_eq!(coordinator.app(handle).health_state(), HealthState::Healthy);
        }

        // App 2's heartbeat pipe wedges: no reports for ten quanta.
        let stall_start = coordinator.quantum();
        for _ in 0..10 {
            now += 1.0;
            for &handle in &handles[..2] {
                advance_honestly(&mut coordinator, handle, now);
            }
            coordinator.step(now).unwrap();
        }
        let stalled = coordinator.app(handles[2]);
        assert_eq!(stalled.health_state(), HealthState::Quarantined);
        let quarantined_at = stalled.quarantined_at().unwrap();
        assert!(
            (stall_start..stall_start + config.stale_beat_quanta + 1)
                .contains(&quarantined_at),
            "quarantined at {quarantined_at}, stall began at {stall_start}"
        );
        assert!(
            stalled.awarded_watts() <= config.quarantine_floor_watts + 1e-9,
            "quarantine pins the floor envelope, got {}",
            stalled.awarded_watts()
        );
        // The reclaimed watts flow to the healthy apps via the normal fold.
        for &handle in &handles[..2] {
            assert!(
                coordinator.app(handle).awarded_watts() > config.quarantine_floor_watts,
                "healthy apps absorb the reclaimed budget"
            );
        }

        // The pipe recovers; after readmit_quanta clean quanta the app is
        // readmitted (cheapest-config draw 4 W fits under the floor seat).
        for _ in 0..(config.readmit_quanta + 2) {
            now += 1.0;
            for &handle in &handles {
                advance_honestly(&mut coordinator, handle, now);
            }
            coordinator.step(now).unwrap();
        }
        let recovered = coordinator.app(handles[2]);
        assert_eq!(recovered.health_state(), HealthState::Readmitted);
        assert!(recovered.readmitted_at().is_some());
    }

    #[test]
    fn watchdog_quarantines_non_finite_telemetry_immediately() {
        let mut coordinator = Coordinator::new(30.0, Box::new(WeightedFair))
            .with_watchdog(WatchdogConfig::default());
        let honest = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let liar = coordinator.register(managed_app(SplashBenchmark::Volrend, 2, 1000.0));
        coordinator.step(1.0).unwrap();
        advance_honestly(&mut coordinator, honest, 2.0);
        coordinator.advance(liar, 1.0, 2.0, 10.0, f64::NAN);
        coordinator.step(2.0).unwrap();
        assert_eq!(
            coordinator.app(liar).health_state(),
            HealthState::Quarantined,
            "one NaN report is enough"
        );
        assert_eq!(coordinator.app(liar).quarantined_at(), Some(1));
        assert_eq!(coordinator.app(honest).health_state(), HealthState::Healthy);
    }

    #[test]
    fn watchdog_quarantines_persistent_overdraw() {
        let config = WatchdogConfig::default();
        let mut coordinator =
            Coordinator::new(30.0, Box::new(WeightedFair)).with_watchdog(config);
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator
                    .register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0))
            })
            .collect();
        let mut now = 0.0;
        // Long enough that the overdraw strikes land after the warmup
        // window (strikes only count once the model has had its grace).
        for tick in 0..16 {
            now += 1.0;
            for (slot, &handle) in handles.iter().enumerate() {
                if slot == 0 && tick >= 2 {
                    // A rogue reporting 3x the whole budget, every quantum.
                    coordinator.advance(handle, now - 1.0, now, 10.0, 90.0);
                } else {
                    advance_honestly(&mut coordinator, handle, now);
                }
            }
            coordinator.step(now).unwrap();
        }
        assert_eq!(
            coordinator.app(handles[0]).health_state(),
            HealthState::Quarantined,
            "persistent overdraw must quarantine"
        );
        for &handle in &handles[1..] {
            let state = coordinator.app(handle).health_state();
            assert!(
                state == HealthState::Healthy || state == HealthState::Suspect,
                "honest apps stay off the quarantine rung, got {state:?}"
            );
        }
    }

    #[test]
    fn watchdog_on_a_healthy_fleet_changes_nothing() {
        // With every app honest, the enabled ladder must not perturb a
        // single award or decision relative to the watchdog-free run.
        let run = |watchdog: Option<WatchdogConfig>| {
            let mut coordinator = Coordinator::new(30.0, Box::new(WeightedFair));
            coordinator.set_watchdog(watchdog);
            let handles: Vec<AppHandle> = (0..3)
                .map(|i| {
                    coordinator.register(managed_app(
                        SplashBenchmark::ALL[i],
                        i as u64 + 1,
                        1000.0,
                    ))
                })
                .collect();
            let mut now = 0.0;
            let mut trace = Vec::new();
            for _ in 0..20 {
                now += 1.0;
                for &handle in &handles {
                    advance_honestly(&mut coordinator, handle, now);
                }
                let summary = coordinator.step(now).unwrap();
                trace.push((summary, coordinator.awards().to_vec()));
            }
            trace
        };
        assert_eq!(run(None), run(Some(WatchdogConfig::default())));
    }

    #[test]
    fn admission_control_lands_midrun_arrivals_in_the_cheapest_configuration() {
        let current_power = |coordinator: &Coordinator, handle: AppHandle| {
            let runtime = coordinator.app(handle).runtime();
            runtime
                .model()
                .space()
                .predicted_effect(runtime.current_configuration())
                .unwrap()
                .power
        };

        let mut coordinator =
            Coordinator::new(60.0, Box::new(WeightedFair)).with_admission_control(true);
        assert!(coordinator.admission_control());
        // A registration before the first step is untouched (bit-identity
        // with the admission-free run for whole-fleet-at-start scenarios).
        let early = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        assert_eq!(current_power(&coordinator, early), 1.0, "launch config kept");

        let mut now = 0.0;
        for _ in 0..5 {
            now += 1.0;
            advance_honestly(&mut coordinator, early, now);
            coordinator.step(now).unwrap();
        }
        // The mid-run arrival is decided under a zero cap at registration:
        // its landing quantum executes in the cheapest configuration.
        let late =
            coordinator.register(managed_app(SplashBenchmark::OceanNonContiguous, 2, 1000.0));
        assert!(
            current_power(&coordinator, late) < 1.0,
            "admission must drop the newcomer below its launch power, got {}",
            current_power(&coordinator, late)
        );

        // Control: without admission, the newcomer lands in launch config.
        let mut naive = Coordinator::new(60.0, Box::new(WeightedFair));
        let first = naive.register(managed_app(SplashBenchmark::Barnes, 1, 1000.0));
        let mut now = 0.0;
        for _ in 0..5 {
            now += 1.0;
            advance_honestly(&mut naive, first, now);
            naive.step(now).unwrap();
        }
        let late = naive.register(managed_app(SplashBenchmark::OceanNonContiguous, 2, 1000.0));
        assert_eq!(current_power(&naive, late), 1.0);
    }

    #[test]
    fn app_without_goal_propagates_the_error() {
        let driver = HeartbeatedWorkload::new(Workload::new(SplashBenchmark::Barnes, 1));
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .build()
            .unwrap();
        let mut coordinator = Coordinator::new(50.0, Box::new(StaticShare));
        coordinator.register(ManagedApp::new(driver, runtime));
        assert!(matches!(coordinator.step(1.0), Err(SeecError::NoGoal)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_panics() {
        let _ = Coordinator::new(0.0, Box::new(StaticShare));
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn out_of_range_headroom_panics() {
        let _ = Coordinator::new(10.0, Box::new(StaticShare)).with_headroom(1.5);
    }

    /// Runs a 3-app fleet for 20 quanta at `workers` threads, optionally
    /// instrumented, and returns every step summary plus the final awards.
    fn drive_summaries(
        recorder: Option<Arc<Recorder>>,
        workers: usize,
    ) -> (Vec<StepSummary>, Vec<f64>) {
        let mut coordinator = Coordinator::new(30.0, Box::new(WeightedFair))
            .with_workers(workers)
            .with_shard_threshold(0)
            .with_watchdog(WatchdogConfig::default());
        coordinator.set_obs(recorder);
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator
                    .register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 1000.0))
            })
            .collect();
        let mut summaries = Vec::new();
        let mut now = 0.0;
        for _ in 0..20 {
            now += 1.0;
            for &handle in &handles {
                let effect = {
                    let runtime = coordinator.app(handle).runtime();
                    runtime
                        .model()
                        .space()
                        .predicted_effect(runtime.current_configuration())
                        .unwrap()
                };
                coordinator.advance(handle, now - 1.0, now, 10.0 * effect.performance, 10.0 * effect.power);
            }
            summaries.push(coordinator.step(now).unwrap());
        }
        (summaries, coordinator.awards().to_vec())
    }

    #[test]
    fn telemetry_is_passive_at_every_worker_count() {
        // Attaching a recorder — sequential or sharded — must not move a
        // single bit of any summary or award.
        let (baseline, baseline_awards) = drive_summaries(None, 1);
        for workers in [1usize, 3] {
            let recorder = Arc::new(Recorder::in_memory());
            let (observed, awards) = drive_summaries(Some(Arc::clone(&recorder)), workers);
            assert_eq!(observed, baseline, "summaries drifted at {workers} workers");
            assert_eq!(awards, baseline_awards, "awards drifted at {workers} workers");

            // And the deterministic plane reconciles with the run.
            let snapshot = recorder.snapshot();
            assert_eq!(snapshot.counter(Counter::QuantaStepped), 20);
            assert_eq!(snapshot.counter(Counter::AppsObserved), 60);
            assert_eq!(snapshot.counter(Counter::Registrations), 3);
            let decided: usize = baseline.iter().map(|s| s.active_apps).sum();
            assert_eq!(snapshot.counter(Counter::AppsDecided), decided as u64);
            assert_eq!(
                snapshot.stage(Stage::Decision).count,
                snapshot.counter(Counter::AppsDecided),
                "one decision timing per decided app"
            );
            assert_eq!(snapshot.stage(Stage::Step).count, 20);
            assert_eq!(
                snapshot.counter(Counter::AwardsChanged)
                    + snapshot.counter(Counter::AwardsHeld),
                decided as u64,
                "every present app's award is either changed or held"
            );
            assert_eq!(snapshot.peak_fleet_size, 3);
        }
    }

    #[test]
    fn lifecycle_events_stream_in_call_order() {
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(100.0, Box::new(StaticShare))
            .with_obs(Arc::clone(&recorder));
        let handle = coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0));
        coordinator.set_budget(80.0);
        coordinator.step(1.0).unwrap();
        coordinator.retire(handle);
        let events = recorder.snapshot().events;
        assert_eq!(events.len(), 3);
        assert!(matches!(&events[0].kind, EventKind::Register { app } if app == "barnes"));
        assert!(
            matches!(&events[1].kind, EventKind::BudgetChange { watts } if *watts == 80.0)
        );
        assert!(matches!(&events[2].kind, EventKind::Retire { app } if app == "barnes"));
        assert_eq!(events[0].quantum, 0, "registered before the first step");
        assert_eq!(events[2].quantum, 1, "retired after it");
        assert_eq!(recorder.counter(Counter::BudgetChanges), 1);
        assert_eq!(recorder.counter(Counter::Retirements), 1);
    }

    #[test]
    fn watchdog_transitions_raise_events_and_count_once() {
        // A silent app walks Healthy → Suspect → Quarantined; the counter
        // counts the quarantine once while events record each transition.
        let config = WatchdogConfig {
            warmup_quanta: 0,
            stale_beat_quanta: 3,
            ..WatchdogConfig::default()
        };
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(50.0, Box::new(StaticShare))
            .with_watchdog(config)
            .with_obs(Arc::clone(&recorder));
        coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0));
        let mut now = 0.0;
        for _ in 0..8 {
            now += 1.0;
            // No advance: the app never beats, so it goes stale.
            coordinator.step(now).unwrap();
        }
        assert_eq!(recorder.counter(Counter::Quarantines), 1);
        let transitions: Vec<(String, String)> = recorder
            .snapshot()
            .events
            .iter()
            .filter_map(|event| match &event.kind {
                EventKind::HealthTransition { from, to, .. } => {
                    Some((from.clone(), to.clone()))
                }
                _ => None,
            })
            .collect();
        assert!(
            transitions.contains(&("Suspect".to_string(), "Quarantined".to_string())),
            "expected a Suspect→Quarantined transition, got {transitions:?}"
        );
    }

    #[test]
    fn wake_scheduling_sleeps_steady_apps_and_the_ledger_partitions() {
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(60.0, Box::new(WeightedFair))
            .with_arbitration_tolerance(0.05)
            .with_wake_schedule(WakeConfig {
                steady_quanta: 2,
                horizon: 8,
            })
            .with_obs(Arc::clone(&recorder));
        let handles: Vec<AppHandle> = [
            (SplashBenchmark::Barnes, 1),
            (SplashBenchmark::OceanNonContiguous, 2),
            (SplashBenchmark::Raytrace, 3),
        ]
        .into_iter()
        .map(|(benchmark, seed)| {
            coordinator.register(managed_app(benchmark, seed, 20.0))
        })
        .collect();
        let quanta = 16;
        drive(&mut coordinator, &handles, quanta);

        let slept = recorder.counter(Counter::AppsSlept);
        let skipped = recorder.counter(Counter::AppsSkipped);
        let rearbitrated = recorder.counter(Counter::AppsRearbitrated);
        let decided = recorder.counter(Counter::AppsDecided);
        assert!(slept > 0, "steady apps never slept");
        assert_eq!(
            slept + skipped + rearbitrated + decided,
            (quanta * handles.len()) as u64,
            "the four-way ledger must partition every active app-quantum"
        );
        // Sleeping slots are not observed either: the observe counter
        // undershoots the fleet-quanta product by at least the slept share.
        assert!(
            recorder.counter(Counter::AppsObserved) + slept
                <= (quanta * handles.len()) as u64,
            "sleeping apps must not be observed"
        );
        let total: f64 = coordinator.awards().iter().sum();
        assert!(total <= 60.0 * 0.95 + 1e-9, "budget overrun: {total}");
    }

    #[test]
    fn horizon_zero_wake_schedule_is_bit_identical_to_the_plain_incremental_path() {
        let build = |wake: Option<WakeConfig>| {
            let mut coordinator = Coordinator::new(55.0, Box::new(PerformanceMarket::default()))
                .with_arbitration_tolerance(0.05);
            if let Some(config) = wake {
                coordinator = coordinator.with_wake_schedule(config);
            }
            let handles = vec![
                coordinator.register(managed_app(SplashBenchmark::Barnes, 7, 18.0)),
                coordinator.register(managed_app(SplashBenchmark::OceanNonContiguous, 8, 24.0)),
            ];
            (coordinator, handles)
        };
        let (mut plain, plain_handles) = build(None);
        let (mut gated, gated_handles) = build(Some(WakeConfig {
            steady_quanta: 2,
            horizon: 0,
        }));
        let mut now = 0.0;
        for _ in 0..12 {
            now += 1.0;
            for (&a, &b) in plain_handles.iter().zip(&gated_handles) {
                plain.advance(a, now - 1.0, now, 10.0, 9.0);
                gated.advance(b, now - 1.0, now, 10.0, 9.0);
            }
            plain.step(now).unwrap();
            gated.step(now).unwrap();
            let plain_bits: Vec<u64> =
                plain.awards().iter().map(|award| award.to_bits()).collect();
            let gated_bits: Vec<u64> =
                gated.awards().iter().map(|award| award.to_bits()).collect();
            assert_eq!(
                plain_bits, gated_bits,
                "horizon 0 must be bit-identical to no wake schedule"
            );
        }
    }

    #[test]
    fn a_sleeping_app_force_wakes_when_retired() {
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(60.0, Box::new(StaticShare))
            .with_arbitration_tolerance(0.05)
            .with_wake_schedule(WakeConfig {
                steady_quanta: 1,
                horizon: 32,
            })
            .with_obs(Arc::clone(&recorder));
        let handles = vec![
            coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0)),
            coordinator.register(managed_app(SplashBenchmark::OceanNonContiguous, 2, 20.0)),
        ];
        let mut now = 0.0;
        drive_from(&mut coordinator, &handles, 8, &mut now);
        assert!(
            recorder.counter(Counter::AppsSlept) > 0,
            "the fleet should be sleeping before the retirement"
        );
        coordinator.retire(handles[1]);
        drive_from(&mut coordinator, &handles, 1, &mut now);
        assert_eq!(
            coordinator.app(handles[1]).awarded_watts(),
            0.0,
            "a retired sleeper must wake and lose its envelope the next step"
        );
        assert_eq!(coordinator.awards()[1], 0.0);
    }

    #[test]
    fn the_wake_calendar_wakes_a_sleeper_for_its_departure_quantum() {
        // Departure at quantum 10 with a 64-quantum sleep horizon: only the
        // wake calendar can wake the app on time, long before its deadline.
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(60.0, Box::new(WeightedFair))
            .with_arbitration_tolerance(0.05)
            .with_wake_schedule(WakeConfig {
                steady_quanta: 1,
                horizon: 64,
            })
            .with_obs(Arc::clone(&recorder));
        let handles = vec![
            coordinator.register(managed_app(SplashBenchmark::Barnes, 1, 20.0)),
            coordinator
                .register(managed_app(SplashBenchmark::OceanNonContiguous, 2, 20.0).with_departure(10)),
        ];
        let mut now = 0.0;
        drive_from(&mut coordinator, &handles, 10, &mut now);
        assert!(
            recorder.counter(Counter::AppsSlept) > 0,
            "both apps should have slept before the departure"
        );
        assert!(coordinator.awards()[1] > 0.0, "still present through quantum 9");
        drive_from(&mut coordinator, &handles, 1, &mut now);
        assert_eq!(
            coordinator.awards()[1],
            0.0,
            "the departure quantum must force-wake the sleeper and zero its award"
        );
        let total: f64 = coordinator.awards().iter().sum();
        assert!(total <= 60.0 * 0.95 + 1e-9, "budget overrun: {total}");
    }

    #[test]
    fn a_sleeping_app_force_wakes_when_the_watchdog_quarantines_it() {
        // A 64-quantum horizon with steady_quanta 1 puts the whole fleet to
        // sleep long before any deadline; the only thing that can strip a
        // sleeper's held award inside this run is the health transition.
        let config = WatchdogConfig::default();
        let recorder = Arc::new(Recorder::in_memory());
        let mut coordinator = Coordinator::new(60.0, Box::new(WeightedFair))
            .with_arbitration_tolerance(0.05)
            .with_wake_schedule(WakeConfig {
                steady_quanta: 1,
                horizon: 64,
            })
            .with_watchdog(config)
            .with_obs(Arc::clone(&recorder));
        let handles: Vec<AppHandle> = (0..3)
            .map(|i| {
                coordinator.register(managed_app(SplashBenchmark::ALL[i], i as u64 + 1, 20.0))
            })
            .collect();
        let mut now = 0.0;
        for _ in 0..8 {
            now += 1.0;
            for &handle in &handles {
                advance_honestly(&mut coordinator, handle, now);
            }
            coordinator.step(now).unwrap();
        }
        let slept_before_stall = recorder.counter(Counter::AppsSlept);
        assert!(slept_before_stall > 0, "the fleet should be sleeping before the stall");
        assert!(
            coordinator.app(handles[2]).awarded_watts() > config.quarantine_floor_watts,
            "the app must hold a real envelope going into the stall"
        );

        // App 2's heartbeat pipe wedges while its slot sleeps on a held
        // award: the watchdog must still see the staleness and the
        // quarantine must force-wake the slot the same quantum.
        for _ in 0..(config.stale_beat_quanta + 2) {
            now += 1.0;
            for &handle in &handles[..2] {
                advance_honestly(&mut coordinator, handle, now);
            }
            coordinator.step(now).unwrap();
        }
        let stalled = coordinator.app(handles[2]);
        assert_eq!(stalled.health_state(), HealthState::Quarantined);
        assert!(
            stalled.awarded_watts() <= config.quarantine_floor_watts + 1e-9,
            "a sleep horizon must not shield a quarantined app's held award, got {}",
            stalled.awarded_watts()
        );
        assert!(
            recorder.counter(Counter::AppsSlept) > slept_before_stall,
            "healthy apps keep sleeping through a neighbour's quarantine"
        );
        let total: f64 = coordinator.awards().iter().sum();
        assert!(total <= 60.0 * 0.95 + 1e-9, "budget overrun: {total}");
    }
}
