//! The invariant oracle layer: every property the coordination stack is
//! supposed to uphold, stated once and shared by the proptest suites, the
//! scenario fuzzer, and CI.
//!
//! The checks split into two families:
//!
//! * **Arbitration-step invariants** — properties of a single award vector
//!   ([`check_award_vector`], [`check_budget_conservation`],
//!   [`check_summary_total`], [`check_hierarchy_conservation`]). These are
//!   the pins the `arbitration`/`lifecycle`/`hierarchy` property suites
//!   assert every generated step; the fuzzer asserts them every simulated
//!   quantum.
//! * **Run-level oracles** — properties of a whole execution
//!   ([`check_cap_violation`], [`check_starvation`], [`OscillationTracker`],
//!   [`check_perf_per_watt_cliff`]). These judge a finished scenario run:
//!   did the machine hold its cap, did every weighted app make progress,
//!   did arbitration settle, did coordination at least not fall off a
//!   cliff relative to running uncoordinated?
//!
//! Every check returns [`InvariantViolation`] values rather than panicking,
//! so the same oracle can drive a `prop_assert!`, a fuzzer's incident
//! report, or a CI gate. Violations serialise as JSON (via the vendored
//! serde) for machine-readable incident reports.
//!
//! Tolerances are **relative** (`limit * (1 +` [`REL_TOL`]`)`), never
//! looser than the absolute slacks the original property suites used, so
//! extracting the checks here did not weaken any pinned property.

use serde::{Deserialize, Serialize};

/// Relative tolerance for floating-point sum comparisons: a total
/// "conserves" a limit when it is at most `limit * (1.0 + REL_TOL)`.
pub const REL_TOL: f64 = 1e-9;

/// Absolute tolerance for per-award ceiling comparisons (matches the
/// arbitration property suite's historical `+ 1e-9` slack).
pub const CEILING_TOL: f64 = 1e-9;

/// One violated invariant, with enough context to report and triage.
///
/// The serialised form (externally-tagged JSON) is the vocabulary of the
/// scenario fuzzer's incident reports and the regression corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InvariantViolation {
    /// An award was NaN or infinite.
    NonFiniteAward {
        /// Registration-order index of the awarded app (or rack).
        index: usize,
    },
    /// An award was negative.
    NegativeAward {
        /// Registration-order index of the awarded app (or rack).
        index: usize,
        /// The offending award, in watts.
        award: f64,
    },
    /// An absent (not-yet-arrived, departed, or retired) app was awarded
    /// a non-zero envelope.
    InactiveAwarded {
        /// Registration-order index of the awarded app (or rack).
        index: usize,
        /// The offending award, in watts.
        award: f64,
    },
    /// An award exceeded the app's declared absorption ceiling.
    AwardAboveCeiling {
        /// Registration-order index of the awarded app.
        index: usize,
        /// The offending award, in watts.
        award: f64,
        /// The app's declared ceiling, in watts.
        ceiling: f64,
    },
    /// A sum of awards exceeded the budget (or envelope) it must conserve.
    BudgetExceeded {
        /// The summed awards, in watts.
        total: f64,
        /// The budget the total must stay within, in watts.
        limit: f64,
    },
    /// A step summary's reported total disagreed with the awards it
    /// summarises.
    SummaryMismatch {
        /// The total the summary reported, in watts.
        reported: f64,
        /// The total recomputed from the award vector, in watts.
        recomputed: f64,
    },
    /// The machine (or a rack) spent more than the tolerated fraction of
    /// intervals above its power cap.
    CapViolation {
        /// Which meter violated (e.g. `"machine"`, `"rack-2"`).
        meter: String,
        /// Fraction of recorded intervals above the cap, in `[0, 1]`.
        fraction: f64,
        /// The tolerated fraction.
        limit: f64,
    },
    /// A positively-weighted app stayed far below its performance goal for
    /// its whole residency.
    Starvation {
        /// The starved app's name.
        app: String,
        /// Goal attainment over the app's residency, in `[0, 1]`.
        attainment: f64,
        /// The attainment floor below which residency counts as starved.
        floor: f64,
    },
    /// An app's awarded envelope kept reversing direction: arbitration
    /// never settled.
    Oscillation {
        /// The oscillating app's name.
        app: String,
        /// Direction flips per observed award transition, in `[0, 1]`.
        flip_rate: f64,
        /// The tolerated flip rate.
        limit: f64,
    },
    /// Coordinated execution fell below the tolerated fraction of the
    /// uncoordinated baseline's performance per watt.
    PerfPerWattCliff {
        /// Coordinated goal-weighted performance per watt.
        coordinated: f64,
        /// Uncoordinated-baseline goal-weighted performance per watt.
        baseline: f64,
        /// Minimum tolerated `coordinated / baseline` ratio.
        floor_ratio: f64,
    },
}

impl InvariantViolation {
    /// A short machine-stable label for the violation class, used to
    /// fingerprint behaviour signatures and bucket incidents.
    pub fn class(&self) -> &'static str {
        match self {
            InvariantViolation::NonFiniteAward { .. } => "non_finite_award",
            InvariantViolation::NegativeAward { .. } => "negative_award",
            InvariantViolation::InactiveAwarded { .. } => "inactive_awarded",
            InvariantViolation::AwardAboveCeiling { .. } => "award_above_ceiling",
            InvariantViolation::BudgetExceeded { .. } => "budget_exceeded",
            InvariantViolation::SummaryMismatch { .. } => "summary_mismatch",
            InvariantViolation::CapViolation { .. } => "cap_violation",
            InvariantViolation::Starvation { .. } => "starvation",
            InvariantViolation::Oscillation { .. } => "oscillation",
            InvariantViolation::PerfPerWattCliff { .. } => "perf_per_watt_cliff",
        }
    }
}

/// What the award-vector checks need to know about one awarded entity
/// (an app, or a rack when judging datacenter-level awards).
#[derive(Debug, Clone, Copy)]
pub struct AwardedApp {
    /// Whether the entity was present/active at the judged quantum.
    pub active: bool,
    /// The entity's absorption ceiling in watts, when it declared one.
    pub ceiling: Option<f64>,
}

impl AwardedApp {
    /// An active app with no declared ceiling.
    pub fn active() -> Self {
        AwardedApp {
            active: true,
            ceiling: None,
        }
    }

    /// An absent app (must be awarded exactly 0 W).
    pub fn absent() -> Self {
        AwardedApp {
            active: false,
            ceiling: None,
        }
    }

    /// Adds a declared absorption ceiling, in watts.
    pub fn with_ceiling(mut self, ceiling: f64) -> Self {
        self.ceiling = Some(ceiling);
        self
    }
}

/// Checks the per-award invariants of one arbitration step: every award is
/// finite and non-negative, absent apps are awarded exactly 0 W, and no
/// award exceeds its app's declared ceiling (plus [`CEILING_TOL`]).
///
/// `apps` pairs positionally with `awards`; when the vectors disagree in
/// length only the common prefix is judged (the caller's length mismatch
/// is its own bug, caught by its own assertions).
pub fn check_award_vector(awards: &[f64], apps: &[AwardedApp]) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for (index, (&award, app)) in awards.iter().zip(apps).enumerate() {
        if !award.is_finite() {
            violations.push(InvariantViolation::NonFiniteAward { index });
            continue;
        }
        if award < 0.0 {
            violations.push(InvariantViolation::NegativeAward { index, award });
        }
        if !app.active && award != 0.0 {
            violations.push(InvariantViolation::InactiveAwarded { index, award });
        }
        if let Some(ceiling) = app.ceiling {
            if award > ceiling + CEILING_TOL {
                violations.push(InvariantViolation::AwardAboveCeiling {
                    index,
                    award,
                    ceiling,
                });
            }
        }
    }
    violations
}

/// Sums the awards of active apps (the total that must conserve the
/// budget; absent apps' awards are separately pinned to zero by
/// [`check_award_vector`]).
pub fn active_total(awards: &[f64], apps: &[AwardedApp]) -> f64 {
    awards
        .iter()
        .zip(apps)
        .filter(|(_, app)| app.active)
        .map(|(&award, _)| award)
        .sum()
}

/// Checks that a summed award total conserves its budget to within
/// [`REL_TOL`]. `limit` is whatever the caller's contract says the sum
/// must respect — the raw budget for policy-level awards, the headroomed
/// budget (`budget * 0.95`) for coordinator-level awards, a rack's awarded
/// envelope for its fleet.
pub fn check_budget_conservation(total: f64, limit: f64) -> Option<InvariantViolation> {
    if total > limit * (1.0 + REL_TOL) {
        Some(InvariantViolation::BudgetExceeded { total, limit })
    } else {
        None
    }
}

/// Checks that a step summary's reported award total matches the total
/// recomputed from the award vector, to within [`REL_TOL`] relative (with
/// a 1 W reference floor so zero-award steps compare absolutely).
pub fn check_summary_total(reported: f64, recomputed: f64) -> Option<InvariantViolation> {
    if (reported - recomputed).abs() > REL_TOL * recomputed.abs().max(1.0) {
        Some(InvariantViolation::SummaryMismatch {
            reported,
            recomputed,
        })
    } else {
        None
    }
}

/// The totals of one hierarchical (datacenter → rack → app) step.
#[derive(Debug, Clone)]
pub struct HierarchyTotals {
    /// The datacenter-level budget, in watts.
    pub budget: f64,
    /// Per-rack awarded envelopes, in registration order.
    pub rack_envelopes: Vec<f64>,
    /// Per-rack sums of app awards, in the same order.
    pub rack_fleet_totals: Vec<f64>,
    /// The headroom factor each rack applies before splitting its envelope
    /// across apps (0.95 for the shipped coordinator).
    pub headroom: f64,
}

/// Checks end-to-end budget conservation through the hierarchy: rack
/// envelopes conserve the datacenter budget, each rack's fleet conserves
/// its headroomed envelope, and the datacenter-wide app total conserves
/// the headroomed budget.
pub fn check_hierarchy_conservation(totals: &HierarchyTotals) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let envelope_total: f64 = totals.rack_envelopes.iter().sum();
    violations.extend(check_budget_conservation(envelope_total, totals.budget));
    for (&fleet, &envelope) in totals.rack_fleet_totals.iter().zip(&totals.rack_envelopes) {
        violations.extend(check_budget_conservation(fleet, envelope * totals.headroom));
    }
    let app_total: f64 = totals.rack_fleet_totals.iter().sum();
    violations.extend(check_budget_conservation(
        app_total,
        totals.budget * totals.headroom,
    ));
    violations
}

/// Checks the observed cap-violation interval fraction against the
/// tolerated limit.
pub fn check_cap_violation(meter: &str, fraction: f64, limit: f64) -> Option<InvariantViolation> {
    if fraction > limit {
        Some(InvariantViolation::CapViolation {
            meter: meter.to_string(),
            fraction,
            limit,
        })
    } else {
        None
    }
}

/// Checks one app's goal attainment against the starvation floor.
pub fn check_starvation(app: &str, attainment: f64, floor: f64) -> Option<InvariantViolation> {
    if attainment < floor {
        Some(InvariantViolation::Starvation {
            app: app.to_string(),
            attainment,
            floor,
        })
    } else {
        None
    }
}

/// Checks coordinated perf/W against the uncoordinated baseline: a run is
/// a cliff when `coordinated < floor_ratio * baseline` (with a positive
/// baseline; a zero-perf baseline judges nothing).
pub fn check_perf_per_watt_cliff(
    coordinated: f64,
    baseline: f64,
    floor_ratio: f64,
) -> Option<InvariantViolation> {
    if baseline > 0.0 && coordinated < floor_ratio * baseline {
        Some(InvariantViolation::PerfPerWattCliff {
            coordinated,
            baseline,
            floor_ratio,
        })
    } else {
        None
    }
}

/// Counts direction flips in one app's awarded-envelope time series.
///
/// A *flip* is a change of direction between consecutive material moves:
/// the award rose by more than the noise threshold, then fell by more than
/// it (or vice versa). Sub-threshold drift is ignored, so steady-state
/// dither around a settled envelope does not count as oscillation — only
/// genuine re-arbitration reversals do.
#[derive(Debug, Clone)]
pub struct OscillationTracker {
    threshold: f64,
    last: Option<f64>,
    direction: i8,
    flips: usize,
    transitions: usize,
}

impl OscillationTracker {
    /// A tracker that ignores award moves smaller than `threshold` watts.
    pub fn new(threshold: f64) -> Self {
        OscillationTracker {
            threshold: threshold.max(0.0),
            last: None,
            direction: 0,
            flips: 0,
            transitions: 0,
        }
    }

    /// Feeds the next quantum's awarded envelope.
    pub fn observe(&mut self, award: f64) {
        if let Some(last) = self.last {
            self.transitions += 1;
            let delta = award - last;
            if delta.abs() > self.threshold {
                let direction = if delta > 0.0 { 1 } else { -1 };
                if self.direction != 0 && direction != self.direction {
                    self.flips += 1;
                }
                self.direction = direction;
            } else {
                // Sub-threshold move: keep the old direction, but advance
                // the anchor so slow ramps are not misread as flips.
                return;
            }
        }
        self.last = Some(award);
    }

    /// Direction flips observed so far.
    pub fn flips(&self) -> usize {
        self.flips
    }

    /// Award transitions observed so far (observations minus one).
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    /// Flips per observed transition, in `[0, 1]` (0 before two samples).
    pub fn flip_rate(&self) -> f64 {
        if self.transitions > 0 {
            self.flips as f64 / self.transitions as f64
        } else {
            0.0
        }
    }

    /// Judges the observed flip rate against the tolerated limit.
    pub fn check(&self, app: &str, limit: f64) -> Option<InvariantViolation> {
        if self.flip_rate() > limit {
            Some(InvariantViolation::Oscillation {
                app: app.to_string(),
                flip_rate: self.flip_rate(),
                limit,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn award_vector_flags_each_pathology_once() {
        let apps = [
            AwardedApp::active(),
            AwardedApp::absent(),
            AwardedApp::active().with_ceiling(5.0),
            AwardedApp::active(),
        ];
        let awards = [f64::NAN, 1.0, 5.5, -2.0];
        let violations = check_award_vector(&awards, &apps);
        let classes: Vec<&str> = violations.iter().map(InvariantViolation::class).collect();
        assert_eq!(
            classes,
            vec!["non_finite_award", "inactive_awarded", "award_above_ceiling", "negative_award"]
        );
    }

    #[test]
    fn clean_award_vector_passes() {
        let apps = [
            AwardedApp::active().with_ceiling(10.0),
            AwardedApp::absent(),
        ];
        assert!(check_award_vector(&[10.0, 0.0], &apps).is_empty());
        assert_eq!(active_total(&[10.0, 0.0], &apps), 10.0);
    }

    #[test]
    fn budget_conservation_is_relative() {
        assert!(check_budget_conservation(100.0, 100.0).is_none());
        assert!(check_budget_conservation(100.0 + 1e-8, 100.0).is_none());
        assert!(check_budget_conservation(100.1, 100.0).is_some());
        assert!(check_budget_conservation(0.0, 0.0).is_none());
        assert!(check_budget_conservation(1e-12, 0.0).is_some());
    }

    #[test]
    fn summary_totals_compare_with_a_unit_floor() {
        assert!(check_summary_total(10.0, 10.0 + 1e-10).is_none());
        assert!(check_summary_total(10.0, 10.1).is_some());
        assert!(check_summary_total(0.0, 1e-10).is_none());
    }

    #[test]
    fn hierarchy_conservation_checks_every_level() {
        let clean = HierarchyTotals {
            budget: 100.0,
            rack_envelopes: vec![60.0, 40.0],
            rack_fleet_totals: vec![57.0, 38.0],
            headroom: 0.95,
        };
        assert!(check_hierarchy_conservation(&clean).is_empty());

        let rack_overdraw = HierarchyTotals {
            rack_fleet_totals: vec![59.0, 38.0],
            ..clean.clone()
        };
        let violations = check_hierarchy_conservation(&rack_overdraw);
        // 59 > 57 (rack 0's headroomed envelope) and the app total 97 >
        // 95 (the headroomed budget): two violations.
        assert_eq!(violations.len(), 2);

        let envelope_overdraw = HierarchyTotals {
            rack_envelopes: vec![70.0, 40.0],
            rack_fleet_totals: vec![0.0, 0.0],
            ..clean
        };
        assert_eq!(check_hierarchy_conservation(&envelope_overdraw).len(), 1);
    }

    #[test]
    fn run_level_oracles_judge_thresholds() {
        assert!(check_cap_violation("machine", 0.0, 0.0).is_none());
        assert!(check_cap_violation("machine", 0.05, 0.0).is_some());
        assert!(check_starvation("barnes-0", 0.9, 0.25).is_none());
        assert!(check_starvation("barnes-0", 0.1, 0.25).is_some());
        assert!(check_perf_per_watt_cliff(1.0, 1.0, 0.5).is_none());
        assert!(check_perf_per_watt_cliff(0.4, 1.0, 0.5).is_some());
        assert!(check_perf_per_watt_cliff(0.0, 0.0, 0.5).is_none());
    }

    #[test]
    fn oscillation_counts_material_reversals_only() {
        let mut tracker = OscillationTracker::new(1.0);
        for award in [10.0, 20.0, 10.0, 20.0, 10.0] {
            tracker.observe(award);
        }
        assert_eq!(tracker.flips(), 3);
        assert_eq!(tracker.transitions(), 4);
        assert!(tracker.check("app", 0.5).is_some());

        // Sub-threshold dither around a settled award is not oscillation.
        let mut settled = OscillationTracker::new(1.0);
        for award in [10.0, 10.5, 9.8, 10.2, 9.9] {
            settled.observe(award);
        }
        assert_eq!(settled.flips(), 0);
        assert!(settled.check("app", 0.0).is_none());

        // A monotone ramp never flips even though every move is material.
        let mut ramp = OscillationTracker::new(1.0);
        for award in [0.0, 5.0, 10.0, 15.0] {
            ramp.observe(award);
        }
        assert_eq!(ramp.flips(), 0);
    }

    #[test]
    fn violations_serialise_for_incident_reports() {
        let violation = InvariantViolation::BudgetExceeded {
            total: 101.0,
            limit: 100.0,
        };
        let text = serde_json::to_string(&violation).unwrap();
        assert_eq!(text, "{\"BudgetExceeded\":{\"total\":101.0,\"limit\":100.0}}");
        let back: InvariantViolation = serde_json::from_str(&text).unwrap();
        assert_eq!(back, violation);
    }
}
