//! Incremental arbitration: re-arbitrate only the applications whose
//! requests actually moved.
//!
//! At million-app fleet sizes the full arbitration fold is almost entirely
//! redundant work — most applications' [`AppRequest`]s barely move between
//! quanta. The [`IncrementalArbiter`] keeps a struct-of-arrays snapshot of
//! the request each application was last arbitrated under, a **dirty set**
//! driven by request deltas, lifecycle events, and health transitions, and
//! the award each clean application is currently holding. Each quantum it
//! re-runs the wrapped [`ArbitrationPolicy`] only over the dirty
//! applications, against the *residual* budget left after the clean
//! applications' held awards — a delta update of WeightedFair's water level
//! and the market's clearing price (both are pure functions of the
//! participating request set and the budget, so shrinking the set and the
//! budget together is exact).
//!
//! # Tolerance-0 determinism
//!
//! The degenerate tolerance `0.0` marks **every** application dirty every
//! quantum (a request delta of exactly zero is not *strictly inside* a zero
//! tolerance), so the engine falls through to one [`ArbitrationPolicy::arbitrate`]
//! call over the full request slice — byte-for-byte the call the
//! non-incremental path makes. Incremental arbitration at tolerance 0 is
//! therefore *bit-identical* to full re-arbitration by construction, which
//! is exactly what the differential suite
//! (`tests/incremental_props.rs`) pins across policies, fleets, churn, and
//! worker counts.
//!
//! # Budget conservation at any tolerance
//!
//! Clean applications hold their previous award, clamped to their current
//! absorption ceiling (clamping only ever shrinks). The dirty set is
//! arbitrated under `budget − Σ held`, and every shipped policy conserves
//! its budget, so the merged award vector sums to at most the full budget
//! at every tolerance — pinned by the nonzero-tolerance properties of the
//! same suite.
//!
//! # Wake scheduling: O(awake) rounds
//!
//! Even with a tolerance, classifying every slot is an O(fleet) memory walk
//! per quantum. [`IncrementalArbiter::with_wake`] turns the engine
//! event-driven: a slot whose request stayed inside the tolerance for
//! [`WakeConfig::steady_quanta`] consecutive rounds is put to **sleep** with
//! a bounded [`WakeConfig::horizon`] — it skips classification entirely and
//! holds its award until its deadline expires (a timing wheel drains the
//! round's bucket) or an external event wakes it early:
//!
//! * [`IncrementalArbiter::wake`] — the caller saw this slot's request
//!   move (a fresh report, a churn event, a presence transition);
//! * [`IncrementalArbiter::mark_dirty`] — lifecycle and health events
//!   (which also force re-arbitration, as before);
//! * [`IncrementalArbiter::mark_all_dirty`] — budget/policy/watchdog
//!   replacement wakes the whole fleet (every held award is invalid).
//!
//! The engine keeps an ascending **awake-index list**; classification, the
//! hold-clamp, and the residual fold iterate only that list, so the round
//! costs O(awake), not O(fleet). While a slot sleeps the engine never reads
//! its request row — the caller's contract is to `wake()` any slot whose
//! request may have moved, and every envelope-changing event
//! (budget/policy/health/lifecycle) force-wakes, so staleness is bounded by
//! the horizon and limited to sub-tolerance drift.
//!
//! Horizon `0` disables the scheduler outright: the engine dispatches to
//! the exact dense code path above, so a wake-configured engine at horizon
//! 0 is bit-identical to an unconfigured one by construction (pinned, with
//! the coordinator on top, by `tests/incremental_props.rs`).
//!
//! For the residual fold itself, policies that declare
//! [`ArbitrationPolicy::index_invariant`] are called over a *compacted*
//! slice holding just the dirty slots (identical participant values in
//! identical relative order — identical partial sums, identical award
//! bits); stateful per-slot policies fall back to the fleet-length masked
//! slice.

use crate::policy::{AppRequest, ArbitrationPolicy};

/// Wake-scheduler knobs for [`IncrementalArbiter::with_wake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeConfig {
    /// Consecutive clean (sub-tolerance) rounds before a slot sleeps.
    /// Treated as at least 1 — a dirty slot never sleeps the round it
    /// re-arbitrated.
    pub steady_quanta: u32,
    /// Upper bound, in rounds, on how long a slot may sleep before it is
    /// re-classified. `0` disables wake scheduling entirely (the engine
    /// runs the dense per-round classification, bit-identical to an
    /// unconfigured engine).
    pub horizon: usize,
}

impl Default for WakeConfig {
    fn default() -> Self {
        WakeConfig {
            steady_quanta: 2,
            horizon: 32,
        }
    }
}

impl WakeConfig {
    /// Wake scheduling disabled: the dense classification runs every round.
    pub const OFF: WakeConfig = WakeConfig {
        steady_quanta: 0,
        horizon: 0,
    };

    /// Whether this configuration actually schedules sleep.
    pub fn enabled(&self) -> bool {
        self.horizon > 0
    }
}

/// What one incremental arbitration round did, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalOutcome {
    /// Active applications re-arbitrated this round (their request moved
    /// past the tolerance or an event marked them dirty).
    pub rearbitrated: usize,
    /// Active applications that kept their held award without entering the
    /// arbitration fold.
    pub skipped: usize,
    /// Active applications that slept through the round entirely — not even
    /// classified (wake scheduling only; always 0 with the scheduler off).
    pub slept: usize,
    /// Whether the round degenerated to one full-fleet policy call (always
    /// true at tolerance 0).
    pub full: bool,
}

/// The incremental arbitration engine (see the module docs).
///
/// Drives any [`ArbitrationPolicy`] incrementally; the
/// [`crate::Coordinator`] embeds one when an arbitration tolerance is set
/// ([`crate::Coordinator::with_arbitration_tolerance`]), and the fleet-scale
/// harness (`fig5 --fleet N`) drives one directly over synthetic request
/// arrays.
#[derive(Debug)]
pub struct IncrementalArbiter {
    tolerance: f64,
    /// Request snapshot at each slot's last arbitration (struct-of-arrays:
    /// one dense request row per app, streamed in slot order).
    last_requests: Vec<AppRequest>,
    /// The award each slot is holding from its last arbitration.
    held: Vec<f64>,
    /// Slots marked dirty by events since the last round.
    marked: Vec<bool>,
    /// The dirty mask of the most recent round (kept for the caller's
    /// decide stage and telemetry).
    dirty: Vec<bool>,
    /// Force a full round (budget/policy change, or first round).
    fleet_dirty: bool,
    scratch_requests: Vec<AppRequest>,
    scratch_awards: Vec<f64>,
    // ---- Wake-scheduler state (inert while `wake.horizon == 0`) ----
    wake: WakeConfig,
    /// Whether each slot is currently asleep (skipping whole rounds).
    sleeping: Vec<bool>,
    /// Consecutive clean rounds per slot; reset on any dirty round or wake.
    streak: Vec<u32>,
    /// Absolute round at which each sleeping slot's wheel entry is due —
    /// guards stale entries left by early wakes.
    deadline: Vec<u64>,
    /// Timing wheel, one bucket per horizon round; bucket `r % horizon`
    /// drains at the start of round `r`.
    wheel: Vec<Vec<u32>>,
    /// Ascending indices of the slots participating in the current round.
    /// Sleepers are removed at the *next* [`Self::begin_round`], so after
    /// [`Self::arbitrate`] the list still names exactly this round's
    /// participants (the caller's decide stage iterates it).
    awake: Vec<u32>,
    /// Slots woken since the last merge, not yet in `awake`.
    pending_wakes: Vec<u32>,
    merge_scratch: Vec<u32>,
    /// Original slot index of each row of a compacted policy call.
    compact_map: Vec<u32>,
    /// Sleeping slots whose snapshot request is active (the `slept` ledger
    /// entry, maintained incrementally).
    sleeping_active: usize,
    /// Σ held awards over sleeping slots (their requests cannot move while
    /// asleep, so the sum is exact and the residual stays O(awake)).
    sleeping_held_sum: f64,
    /// Monotone round counter driving the wheel.
    round: u64,
    /// Whether [`Self::begin_round`] already ran for the current round.
    round_begun: bool,
}

impl Default for IncrementalArbiter {
    fn default() -> Self {
        IncrementalArbiter {
            tolerance: 0.0,
            last_requests: Vec::new(),
            held: Vec::new(),
            marked: Vec::new(),
            dirty: Vec::new(),
            fleet_dirty: false,
            scratch_requests: Vec::new(),
            scratch_awards: Vec::new(),
            wake: WakeConfig::OFF,
            sleeping: Vec::new(),
            streak: Vec::new(),
            deadline: Vec::new(),
            wheel: Vec::new(),
            awake: Vec::new(),
            pending_wakes: Vec::new(),
            merge_scratch: Vec::new(),
            compact_map: Vec::new(),
            sleeping_active: 0,
            sleeping_held_sum: 0.0,
            round: 0,
            round_begun: false,
        }
    }
}

/// Largest relative per-field movement between two requests; infinite when
/// presence flipped, NaN-propagating so non-finite fields always re-enter
/// the fold.
fn request_delta(current: &AppRequest, snapshot: &AppRequest) -> f64 {
    if current.active != snapshot.active {
        return f64::INFINITY;
    }
    let relative = |now: f64, then: f64| {
        let scale = now.abs().max(then.abs()).max(1.0);
        (now - then).abs() / scale
    };
    relative(current.weight, snapshot.weight)
        .max(relative(current.urgency, snapshot.urgency))
        .max(relative(current.max_power_watts, snapshot.max_power_watts))
}

impl IncrementalArbiter {
    /// An engine that re-arbitrates slots whose request moved by at least
    /// `tolerance` (largest relative field movement; 0 = every round).
    ///
    /// # Panics
    ///
    /// Panics unless the tolerance is finite and non-negative.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "arbitration tolerance must be finite and non-negative, got {tolerance}"
        );
        IncrementalArbiter {
            tolerance,
            fleet_dirty: true,
            ..IncrementalArbiter::default()
        }
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Enables wake scheduling (see the module docs). Horizon 0 leaves the
    /// engine on the dense path, bit-identical to an unconfigured one.
    pub fn with_wake(mut self, config: WakeConfig) -> Self {
        self.set_wake(config);
        self
    }

    /// Replaces the wake configuration mid-run. Every sleeping slot is
    /// woken (its held award may predate the new schedule's guarantees),
    /// so the next round re-classifies the whole fleet's awake set.
    pub fn set_wake(&mut self, config: WakeConfig) {
        self.wake_everyone();
        self.wake = config;
        self.wheel.clear();
        self.wheel.resize_with(config.horizon, Vec::new);
    }

    /// The active wake configuration ([`WakeConfig::OFF`] by default).
    pub fn wake_config(&self) -> WakeConfig {
        self.wake
    }

    /// Whether wake scheduling is active (positive horizon).
    pub fn wake_enabled(&self) -> bool {
        self.wake.enabled()
    }

    /// Wakes `index` if it is asleep: the slot re-enters classification
    /// next round (its streak restarts). Callers **must** wake any slot
    /// whose request may have moved — a churn event, a fresh report, a
    /// presence transition — since the engine never reads a sleeping
    /// slot's request row. No-op with the scheduler off.
    pub fn wake(&mut self, index: usize) {
        if !self.wake.enabled() {
            return;
        }
        if index < self.sleeping.len() && self.sleeping[index] {
            self.sleeping[index] = false;
            if self.last_requests.get(index).is_some_and(|r| r.active) {
                self.sleeping_active -= 1;
            }
            self.sleeping_held_sum -= self.held.get(index).copied().unwrap_or(0.0);
            self.streak[index] = 0;
            self.pending_wakes.push(index as u32);
        } else if index < self.streak.len() {
            self.streak[index] = 0;
        }
    }

    /// Marks one slot dirty: it re-enters the fold next round regardless of
    /// its request delta (lifecycle events, health transitions). Also wakes
    /// the slot — no app sleeps through an envelope change.
    pub fn mark_dirty(&mut self, index: usize) {
        self.wake(index);
        if index >= self.marked.len() {
            self.marked.resize(index + 1, false);
        }
        self.marked[index] = true;
    }

    /// Marks the whole fleet dirty: the next round is a full policy call
    /// (budget or policy replacement invalidates every held award). Wakes
    /// every sleeping slot.
    pub fn mark_all_dirty(&mut self) {
        self.fleet_dirty = true;
        if self.wake.enabled() {
            self.wake_everyone();
        }
    }

    /// Wakes every sleeping slot and rebuilds the awake list as the whole
    /// fleet; clears the wheel (every entry is now stale).
    fn wake_everyone(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.sleeping.iter_mut().for_each(|sleeping| *sleeping = false);
        self.streak.iter_mut().for_each(|streak| *streak = 0);
        self.sleeping_active = 0;
        self.sleeping_held_sum = 0.0;
        self.pending_wakes.clear();
        self.awake.clear();
        self.awake.extend(0..self.sleeping.len() as u32);
    }

    /// The dirty mask of the most recent [`Self::arbitrate`] round, one
    /// flag per request slot (empty before the first round). The caller's
    /// decide stage uses this to skip clean applications.
    pub fn dirty_mask(&self) -> &[bool] {
        &self.dirty
    }

    /// Whether `index` is currently asleep (always false with the
    /// scheduler off).
    pub fn is_sleeping(&self, index: usize) -> bool {
        self.sleeping.get(index).copied().unwrap_or(false)
    }

    /// Sleeping slots whose snapshot request is active — the `slept` entry
    /// of the decide ledger for the round in progress.
    pub fn sleeping_active(&self) -> usize {
        self.sleeping_active
    }

    /// The ascending indices participating in the current round: after
    /// [`Self::begin_round`] (or [`Self::arbitrate`], which begins the
    /// round itself) this is every non-sleeping slot plus any slot woken
    /// mid-round. Empty with the scheduler off.
    pub fn awake_slots(&self) -> &[u32] {
        &self.awake
    }

    /// Whether `index` can skip the coming quantum entirely: it was clean
    /// at the most recent round, so — absent a fresh report or a new mark —
    /// its observation and request are already current.
    pub fn steady(&self, index: usize) -> bool {
        self.tolerance > 0.0
            && !self.fleet_dirty
            && self.dirty.get(index).is_some_and(|&dirty| !dirty)
            && self.marked.get(index).is_none_or(|&marked| !marked)
    }

    /// Starts a round with the scheduler on: grows the wake state to
    /// `fleet` slots, drops last round's sleepers from the awake list,
    /// drains the wheel bucket whose deadline is due, and merges every
    /// pending wake. Idempotent per round; [`Self::arbitrate`] calls it
    /// itself when the caller did not. Returns the awake list (`None` with
    /// the scheduler off) so callers can run their own per-slot stages —
    /// observation, request building — over just the awake set.
    pub fn begin_round(&mut self, fleet: usize) -> Option<&[u32]> {
        if !self.wake.enabled() {
            return None;
        }
        if self.round_begun {
            return Some(&self.awake);
        }
        self.round_begun = true;
        self.ensure_wake_capacity(fleet);
        // Last round's sleepers leave the participant list only now, so the
        // list kept naming them for the caller's post-arbitrate stages.
        let sleeping = &self.sleeping;
        self.awake.retain(|&index| !sleeping[index as usize]);
        // Deadline expiry: drain this round's wheel bucket. Entries whose
        // deadline moved (woken early, re-slept later) are stale — skipped.
        let bucket = (self.round % self.wake.horizon as u64) as usize;
        let mut due = std::mem::take(&mut self.wheel[bucket]);
        for &index in &due {
            let slot = index as usize;
            if slot < self.sleeping.len()
                && self.sleeping[slot]
                && self.deadline[slot] == self.round
            {
                self.sleeping[slot] = false;
                if self.last_requests.get(slot).is_some_and(|r| r.active) {
                    self.sleeping_active -= 1;
                }
                self.sleeping_held_sum -= self.held.get(slot).copied().unwrap_or(0.0);
                self.streak[slot] = 0;
                self.pending_wakes.push(index);
            }
        }
        due.clear();
        self.wheel[bucket] = due; // hand the allocation back
        self.merge_pending();
        Some(&self.awake)
    }

    /// Grows (or shrinks) the wake-state columns to `fleet` slots; new
    /// slots join the awake list (they are dirty by definition).
    fn ensure_wake_capacity(&mut self, fleet: usize) {
        assert!(fleet <= u32::MAX as usize, "fleet exceeds u32 slot indices");
        let old = self.sleeping.len();
        if fleet > old {
            self.sleeping.resize(fleet, false);
            self.streak.resize(fleet, 0);
            self.deadline.resize(fleet, 0);
            // New indices are above every existing one: the list stays
            // sorted.
            self.awake.extend(old as u32..fleet as u32);
        } else if fleet < old {
            for slot in fleet..old {
                if self.sleeping[slot] {
                    if self.last_requests.get(slot).is_some_and(|r| r.active) {
                        self.sleeping_active -= 1;
                    }
                    self.sleeping_held_sum -= self.held.get(slot).copied().unwrap_or(0.0);
                }
            }
            self.sleeping.truncate(fleet);
            self.streak.truncate(fleet);
            self.deadline.truncate(fleet);
            self.awake.retain(|&index| (index as usize) < fleet);
            self.pending_wakes.retain(|&index| (index as usize) < fleet);
            for bucket in &mut self.wheel {
                bucket.retain(|&index| (index as usize) < fleet);
            }
        }
    }

    /// Merges `pending_wakes` into the ascending awake list. A slot woken
    /// between rounds (sleeping flag already cleared) survives the retain
    /// in [`Self::begin_round`] *and* sits in `pending_wakes`, so the
    /// merge deduplicates.
    fn merge_pending(&mut self) {
        if self.pending_wakes.is_empty() {
            return;
        }
        self.pending_wakes.sort_unstable();
        self.merge_scratch.clear();
        self.merge_scratch.reserve(self.awake.len() + self.pending_wakes.len());
        let mut fresh = self.pending_wakes.iter().copied().peekable();
        for &index in &self.awake {
            while let Some(&next) = fresh.peek() {
                if next < index {
                    self.merge_scratch.push(next);
                    fresh.next();
                } else if next == index {
                    fresh.next(); // already awake: drop the duplicate
                } else {
                    break;
                }
            }
            self.merge_scratch.push(index);
        }
        self.merge_scratch.extend(fresh);
        std::mem::swap(&mut self.awake, &mut self.merge_scratch);
        self.pending_wakes.clear();
    }

    /// One incremental round: splits `budget_watts` across `requests` into
    /// `awards` through `policy`, re-arbitrating only the dirty slots (see
    /// the module docs). Slots never seen before are dirty by definition;
    /// growing or shrinking the slice resets the new/old slots accordingly.
    pub fn arbitrate(
        &mut self,
        policy: &mut dyn ArbitrationPolicy,
        budget_watts: f64,
        requests: &[AppRequest],
        awards: &mut Vec<f64>,
    ) -> IncrementalOutcome {
        if self.wake.enabled() {
            self.arbitrate_scheduled(policy, budget_watts, requests, awards)
        } else {
            self.arbitrate_dense(policy, budget_watts, requests, awards)
        }
    }

    /// The dense round: classify every slot. This is the whole engine with
    /// the wake scheduler off, and the path a horizon-0 configuration
    /// dispatches to — the bit-identity anchor for both differential pins.
    fn arbitrate_dense(
        &mut self,
        policy: &mut dyn ArbitrationPolicy,
        budget_watts: f64,
        requests: &[AppRequest],
        awards: &mut Vec<f64>,
    ) -> IncrementalOutcome {
        let fleet = requests.len();
        // Slots never seen before start marked (dirty by definition);
        // existing slots keep whatever marks they carried.
        self.marked.resize(fleet, true);
        self.last_requests.resize(
            fleet,
            AppRequest {
                active: false,
                weight: 1.0,
                urgency: 1.0,
                max_power_watts: 0.0,
            },
        );
        self.held.resize(fleet, 0.0);
        self.dirty.clear();
        self.dirty.resize(fleet, false);

        // ---- Classify: the dirty set -------------------------------
        // "Moved" unless the delta is *strictly inside* the tolerance, so
        // tolerance 0 marks everything and a NaN delta always re-enters.
        let mut dirty_count = 0;
        for (index, request) in requests.iter().enumerate() {
            let delta = request_delta(request, &self.last_requests[index]);
            let moved = delta.partial_cmp(&self.tolerance) != Some(std::cmp::Ordering::Less);
            let dirty = self.fleet_dirty || self.marked[index] || moved;
            self.dirty[index] = dirty;
            if dirty {
                dirty_count += 1;
            }
        }
        self.marked.iter_mut().for_each(|marked| *marked = false);
        self.fleet_dirty = false;

        let mut outcome = IncrementalOutcome {
            full: dirty_count == fleet,
            ..IncrementalOutcome::default()
        };
        for (request, &dirty) in requests.iter().zip(&self.dirty) {
            if !request.active {
                continue;
            }
            if dirty {
                outcome.rearbitrated += 1;
            } else {
                outcome.skipped += 1;
            }
        }

        if outcome.full {
            // Degenerate round (always at tolerance 0): byte-for-byte the
            // call the non-incremental path makes.
            policy.arbitrate(budget_watts, requests, awards);
            self.last_requests.copy_from_slice(requests);
            self.held.copy_from_slice(awards);
            return outcome;
        }

        if dirty_count == 0 {
            // Fully steady quantum: no fold at all. Every slot holds its
            // award (clamped to its current ceiling) and the policy is not
            // consulted — the event-driven skip the engine exists for.
            for (request, held) in requests.iter().zip(self.held.iter_mut()) {
                *held = held.min(request.max_power_watts.max(0.0));
            }
            awards.clear();
            awards.extend_from_slice(&self.held);
            return outcome;
        }

        // ---- Hold the clean slots, fold the dirty residual ---------
        // Clean awards clamp to the current ceiling (clamping only
        // shrinks), then the dirty set is arbitrated under the residual
        // budget — the delta update of the water level / clearing price.
        let mut held_total = 0.0;
        for ((request, &dirty), held) in
            requests.iter().zip(&self.dirty).zip(self.held.iter_mut())
        {
            if dirty {
                continue;
            }
            *held = held.min(request.max_power_watts.max(0.0));
            held_total += *held;
        }
        let residual = (budget_watts - held_total).max(0.0);
        self.scratch_requests.clear();
        self.scratch_requests.extend(
            requests
                .iter()
                .zip(&self.dirty)
                .map(|(request, &dirty)| AppRequest {
                    active: request.active && dirty,
                    ..*request
                }),
        );
        policy.arbitrate(residual, &self.scratch_requests, &mut self.scratch_awards);

        awards.clear();
        awards.extend((0..fleet).map(|index| {
            if self.dirty[index] {
                self.last_requests[index] = requests[index];
                self.held[index] = self.scratch_awards[index];
            }
            self.held[index]
        }));
        outcome
    }

    /// The scheduled round: classify only the awake list, fold the dirty
    /// residual against `Σ sleeping held + Σ awake-clean held`, then put
    /// steady slots to sleep. O(awake) except for the fleet-length award
    /// copy-out and the (vectorised) mask memsets.
    fn arbitrate_scheduled(
        &mut self,
        policy: &mut dyn ArbitrationPolicy,
        budget_watts: f64,
        requests: &[AppRequest],
        awards: &mut Vec<f64>,
    ) -> IncrementalOutcome {
        let fleet = requests.len();
        self.begin_round(fleet);
        // Wakes raised mid-round (a watchdog transition after the caller's
        // observe stage) still join this round's classification.
        self.merge_pending();
        self.marked.resize(fleet, true);
        self.last_requests.resize(
            fleet,
            AppRequest {
                active: false,
                weight: 1.0,
                urgency: 1.0,
                max_power_watts: 0.0,
            },
        );
        self.held.resize(fleet, 0.0);
        self.dirty.clear();
        self.dirty.resize(fleet, false);

        // ---- Classify the awake set --------------------------------
        let mut dirty_count = 0;
        for &index in &self.awake {
            let slot = index as usize;
            let delta = request_delta(&requests[slot], &self.last_requests[slot]);
            let moved = delta.partial_cmp(&self.tolerance) != Some(std::cmp::Ordering::Less);
            let dirty = self.fleet_dirty || self.marked[slot] || moved;
            self.dirty[slot] = dirty;
            if dirty {
                dirty_count += 1;
                self.streak[slot] = 0;
            } else {
                self.streak[slot] = self.streak[slot].saturating_add(1);
            }
        }
        self.marked.iter_mut().for_each(|marked| *marked = false);
        self.fleet_dirty = false;

        let mut outcome = IncrementalOutcome {
            full: dirty_count == fleet,
            slept: self.sleeping_active,
            ..IncrementalOutcome::default()
        };
        for &index in &self.awake {
            let slot = index as usize;
            if !requests[slot].active {
                continue;
            }
            if self.dirty[slot] {
                outcome.rearbitrated += 1;
            } else {
                outcome.skipped += 1;
            }
        }

        if outcome.full {
            // All slots awake and dirty (first round, or a fleet-wide
            // invalidation woke everyone): byte-for-byte the full fold.
            policy.arbitrate(budget_watts, requests, awards);
            self.last_requests.copy_from_slice(requests);
            self.held.copy_from_slice(awards);
        } else if dirty_count == 0 {
            // Fully steady awake set: clamp its held awards, keep the
            // sleepers', no policy call.
            for &index in &self.awake {
                let slot = index as usize;
                self.held[slot] =
                    self.held[slot].min(requests[slot].max_power_watts.max(0.0));
            }
            awards.clear();
            awards.extend_from_slice(&self.held);
        } else {
            // ---- Hold clean + sleeping, fold the dirty residual ----
            let mut held_total = self.sleeping_held_sum;
            for &index in &self.awake {
                let slot = index as usize;
                if self.dirty[slot] {
                    continue;
                }
                let held = self.held[slot].min(requests[slot].max_power_watts.max(0.0));
                self.held[slot] = held;
                held_total += held;
            }
            let residual = (budget_watts - held_total).max(0.0);
            if policy.index_invariant() {
                // Compacted fold: just the dirty rows, in ascending slot
                // order — identical participants, identical award bits.
                self.scratch_requests.clear();
                self.compact_map.clear();
                for &index in &self.awake {
                    let slot = index as usize;
                    if self.dirty[slot] {
                        self.compact_map.push(index);
                        self.scratch_requests.push(requests[slot]);
                    }
                }
                policy.arbitrate(residual, &self.scratch_requests, &mut self.scratch_awards);
                for (row, &index) in self.compact_map.iter().enumerate() {
                    let slot = index as usize;
                    self.last_requests[slot] = requests[slot];
                    self.held[slot] = self.scratch_awards[row];
                }
            } else {
                // Stateful per-slot policies keep fleet-length alignment:
                // the masked fallback of the dense path.
                self.scratch_requests.clear();
                self.scratch_requests.extend(
                    requests
                        .iter()
                        .zip(&self.dirty)
                        .map(|(request, &dirty)| AppRequest {
                            active: request.active && dirty,
                            ..*request
                        }),
                );
                policy.arbitrate(residual, &self.scratch_requests, &mut self.scratch_awards);
                for &index in &self.awake {
                    let slot = index as usize;
                    if self.dirty[slot] {
                        self.last_requests[slot] = requests[slot];
                        self.held[slot] = self.scratch_awards[slot];
                    }
                }
            }
            awards.clear();
            awards.extend_from_slice(&self.held);
        }

        // ---- Sleep the steady slots --------------------------------
        // A slot clean for `steady_quanta` consecutive rounds sleeps with
        // a `horizon`-round deadline. It stays in the awake list until the
        // next `begin_round`, so the caller's decide stage still sees this
        // round's full participant set.
        let steady_quanta = self.wake.steady_quanta.max(1);
        let horizon = self.wake.horizon as u64;
        for &index in &self.awake {
            let slot = index as usize;
            if self.dirty[slot] || self.streak[slot] < steady_quanta {
                continue;
            }
            self.sleeping[slot] = true;
            self.deadline[slot] = self.round + horizon;
            let bucket = ((self.round + horizon) % horizon) as usize;
            self.wheel[bucket].push(index);
            if requests[slot].active {
                self.sleeping_active += 1;
            }
            self.sleeping_held_sum += self.held[slot];
        }
        self.round += 1;
        self.round_begun = false;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PerformanceMarket, StaticShare, WeightedFair};

    fn request(weight: f64, urgency: f64, ceiling: f64) -> AppRequest {
        AppRequest {
            active: true,
            weight,
            urgency,
            max_power_watts: ceiling,
        }
    }

    #[test]
    fn tolerance_zero_is_bitwise_identical_to_the_full_fold() {
        let requests = vec![
            request(1.0, 1.3, 40.0),
            request(2.0, 0.8, 25.0),
            AppRequest {
                active: false,
                ..request(3.0, 1.0, 60.0)
            },
            request(0.5, 2.0, 15.0),
        ];
        for make in [
            || Box::new(StaticShare) as Box<dyn ArbitrationPolicy>,
            || Box::new(WeightedFair) as Box<dyn ArbitrationPolicy>,
            || Box::new(PerformanceMarket::default()) as Box<dyn ArbitrationPolicy>,
        ] {
            let mut full = make();
            let mut wrapped = make();
            let mut engine = IncrementalArbiter::new(0.0);
            let mut expected = Vec::new();
            let mut actual = Vec::new();
            for round in 0..4 {
                let budget = 60.0 + round as f64;
                full.arbitrate(budget, &requests, &mut expected);
                let outcome =
                    engine.arbitrate(wrapped.as_mut(), budget, &requests, &mut actual);
                assert!(outcome.full, "tolerance 0 always runs the full fold");
                assert_eq!(outcome.skipped, 0);
                assert_eq!(outcome.slept, 0);
                assert_eq!(outcome.rearbitrated, 3, "active apps re-arbitrated");
                let expected_bits: Vec<u64> = expected.iter().map(|w| w.to_bits()).collect();
                let actual_bits: Vec<u64> = actual.iter().map(|w| w.to_bits()).collect();
                assert_eq!(expected_bits, actual_bits, "{}", full.name());
            }
        }
    }

    #[test]
    fn steady_requests_skip_and_hold_their_awards() {
        let requests = vec![request(1.0, 1.0, 40.0), request(1.0, 1.0, 40.0)];
        let mut policy = WeightedFair;
        let mut engine = IncrementalArbiter::new(0.05);
        let mut awards = Vec::new();
        let first = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(first.full, "everything is dirty on the first round");
        let held = awards.clone();
        let second = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(!second.full);
        assert_eq!(second.skipped, 2);
        assert_eq!(second.rearbitrated, 0);
        assert_eq!(awards, held, "held awards are byte-stable");
        assert!(engine.steady(0) && engine.steady(1));
    }

    #[test]
    fn a_moved_request_reenters_the_fold_and_budget_is_conserved() {
        let mut requests = vec![
            request(1.0, 1.0, 40.0),
            request(1.0, 1.0, 40.0),
            request(1.0, 1.0, 40.0),
        ];
        let mut policy = PerformanceMarket::default();
        let mut engine = IncrementalArbiter::new(0.02);
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        requests[1].urgency = 3.0; // far past the tolerance
        let round = engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        assert_eq!(round.rearbitrated, 1);
        assert_eq!(round.skipped, 2);
        assert!(engine.dirty_mask() == [false, true, false]);
        let total: f64 = awards.iter().sum();
        assert!(total <= 60.0 * (1.0 + 1e-9), "budget conserved: {total}");
        assert!(awards.iter().all(|w| w.is_finite() && *w >= 0.0));
    }

    #[test]
    fn lifecycle_marks_and_budget_changes_force_rearbitration() {
        let requests = vec![request(1.0, 1.0, 40.0), request(1.0, 1.0, 40.0)];
        let mut policy = WeightedFair;
        let mut engine = IncrementalArbiter::new(0.1);
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        engine.mark_dirty(0);
        assert!(!engine.steady(0), "a marked slot is not steady");
        let round = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(engine.dirty_mask() == [true, false]);
        assert_eq!(round.rearbitrated, 1);
        engine.mark_all_dirty();
        let round = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(round.full, "fleet-wide marks run the full fold");
    }

    #[test]
    fn presence_flips_and_new_slots_are_always_dirty() {
        let mut requests = vec![request(1.0, 1.0, 40.0)];
        let mut policy = StaticShare;
        let mut engine = IncrementalArbiter::new(0.5);
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        // A newly-registered slot and a departure both re-enter the fold.
        requests.push(request(1.0, 1.0, 40.0));
        requests[0].active = false;
        let round = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(round.full, "both slots dirty");
        assert_eq!(awards[0], 0.0, "absent slots are awarded exactly 0");
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn non_finite_tolerance_panics() {
        let _ = IncrementalArbiter::new(f64::NAN);
    }

    // ---- Wake scheduler ------------------------------------------------

    /// Wrapper that hides a policy's index invariance, forcing the masked
    /// fallback — used to pin compacted == masked bitwise.
    struct MaskedOnly<P: ArbitrationPolicy>(P);
    impl<P: ArbitrationPolicy> ArbitrationPolicy for MaskedOnly<P> {
        fn name(&self) -> &'static str {
            "masked-only"
        }
        fn arbitrate(&mut self, budget: f64, requests: &[AppRequest], awards: &mut Vec<f64>) {
            self.0.arbitrate(budget, requests, awards);
        }
    }

    #[test]
    fn horizon_zero_wake_config_is_bit_identical_to_no_wake_config() {
        let mut plain = IncrementalArbiter::new(0.05);
        let mut zeroed =
            IncrementalArbiter::new(0.05).with_wake(WakeConfig { steady_quanta: 4, horizon: 0 });
        assert!(!zeroed.wake_enabled());
        let mut policy_a = PerformanceMarket::default();
        let mut policy_b = PerformanceMarket::default();
        let mut requests = vec![
            request(1.0, 1.0, 40.0),
            request(2.0, 1.5, 30.0),
            request(0.5, 0.8, 20.0),
        ];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for round in 0..12 {
            // Churn one slot every third round.
            if round % 3 == 0 {
                let slot = round % requests.len();
                requests[slot].urgency = 1.0 + round as f64 * 0.4;
            }
            let oa = plain.arbitrate(&mut policy_a, 55.0, &requests, &mut a);
            let ob = zeroed.arbitrate(&mut policy_b, 55.0, &requests, &mut b);
            let bits_a: Vec<u64> = a.iter().map(|w| w.to_bits()).collect();
            let bits_b: Vec<u64> = b.iter().map(|w| w.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "round {round}");
            assert_eq!(oa, ob, "round {round}");
            assert_eq!(ob.slept, 0, "horizon 0 never sleeps");
        }
    }

    #[test]
    fn steady_slots_sleep_hold_awards_and_the_ledger_partitions() {
        let config = WakeConfig {
            steady_quanta: 2,
            horizon: 8,
        };
        let mut engine = IncrementalArbiter::new(0.05).with_wake(config);
        let mut policy = PerformanceMarket::default();
        let requests = vec![
            request(1.0, 1.0, 40.0),
            request(2.0, 1.5, 30.0),
            AppRequest {
                active: false,
                ..request(1.0, 1.0, 10.0)
            },
        ];
        let mut awards = Vec::new();
        let mut baseline = Vec::new();
        for round in 0..6 {
            let outcome = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
            let active = requests.iter().filter(|r| r.active).count();
            assert_eq!(
                outcome.slept + outcome.skipped + outcome.rearbitrated,
                active,
                "round {round}: every active slot is exactly one of slept/skipped/rearbitrated"
            );
            if round == 0 {
                baseline = awards.clone();
            } else {
                assert_eq!(awards, baseline, "steady awards are byte-stable");
            }
        }
        // Rounds 0 (full) and 1-2 (clean streaks) keep everyone awake;
        // after the streak reaches 2 the active slots sleep.
        assert!(engine.is_sleeping(0) && engine.is_sleeping(1));
        assert!(engine.is_sleeping(2), "inactive slots sleep too");
        assert_eq!(engine.sleeping_active(), 2);
        let outcome = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert_eq!(outcome.slept, 2);
        assert_eq!(outcome.skipped, 0);
        assert_eq!(awards, baseline, "sleeping slots hold their awards");
    }

    #[test]
    fn deadline_expiry_wakes_a_sleeping_slot() {
        let config = WakeConfig {
            steady_quanta: 1,
            horizon: 3,
        };
        let mut engine = IncrementalArbiter::new(0.05).with_wake(config);
        let mut policy = WeightedFair;
        let requests = vec![request(1.0, 1.0, 40.0)];
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards); // full
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards); // clean -> sleeps
        assert!(engine.is_sleeping(0));
        // Sleeps through horizon - 1 rounds, then the wheel wakes it.
        let mut slept_rounds = 0;
        for _ in 0..config.horizon {
            let outcome = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
            if outcome.slept == 1 {
                slept_rounds += 1;
            } else {
                break;
            }
        }
        assert_eq!(slept_rounds, config.horizon - 1, "bounded sleep");
        assert!(!engine.is_sleeping(0) || engine.sleeping_active() == 1);
    }

    #[test]
    fn an_external_wake_reenters_a_changed_request_and_conserves_budget() {
        let mut engine = IncrementalArbiter::new(0.05).with_wake(WakeConfig {
            steady_quanta: 1,
            horizon: 16,
        });
        let mut policy = PerformanceMarket::default();
        let mut requests = vec![
            request(1.0, 1.0, 40.0),
            request(1.0, 1.0, 40.0),
            request(1.0, 1.0, 40.0),
        ];
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        assert_eq!(engine.sleeping_active(), 3);
        let held = awards.clone();
        // The caller saw slot 1 move: wake it with the new request.
        requests[1].urgency = 4.0;
        engine.wake(1);
        let outcome = engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        assert_eq!(outcome.rearbitrated, 1);
        assert_eq!(outcome.slept, 2);
        assert_eq!(awards[0], held[0], "sleepers hold their awards bitwise");
        assert_eq!(awards[2], held[2], "sleepers hold their awards bitwise");
        let total: f64 = awards.iter().sum();
        assert!(total <= 60.0 * (1.0 + 1e-9), "budget conserved: {total}");
        assert!(awards[1].is_finite() && awards[1] >= 0.0);
    }

    #[test]
    fn fleet_invalidation_wakes_everyone_for_a_full_fold() {
        let mut engine = IncrementalArbiter::new(0.05).with_wake(WakeConfig {
            steady_quanta: 1,
            horizon: 16,
        });
        let mut policy = WeightedFair;
        let requests = vec![request(1.0, 1.0, 40.0), request(3.0, 1.0, 40.0)];
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert_eq!(engine.sleeping_active(), 2);
        // A budget step invalidates every held award: no slot sleeps
        // through it.
        engine.mark_all_dirty();
        assert_eq!(engine.sleeping_active(), 0);
        let outcome = engine.arbitrate(&mut policy, 20.0, &requests, &mut awards);
        assert!(outcome.full, "everyone woken and re-folded");
        assert_eq!(outcome.slept, 0);
        let total: f64 = awards.iter().sum();
        assert!(total <= 20.0 * (1.0 + 1e-9), "new budget conserved: {total}");
    }

    #[test]
    fn compacted_and_masked_residual_folds_are_bit_identical() {
        let config = WakeConfig {
            steady_quanta: 1,
            horizon: 8,
        };
        let mut compacted = IncrementalArbiter::new(0.05).with_wake(config);
        let mut masked = IncrementalArbiter::new(0.05).with_wake(config);
        let mut fast = PerformanceMarket::default();
        let mut slow = MaskedOnly(PerformanceMarket::default());
        assert!(fast.index_invariant() && !slow.index_invariant());
        let mut requests: Vec<AppRequest> =
            (0..16).map(|i| request(1.0 + i as f64 * 0.3, 1.0, 20.0)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for round in 0..10 {
            // Move a couple of slots; wake them in both engines.
            for slot in [round % 16, (round * 5 + 3) % 16] {
                requests[slot].urgency = 1.0 + ((round * 7 + slot) % 5) as f64;
                compacted.wake(slot);
                masked.wake(slot);
            }
            compacted.arbitrate(&mut fast, 90.0, &requests, &mut a);
            masked.arbitrate(&mut slow, 90.0, &requests, &mut b);
            let bits_a: Vec<u64> = a.iter().map(|w| w.to_bits()).collect();
            let bits_b: Vec<u64> = b.iter().map(|w| w.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "round {round}");
        }
    }

    #[test]
    fn begin_round_exposes_the_awake_list_for_caller_stages() {
        let mut engine = IncrementalArbiter::new(0.05).with_wake(WakeConfig {
            steady_quanta: 1,
            horizon: 8,
        });
        let mut policy = WeightedFair;
        let requests = vec![request(1.0, 1.0, 40.0), request(1.0, 1.0, 40.0)];
        let mut awards = Vec::new();
        assert_eq!(engine.begin_round(2), Some(&[0u32, 1][..]));
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        // Both slots slept at the end of the last round, but leave the
        // participant list only when the next round begins.
        assert_eq!(engine.awake_slots(), &[0, 1]);
        assert_eq!(engine.begin_round(2), Some(&[][..]));
        // An engine without wake scheduling reports no list at all.
        let mut off = IncrementalArbiter::new(0.05);
        assert_eq!(off.begin_round(2), None);
    }
}
