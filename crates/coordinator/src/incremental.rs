//! Incremental arbitration: re-arbitrate only the applications whose
//! requests actually moved.
//!
//! At million-app fleet sizes the full arbitration fold is almost entirely
//! redundant work — most applications' [`AppRequest`]s barely move between
//! quanta. The [`IncrementalArbiter`] keeps a struct-of-arrays snapshot of
//! the request each application was last arbitrated under, a **dirty set**
//! driven by request deltas, lifecycle events, and health transitions, and
//! the award each clean application is currently holding. Each quantum it
//! re-runs the wrapped [`ArbitrationPolicy`] only over the dirty
//! applications, against the *residual* budget left after the clean
//! applications' held awards — a delta update of WeightedFair's water level
//! and the market's clearing price (both are pure functions of the
//! participating request set and the budget, so shrinking the set and the
//! budget together is exact).
//!
//! # Tolerance-0 determinism
//!
//! The degenerate tolerance `0.0` marks **every** application dirty every
//! quantum (a request delta of exactly zero is not *strictly inside* a zero
//! tolerance), so the engine falls through to one [`ArbitrationPolicy::arbitrate`]
//! call over the full request slice — byte-for-byte the call the
//! non-incremental path makes. Incremental arbitration at tolerance 0 is
//! therefore *bit-identical* to full re-arbitration by construction, which
//! is exactly what the differential suite
//! (`tests/incremental_props.rs`) pins across policies, fleets, churn, and
//! worker counts.
//!
//! # Budget conservation at any tolerance
//!
//! Clean applications hold their previous award, clamped to their current
//! absorption ceiling (clamping only ever shrinks). The dirty set is
//! arbitrated under `budget − Σ held`, and every shipped policy conserves
//! its budget, so the merged award vector sums to at most the full budget
//! at every tolerance — pinned by the nonzero-tolerance properties of the
//! same suite.

use crate::policy::{AppRequest, ArbitrationPolicy};

/// What one incremental arbitration round did, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalOutcome {
    /// Active applications re-arbitrated this round (their request moved
    /// past the tolerance or an event marked them dirty).
    pub rearbitrated: usize,
    /// Active applications that kept their held award without entering the
    /// arbitration fold.
    pub skipped: usize,
    /// Whether the round degenerated to one full-fleet policy call (always
    /// true at tolerance 0).
    pub full: bool,
}

/// The incremental arbitration engine (see the module docs).
///
/// Drives any [`ArbitrationPolicy`] incrementally; the
/// [`crate::Coordinator`] embeds one when an arbitration tolerance is set
/// ([`crate::Coordinator::with_arbitration_tolerance`]), and the fleet-scale
/// harness (`fig5 --fleet N`) drives one directly over synthetic request
/// arrays.
#[derive(Debug, Default)]
pub struct IncrementalArbiter {
    tolerance: f64,
    /// Request snapshot at each slot's last arbitration (struct-of-arrays:
    /// one dense request row per app, streamed in slot order).
    last_requests: Vec<AppRequest>,
    /// The award each slot is holding from its last arbitration.
    held: Vec<f64>,
    /// Slots marked dirty by events since the last round.
    marked: Vec<bool>,
    /// The dirty mask of the most recent round (kept for the caller's
    /// decide stage and telemetry).
    dirty: Vec<bool>,
    /// Force a full round (budget/policy change, or first round).
    fleet_dirty: bool,
    scratch_requests: Vec<AppRequest>,
    scratch_awards: Vec<f64>,
}

/// Largest relative per-field movement between two requests; infinite when
/// presence flipped, NaN-propagating so non-finite fields always re-enter
/// the fold.
fn request_delta(current: &AppRequest, snapshot: &AppRequest) -> f64 {
    if current.active != snapshot.active {
        return f64::INFINITY;
    }
    let relative = |now: f64, then: f64| {
        let scale = now.abs().max(then.abs()).max(1.0);
        (now - then).abs() / scale
    };
    relative(current.weight, snapshot.weight)
        .max(relative(current.urgency, snapshot.urgency))
        .max(relative(current.max_power_watts, snapshot.max_power_watts))
}

impl IncrementalArbiter {
    /// An engine that re-arbitrates slots whose request moved by at least
    /// `tolerance` (largest relative field movement; 0 = every round).
    ///
    /// # Panics
    ///
    /// Panics unless the tolerance is finite and non-negative.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "arbitration tolerance must be finite and non-negative, got {tolerance}"
        );
        IncrementalArbiter {
            tolerance,
            fleet_dirty: true,
            ..IncrementalArbiter::default()
        }
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Marks one slot dirty: it re-enters the fold next round regardless of
    /// its request delta (lifecycle events, health transitions).
    pub fn mark_dirty(&mut self, index: usize) {
        if index >= self.marked.len() {
            self.marked.resize(index + 1, false);
        }
        self.marked[index] = true;
    }

    /// Marks the whole fleet dirty: the next round is a full policy call
    /// (budget or policy replacement invalidates every held award).
    pub fn mark_all_dirty(&mut self) {
        self.fleet_dirty = true;
    }

    /// The dirty mask of the most recent [`Self::arbitrate`] round, one
    /// flag per request slot (empty before the first round). The caller's
    /// decide stage uses this to skip clean applications.
    pub fn dirty_mask(&self) -> &[bool] {
        &self.dirty
    }

    /// Whether `index` can skip the coming quantum entirely: it was clean
    /// at the most recent round, so — absent a fresh report or a new mark —
    /// its observation and request are already current.
    pub fn steady(&self, index: usize) -> bool {
        self.tolerance > 0.0
            && !self.fleet_dirty
            && self.dirty.get(index).is_some_and(|&dirty| !dirty)
            && self.marked.get(index).is_none_or(|&marked| !marked)
    }

    /// One incremental round: splits `budget_watts` across `requests` into
    /// `awards` through `policy`, re-arbitrating only the dirty slots (see
    /// the module docs). Slots never seen before are dirty by definition;
    /// growing or shrinking the slice resets the new/old slots accordingly.
    pub fn arbitrate(
        &mut self,
        policy: &mut dyn ArbitrationPolicy,
        budget_watts: f64,
        requests: &[AppRequest],
        awards: &mut Vec<f64>,
    ) -> IncrementalOutcome {
        let fleet = requests.len();
        // Slots never seen before start marked (dirty by definition);
        // existing slots keep whatever marks they carried.
        self.marked.resize(fleet, true);
        self.last_requests.resize(
            fleet,
            AppRequest {
                active: false,
                weight: 1.0,
                urgency: 1.0,
                max_power_watts: 0.0,
            },
        );
        self.held.resize(fleet, 0.0);
        self.dirty.clear();
        self.dirty.resize(fleet, false);

        // ---- Classify: the dirty set -------------------------------
        // "Moved" unless the delta is *strictly inside* the tolerance, so
        // tolerance 0 marks everything and a NaN delta always re-enters.
        let mut dirty_count = 0;
        for (index, request) in requests.iter().enumerate() {
            let delta = request_delta(request, &self.last_requests[index]);
            let moved = delta.partial_cmp(&self.tolerance) != Some(std::cmp::Ordering::Less);
            let dirty = self.fleet_dirty || self.marked[index] || moved;
            self.dirty[index] = dirty;
            if dirty {
                dirty_count += 1;
            }
        }
        self.marked.iter_mut().for_each(|marked| *marked = false);
        self.fleet_dirty = false;

        let mut outcome = IncrementalOutcome {
            full: dirty_count == fleet,
            ..IncrementalOutcome::default()
        };
        for (request, &dirty) in requests.iter().zip(&self.dirty) {
            if !request.active {
                continue;
            }
            if dirty {
                outcome.rearbitrated += 1;
            } else {
                outcome.skipped += 1;
            }
        }

        if outcome.full {
            // Degenerate round (always at tolerance 0): byte-for-byte the
            // call the non-incremental path makes.
            policy.arbitrate(budget_watts, requests, awards);
            self.last_requests.copy_from_slice(requests);
            self.held.copy_from_slice(awards);
            return outcome;
        }

        if dirty_count == 0 {
            // Fully steady quantum: no fold at all. Every slot holds its
            // award (clamped to its current ceiling) and the policy is not
            // consulted — the event-driven skip the engine exists for.
            for (request, held) in requests.iter().zip(self.held.iter_mut()) {
                *held = held.min(request.max_power_watts.max(0.0));
            }
            awards.clear();
            awards.extend_from_slice(&self.held);
            return outcome;
        }

        // ---- Hold the clean slots, fold the dirty residual ---------
        // Clean awards clamp to the current ceiling (clamping only
        // shrinks), then the dirty set is arbitrated under the residual
        // budget — the delta update of the water level / clearing price.
        let mut held_total = 0.0;
        for ((request, &dirty), held) in
            requests.iter().zip(&self.dirty).zip(self.held.iter_mut())
        {
            if dirty {
                continue;
            }
            *held = held.min(request.max_power_watts.max(0.0));
            held_total += *held;
        }
        let residual = (budget_watts - held_total).max(0.0);
        self.scratch_requests.clear();
        self.scratch_requests.extend(
            requests
                .iter()
                .zip(&self.dirty)
                .map(|(request, &dirty)| AppRequest {
                    active: request.active && dirty,
                    ..*request
                }),
        );
        policy.arbitrate(residual, &self.scratch_requests, &mut self.scratch_awards);

        awards.clear();
        awards.extend((0..fleet).map(|index| {
            if self.dirty[index] {
                self.last_requests[index] = requests[index];
                self.held[index] = self.scratch_awards[index];
            }
            self.held[index]
        }));
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PerformanceMarket, StaticShare, WeightedFair};

    fn request(weight: f64, urgency: f64, ceiling: f64) -> AppRequest {
        AppRequest {
            active: true,
            weight,
            urgency,
            max_power_watts: ceiling,
        }
    }

    #[test]
    fn tolerance_zero_is_bitwise_identical_to_the_full_fold() {
        let requests = vec![
            request(1.0, 1.3, 40.0),
            request(2.0, 0.8, 25.0),
            AppRequest {
                active: false,
                ..request(3.0, 1.0, 60.0)
            },
            request(0.5, 2.0, 15.0),
        ];
        for make in [
            || Box::new(StaticShare) as Box<dyn ArbitrationPolicy>,
            || Box::new(WeightedFair) as Box<dyn ArbitrationPolicy>,
            || Box::new(PerformanceMarket::default()) as Box<dyn ArbitrationPolicy>,
        ] {
            let mut full = make();
            let mut wrapped = make();
            let mut engine = IncrementalArbiter::new(0.0);
            let mut expected = Vec::new();
            let mut actual = Vec::new();
            for round in 0..4 {
                let budget = 60.0 + round as f64;
                full.arbitrate(budget, &requests, &mut expected);
                let outcome =
                    engine.arbitrate(wrapped.as_mut(), budget, &requests, &mut actual);
                assert!(outcome.full, "tolerance 0 always runs the full fold");
                assert_eq!(outcome.skipped, 0);
                assert_eq!(outcome.rearbitrated, 3, "active apps re-arbitrated");
                let expected_bits: Vec<u64> = expected.iter().map(|w| w.to_bits()).collect();
                let actual_bits: Vec<u64> = actual.iter().map(|w| w.to_bits()).collect();
                assert_eq!(expected_bits, actual_bits, "{}", full.name());
            }
        }
    }

    #[test]
    fn steady_requests_skip_and_hold_their_awards() {
        let requests = vec![request(1.0, 1.0, 40.0), request(1.0, 1.0, 40.0)];
        let mut policy = WeightedFair;
        let mut engine = IncrementalArbiter::new(0.05);
        let mut awards = Vec::new();
        let first = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(first.full, "everything is dirty on the first round");
        let held = awards.clone();
        let second = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(!second.full);
        assert_eq!(second.skipped, 2);
        assert_eq!(second.rearbitrated, 0);
        assert_eq!(awards, held, "held awards are byte-stable");
        assert!(engine.steady(0) && engine.steady(1));
    }

    #[test]
    fn a_moved_request_reenters_the_fold_and_budget_is_conserved() {
        let mut requests = vec![
            request(1.0, 1.0, 40.0),
            request(1.0, 1.0, 40.0),
            request(1.0, 1.0, 40.0),
        ];
        let mut policy = PerformanceMarket::default();
        let mut engine = IncrementalArbiter::new(0.02);
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        requests[1].urgency = 3.0; // far past the tolerance
        let round = engine.arbitrate(&mut policy, 60.0, &requests, &mut awards);
        assert_eq!(round.rearbitrated, 1);
        assert_eq!(round.skipped, 2);
        assert!(engine.dirty_mask() == [false, true, false]);
        let total: f64 = awards.iter().sum();
        assert!(total <= 60.0 * (1.0 + 1e-9), "budget conserved: {total}");
        assert!(awards.iter().all(|w| w.is_finite() && *w >= 0.0));
    }

    #[test]
    fn lifecycle_marks_and_budget_changes_force_rearbitration() {
        let requests = vec![request(1.0, 1.0, 40.0), request(1.0, 1.0, 40.0)];
        let mut policy = WeightedFair;
        let mut engine = IncrementalArbiter::new(0.1);
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        engine.mark_dirty(0);
        assert!(!engine.steady(0), "a marked slot is not steady");
        let round = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(engine.dirty_mask() == [true, false]);
        assert_eq!(round.rearbitrated, 1);
        engine.mark_all_dirty();
        let round = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(round.full, "fleet-wide marks run the full fold");
    }

    #[test]
    fn presence_flips_and_new_slots_are_always_dirty() {
        let mut requests = vec![request(1.0, 1.0, 40.0)];
        let mut policy = StaticShare;
        let mut engine = IncrementalArbiter::new(0.5);
        let mut awards = Vec::new();
        engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        // A newly-registered slot and a departure both re-enter the fold.
        requests.push(request(1.0, 1.0, 40.0));
        requests[0].active = false;
        let round = engine.arbitrate(&mut policy, 50.0, &requests, &mut awards);
        assert!(round.full, "both slots dirty");
        assert_eq!(awards[0], 0.0, "absent slots are awarded exactly 0");
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn non_finite_tolerance_panics() {
        let _ = IncrementalArbiter::new(f64::NAN);
    }
}
