//! Two-level (rack → datacenter) coordination.
//!
//! One [`Coordinator`] arbitrates one machine. A datacenter is many
//! machines under one power envelope, and the paper's platform premise
//! (§2) scales the same way its single-machine story does: each level runs
//! the *same* observe–arbitrate–decide structure over the level below it.
//! This module adds that second level:
//!
//! * [`RackCoordinator`] — one fleet shard: a [`Coordinator`] owning the
//!   rack's applications, plus the rack's own [`xeon_sim::MachineMeter`]
//!   auditing the power it actually drew against the budget it was awarded.
//! * [`DatacenterArbiter`] — owns N racks and re-runs an
//!   [`ArbitrationPolicy`] — the *same trait* the racks use on their apps —
//!   over rack-level aggregate requests ([`Coordinator::fleet_request`]),
//!   so the budget flows datacenter → rack → app.
//!
//! Every datacenter step is three phases, mirroring [`Coordinator::step`]:
//!
//! 1. **observe** — each rack folds its fleet into one aggregate request
//!    (sum of present weights, weight-weighted mean urgency, summed
//!    absorption ceilings);
//! 2. **arbitrate** — the datacenter policy splits the datacenter budget
//!    into per-rack watt envelopes (a sequential fold, exactly like the
//!    rack-level stage 2);
//! 3. **step** — each rack adopts its envelope as its machine budget and
//!    runs an ordinary coordinator step under it.
//!
//! Phases 1 and 3 are per-rack and independent, so they fan out across the
//! same persistent [`exec::ExecPool`] machinery the racks themselves shard
//! on — and for the same reason the result is bit-identical at every
//! worker count.
//!
//! ## The flat coordinator is the 1-rack degenerate case
//!
//! With a single rack under a [`StaticShare`](crate::StaticShare)
//! datacenter policy and the default datacenter headroom of 1.0, the rack
//! is awarded `min(budget, Σ app ceilings)`; whenever the fleet can absorb
//! the budget (the common case — any app whose power draw is still unknown
//! absorbs the whole budget by construction), that is *exactly* the
//! datacenter budget, and the hierarchy reproduces the flat
//! [`Coordinator`] bit for bit (pinned by `tests/hierarchy_props.rs`).
//! Water-filling datacenter policies divide through the weight sum, whose
//! rounding makes the 1-rack award agree only to within an ulp — the
//! degenerate pin therefore uses `StaticShare`, and the conservation
//! property is pinned for all three policies under arbitrary partitions.

use std::sync::Arc;

use exec::ExecPool;
use obs::{Counter, Event, EventKind, Recorder, Stage, StageClock};
use seec::SeecError;
use xeon_sim::MachineMeter;

use crate::coordinator::{AppHandle, Coordinator, ManagedApp, StepSummary};
use crate::policy::{AppRequest, ArbitrationPolicy};

/// What a rack does when its fleet's physical draw exceeds the watt
/// envelope the datacenter awarded it.
///
/// [`Audit`](EnforcementMode::Audit) (the default) is the historical
/// behaviour: the rack's [`MachineMeter`] records the overdraw and the
/// violation shows up in the audit, but the power is drawn — the rack
/// trusts its applications' closed loops to converge back under the
/// envelope. [`Clamp`](EnforcementMode::Clamp) models a hard rack-level
/// breaker (per-circuit power capping): [`RackCoordinator::advance`]
/// debits each report against the quantum's energy allowance
/// (`envelope × quantum length`) in arrival order, and a report that would
/// overdraw the allowance is *throttled* — work and power scale down by
/// the same factor, because an application denied watts also loses the
/// progress those watts would have bought. With Clamp the meter can never
/// record a violated interval; the cost is paid in throughput by whichever
/// applications report after the allowance runs dry, and
/// [`RackCoordinator::clamp_events`] / [`RackCoordinator::shed_joules`]
/// expose how often and how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcementMode {
    /// Record overdraw in the meter but let the power flow (default).
    #[default]
    Audit,
    /// Hard-throttle reports that would overdraw the rack envelope.
    Clamp,
}

/// One rack: a fleet shard under its own [`Coordinator`], with a
/// rack-level [`MachineMeter`] auditing the power the rack's applications
/// actually drew against the budget the datacenter awarded it.
///
/// The meter is fed from the data the rack already receives: every
/// [`Self::advance`] accumulates `power × duration` into the in-flight
/// interval, and the step that closes the interval records its mean power
/// against the cap that governed it (the award adopted at the *previous*
/// step), before adopting the new award. Simulation time is assumed to
/// start at 0, the workspace convention.
pub struct RackCoordinator {
    name: String,
    coordinator: Coordinator,
    meter: MachineMeter,
    interval_energy_joules: f64,
    last_step_time: f64,
    awarded_watts: f64,
    enforcement: EnforcementMode,
    clamp_events: u64,
    shed_joules: f64,
    /// Telemetry recorder shared with (usually) every rack of a
    /// datacenter; also attached to the inner coordinator.
    observer: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for RackCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RackCoordinator")
            .field("name", &self.name)
            .field("apps", &self.coordinator.len())
            .field("awarded_watts", &self.awarded_watts)
            .finish_non_exhaustive()
    }
}

impl RackCoordinator {
    /// A rack named `name` driving `coordinator`'s fleet. The coordinator's
    /// construction budget doubles as the rack's initial meter cap; both
    /// are replaced by the datacenter's award at every step.
    pub fn new(name: impl Into<String>, coordinator: Coordinator) -> Self {
        let initial_budget = coordinator.budget_watts();
        RackCoordinator {
            name: name.into(),
            coordinator,
            meter: MachineMeter::new(initial_budget),
            interval_energy_joules: 0.0,
            last_step_time: 0.0,
            awarded_watts: 0.0,
            enforcement: EnforcementMode::Audit,
            clamp_events: 0,
            shed_joules: 0.0,
            observer: None,
        }
    }

    /// Attaches a telemetry [`Recorder`] to the rack and its inner
    /// coordinator (see [`Coordinator::with_obs`]): breaker clamps raise
    /// [`EventKind::EnvelopeClamp`], meter intervals over the envelope
    /// count as [`Counter::RackMeterViolations`], and the inner
    /// coordinator's stages record as usual.
    pub fn with_obs(mut self, recorder: Arc<Recorder>) -> Self {
        self.set_obs(Some(recorder));
        self
    }

    /// Attaches or detaches the telemetry recorder mid-run (see
    /// [`Self::with_obs`]).
    pub fn set_obs(&mut self, recorder: Option<Arc<Recorder>>) {
        self.coordinator.set_obs(recorder.clone());
        self.observer = recorder;
    }

    /// Sets the rack's [`EnforcementMode`] (builder form; default
    /// [`Audit`](EnforcementMode::Audit), which is byte-for-byte the
    /// pre-enforcement behaviour).
    pub fn with_enforcement(mut self, mode: EnforcementMode) -> Self {
        self.enforcement = mode;
        self
    }

    /// Replaces the rack's [`EnforcementMode`] mid-run (takes effect on the
    /// next [`Self::advance`]).
    pub fn set_enforcement(&mut self, mode: EnforcementMode) {
        self.enforcement = mode;
    }

    /// The rack's current [`EnforcementMode`].
    pub fn enforcement(&self) -> EnforcementMode {
        self.enforcement
    }

    /// How many [`Self::advance`] reports the breaker throttled (0 in
    /// [`Audit`](EnforcementMode::Audit) mode).
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }

    /// Total energy the breaker refused, in joules (0 in
    /// [`Audit`](EnforcementMode::Audit) mode).
    pub fn shed_joules(&self) -> f64 {
        self.shed_joules
    }

    /// The rack's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rack's fleet coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Mutable access to the rack's fleet coordinator (registration,
    /// policy swaps, tuning).
    pub fn coordinator_mut(&mut self) -> &mut Coordinator {
        &mut self.coordinator
    }

    /// The rack-level power audit: what the rack drew vs. what it was
    /// awarded.
    pub fn meter(&self) -> &MachineMeter {
        &self.meter
    }

    /// The watt envelope the datacenter awarded at the most recent step
    /// (0 before the first step).
    pub fn awarded_watts(&self) -> f64 {
        self.awarded_watts
    }

    /// Registers an application on this rack (see
    /// [`Coordinator::register`]).
    pub fn register(&mut self, app: ManagedApp) -> AppHandle {
        self.coordinator.register(app)
    }

    /// Retires an application on this rack (see [`Coordinator::retire`]).
    pub fn retire(&mut self, handle: AppHandle) {
        self.coordinator.retire(handle)
    }

    /// The rack's physical metering-and-enforcement point: debits one
    /// quantum's *actual* draw against the in-flight interval and, under
    /// [`EnforcementMode::Clamp`], throttles it to the envelope's remaining
    /// energy allowance (`envelope × elapsed`, arrival order), recording
    /// the refused energy in [`Self::shed_joules`]. Returns the admitted
    /// `(work, power)` — equal to the input under
    /// [`EnforcementMode::Audit`]; under Clamp the breaker is a physical
    /// gate (per-circuit power capping), so callers should adopt the
    /// admitted values as ground truth for whatever they meter downstream.
    pub fn admit(
        &mut self,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) -> (f64, f64) {
        let duration = (end - start).max(0.0);
        let (work_units, power_above_idle_watts) = match self.enforcement {
            EnforcementMode::Audit => (work_units, power_above_idle_watts),
            EnforcementMode::Clamp => {
                self.clamp_report(start, duration, work_units, power_above_idle_watts)
            }
        };
        self.interval_energy_joules += power_above_idle_watts * duration;
        (work_units, power_above_idle_watts)
    }

    /// Feeds one quantum's outcome back to an application (see
    /// [`Coordinator::advance`]) after routing it through [`Self::admit`],
    /// and returns the admitted `(work, power)`.
    ///
    /// Here the app's telemetry and its physical draw coincide — the
    /// common case. Harnesses that separate the two (a faulty application
    /// misreports what it actually drew) call [`Self::admit`] with the
    /// physical truth and [`Self::advance_report`] with whatever the app
    /// claims, so enforcement watches the rail rather than the claim.
    pub fn advance(
        &mut self,
        handle: AppHandle,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) -> (f64, f64) {
        let admitted = self.admit(start, end, work_units, power_above_idle_watts);
        self.coordinator
            .advance(handle, start, end, admitted.0, admitted.1);
        admitted
    }

    /// Telemetry-only feedback: forwards the app's *claimed*
    /// `(work, power)` to its runtime without touching the rack's physical
    /// accounting (which [`Self::admit`] owns).
    pub fn advance_report(
        &mut self,
        handle: AppHandle,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) {
        self.coordinator
            .advance(handle, start, end, work_units, power_above_idle_watts);
    }

    /// The breaker: throttles one report so the interval's accumulated
    /// energy never exceeds the envelope's allowance. Returns the admitted
    /// `(work, power)`.
    fn clamp_report(
        &mut self,
        start: f64,
        duration: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) -> (f64, f64) {
        // Before the first datacenter award lands, the rack's own budget is
        // the envelope (the same value the meter was constructed with).
        let envelope = if self.awarded_watts > 0.0 {
            self.awarded_watts
        } else {
            self.coordinator.budget_watts()
        };
        let elapsed = (start + duration - self.last_step_time).max(duration);
        let allowance = envelope * elapsed;
        let contribution = power_above_idle_watts * duration;
        if !contribution.is_finite() || contribution <= 0.0 || !allowance.is_finite() {
            return (work_units, power_above_idle_watts);
        }
        let headroom = (allowance - self.interval_energy_joules).max(0.0);
        if contribution <= headroom {
            return (work_units, power_above_idle_watts);
        }
        // Shaved by a nano-fraction so a saturated interval's re-rounded
        // sum of admitted contributions can never land an ulp *above* the
        // allowance (a breaker that overdraws by one ulp still audits as
        // a violated interval).
        let admitted = headroom / contribution * (1.0 - 1e-9);
        self.clamp_events += 1;
        self.shed_joules += contribution - headroom;
        // Breaker telemetry: admits run on the sequential driver thread in
        // report-arrival order, so direct emission stays deterministic.
        if let Some(observer) = &self.observer {
            observer.count(Counter::ClampEvents);
            observer.emit(Event {
                quantum: self.coordinator.quantum() as u64,
                kind: EventKind::EnvelopeClamp {
                    shed_joules: contribution - headroom,
                },
            });
        }
        (work_units * admitted, power_above_idle_watts * admitted)
    }

    /// Closes the in-flight metering interval (judged against the award in
    /// force while it ran), adopts `awarded_watts` as the rack budget, and
    /// steps the rack's fleet under it. Awards of exactly 0 W (an inactive
    /// rack) leave the previous budget in place — with no present apps the
    /// step hands out nothing regardless.
    fn step_under(&mut self, now: f64, awarded_watts: f64) -> Result<StepSummary, SeecError> {
        let elapsed = now - self.last_step_time;
        if elapsed > 0.0 {
            let violations_before = self.meter.violation_intervals();
            self.meter
                .record(elapsed, self.interval_energy_joules / elapsed);
            if let Some(observer) = &self.observer {
                observer.add(
                    Counter::RackMeterViolations,
                    self.meter.violation_intervals() - violations_before,
                );
            }
        }
        self.interval_energy_joules = 0.0;
        self.last_step_time = now;
        self.awarded_watts = awarded_watts;
        if awarded_watts > 0.0 {
            // The quiet path: renewing the same envelope every quantum is
            // not a "budget change" worth an event per rack per step.
            self.coordinator.set_budget_quiet(awarded_watts);
            self.meter.set_cap(awarded_watts);
        }
        self.coordinator.step(now)
    }
}

/// Summary of one datacenter step, as plain `Copy` data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatacenterStepSummary {
    /// The shared quantum index this step covered.
    pub quantum: usize,
    /// Racks with at least one present application.
    pub active_racks: usize,
    /// Applications present across all racks.
    pub active_apps: usize,
    /// Watts the datacenter handed to racks (≤ budget × headroom).
    pub rack_awarded_watts_total: f64,
    /// Watts the racks handed on to applications (≤ the rack total: each
    /// rack keeps its own headroom margin).
    pub app_awarded_watts_total: f64,
}

/// Arbitrates one datacenter power budget across N [`RackCoordinator`]s,
/// re-running an [`ArbitrationPolicy`] over rack-level aggregate requests
/// every quantum so budget flows datacenter → rack → app.
///
/// See the [module docs](self) for the phase structure, the determinism
/// argument, and the sense in which the flat [`Coordinator`] is the 1-rack
/// degenerate case.
pub struct DatacenterArbiter {
    racks: Vec<RackCoordinator>,
    policy: Box<dyn ArbitrationPolicy>,
    budget_watts: f64,
    headroom: f64,
    quantum: usize,
    /// Pool the per-rack phases (observe, step) fan out on; `None` =
    /// inline. Racks' own coordinators may share this pool or run their
    /// own.
    pool: Option<Arc<ExecPool>>,
    requests: Vec<AppRequest>,
    awards: Vec<f64>,
    /// Telemetry recorder propagated to every rack. With a recorder
    /// attached, racks *defer* their step events and [`Self::step`] drains
    /// each rack's buffer in rack order after the pooled phase — the
    /// combined stream is identical at every worker count.
    observer: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for DatacenterArbiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatacenterArbiter")
            .field("racks", &self.racks.len())
            .field("policy", &self.policy.name())
            .field("budget_watts", &self.budget_watts)
            .field("quantum", &self.quantum)
            .finish_non_exhaustive()
    }
}

impl DatacenterArbiter {
    /// An arbiter splitting `budget_watts` (datacenter power above idle)
    /// across racks under `policy`. The datacenter headroom defaults to
    /// 1.0 — each rack's coordinator already keeps its own margin, and
    /// stacking a second one would double-discount the budget.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite).
    pub fn new(budget_watts: f64, policy: Box<dyn ArbitrationPolicy>) -> Self {
        assert!(budget_watts > 0.0, "power budget must be positive");
        DatacenterArbiter {
            racks: Vec::new(),
            policy,
            budget_watts,
            headroom: 1.0,
            quantum: 0,
            pool: None,
            requests: Vec::new(),
            awards: Vec::new(),
            observer: None,
        }
    }

    /// Attaches a telemetry [`Recorder`] to the arbiter and every rack
    /// (current and future — [`Self::add_rack`] propagates it). Datacenter
    /// steps time [`Stage::DatacenterStep`]; racks record their own stages,
    /// counters, and events, with event delivery deferred so the arbiter
    /// can drain buffers in rack order.
    pub fn with_obs(mut self, recorder: Arc<Recorder>) -> Self {
        self.set_obs(Some(recorder));
        self
    }

    /// Attaches or detaches the telemetry recorder mid-run (see
    /// [`Self::with_obs`]).
    pub fn set_obs(&mut self, recorder: Option<Arc<Recorder>>) {
        for rack in &mut self.racks {
            rack.set_obs(recorder.clone());
            rack.coordinator.set_event_deferral(recorder.is_some());
        }
        self.observer = recorder;
    }

    /// Sets the fraction of the datacenter budget handed to racks
    /// (default 1.0; see [`Self::new`]).
    ///
    /// # Panics
    ///
    /// Panics unless `headroom` is in `(0, 1]`.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1], got {headroom}"
        );
        self.headroom = headroom;
        self
    }

    /// Fans the per-rack phases of [`Self::step`] out across `workers`
    /// threads (default 1 = inline; output is bit-identical either way,
    /// because racks are mutually independent within a step).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.pool = (workers > 1).then(|| Arc::new(ExecPool::new(workers)));
        self
    }

    /// Fans the per-rack phases out across an existing pool.
    pub fn with_pool(mut self, pool: Arc<ExecPool>) -> Self {
        self.pool = (pool.threads() > 1).then_some(pool);
        self
    }

    /// Worker threads the per-rack phases fan out across.
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, |pool| pool.threads())
    }

    /// Adds a rack; returns its index (registration order). An attached
    /// telemetry recorder (see [`Self::with_obs`]) is propagated to the new
    /// rack.
    pub fn add_rack(&mut self, mut rack: RackCoordinator) -> usize {
        if self.observer.is_some() {
            rack.set_obs(self.observer.clone());
            rack.coordinator.set_event_deferral(true);
        }
        self.racks.push(rack);
        self.racks.len() - 1
    }

    /// The rack at `index` (registration order).
    pub fn rack(&self, index: usize) -> &RackCoordinator {
        &self.racks[index]
    }

    /// Mutable access to the rack at `index`.
    pub fn rack_mut(&mut self, index: usize) -> &mut RackCoordinator {
        &mut self.racks[index]
    }

    /// Every rack, in registration order.
    pub fn racks(&self) -> &[RackCoordinator] {
        &self.racks
    }

    /// Number of racks.
    pub fn len(&self) -> usize {
        self.racks.len()
    }

    /// Whether no rack has been added.
    pub fn is_empty(&self) -> bool {
        self.racks.is_empty()
    }

    /// The datacenter power budget being arbitrated, in watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// Replaces the datacenter budget (takes effect next step) — the
    /// operator-level "budget step".
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive (it may be infinite).
    pub fn set_budget(&mut self, budget_watts: f64) {
        assert!(budget_watts > 0.0, "power budget must be positive");
        self.budget_watts = budget_watts;
    }

    /// The next shared quantum index [`Self::step`] will run.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// The datacenter-level arbitration policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The per-rack watt envelopes of the most recent step, in rack order.
    pub fn rack_awards(&self) -> &[f64] {
        &self.awards
    }

    /// Runs one datacenter quantum at simulation time `now`: fold each
    /// rack's fleet into an aggregate request, arbitrate the datacenter
    /// budget into rack envelopes, and step every rack under its envelope.
    /// Advances the shared quantum counter (every rack's coordinator steps
    /// exactly once per datacenter step, so all quantum counters stay in
    /// lockstep).
    ///
    /// # Errors
    ///
    /// Propagates the decision error of the lowest-indexed failing rack
    /// (itself the error of that rack's lowest-indexed failing app). Racks
    /// whose steps completed keep their decisions, and every quantum
    /// counter — the datacenter's and each rack's, including the failing
    /// rack's — still advances, so a caller that handles the error can
    /// keep stepping with the hierarchy in lockstep (the failing rack
    /// simply took no new decisions that quantum).
    pub fn step(&mut self, now: f64) -> Result<DatacenterStepSummary, SeecError> {
        let quantum = self.quantum;
        let clock = self.observer.as_ref().map(|_| StageClock::start());

        // ---- Phase 1: rack aggregate requests (per-rack, pooled) ----
        struct RequestTask<'a> {
            rack: &'a mut RackCoordinator,
            request: AppRequest,
        }
        let mut tasks: Vec<RequestTask> = self
            .racks
            .iter_mut()
            .map(|rack| RequestTask {
                rack,
                request: AppRequest {
                    active: false,
                    weight: 1.0,
                    urgency: 1.0,
                    max_power_watts: 0.0,
                },
            })
            .collect();
        let fold = |task: &mut RequestTask| {
            task.request = task.rack.coordinator.fleet_request();
        };
        match &self.pool {
            Some(pool) => pool.for_each_mut(&mut tasks, |_, task| fold(task)),
            None => tasks.iter_mut().for_each(fold),
        }
        self.requests.clear();
        self.requests.extend(tasks.iter().map(|task| task.request));
        drop(tasks);

        // ---- Phase 2: arbitrate (sequential deterministic fold) -----
        self.policy.arbitrate(
            self.budget_watts * self.headroom,
            &self.requests,
            &mut self.awards,
        );

        // ---- Phase 3: step each rack under its envelope (pooled) ----
        struct StepTask<'a> {
            rack: &'a mut RackCoordinator,
            award: f64,
            outcome: Option<Result<StepSummary, SeecError>>,
        }
        let mut tasks: Vec<StepTask> = self
            .racks
            .iter_mut()
            .zip(&self.awards)
            .map(|(rack, &award)| StepTask {
                rack,
                award,
                outcome: None,
            })
            .collect();
        let run = |task: &mut StepTask| {
            task.outcome = Some(task.rack.step_under(now, task.award));
        };
        match &self.pool {
            Some(pool) => pool.for_each_mut(&mut tasks, |_, task| run(task)),
            None => tasks.iter_mut().for_each(run),
        }

        // ---- Summarise (sequential, rack order) ---------------------
        let mut active_racks = 0;
        let mut active_apps = 0;
        let mut rack_awarded_total = 0.0;
        let mut app_awarded_total = 0.0;
        let mut failure: Option<SeecError> = None;
        for task in tasks {
            // Drain the rack's deferred step events in rack order — the
            // pooled phase above finished them in whatever order the
            // workers ran, but the combined stream is re-serialised here.
            task.rack.coordinator.flush_events();
            match task.outcome.expect("every rack was stepped") {
                Ok(summary) => {
                    if summary.active_apps > 0 {
                        active_racks += 1;
                        rack_awarded_total += task.award;
                    }
                    active_apps += summary.active_apps;
                    app_awarded_total += summary.awarded_watts_total;
                }
                Err(err) => {
                    // A failed rack step does not advance that rack's own
                    // quantum counter; advance it here so every rack stays
                    // in lockstep with the datacenter (the failing rack
                    // simply took no new decisions this quantum) and a
                    // caller that handles the error can keep stepping.
                    task.rack.coordinator.skip_quantum();
                    if failure.is_none() {
                        failure = Some(err);
                    }
                }
            }
        }
        // The datacenter quantum advances whether or not a rack failed —
        // time moved for the racks that succeeded.
        self.quantum += 1;
        if let (Some(observer), Some(clock)) = (&self.observer, &clock) {
            observer.time(Stage::DatacenterStep, clock.total());
        }
        if let Some(err) = failure {
            return Err(err);
        }
        Ok(DatacenterStepSummary {
            quantum,
            active_racks,
            active_apps,
            rack_awarded_watts_total: rack_awarded_total,
            app_awarded_watts_total: app_awarded_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PerformanceMarket, StaticShare, WeightedFair};
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    use seec::{ExplorationPolicy, SeecRuntime};
    use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};

    fn actuators() -> Vec<Box<dyn actuation::Actuator>> {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 2.0)
                    .effect(Axis::Power, 2.6),
            )
            .nominal(1)
            .build()
            .unwrap();
        vec![Box::new(TableActuator::new(dvfs))]
    }

    fn managed_app(seed: u64, target: f64) -> ManagedApp {
        let benchmark = SplashBenchmark::ALL[seed as usize % SplashBenchmark::ALL.len()];
        let driver = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
        driver.set_heart_rate_goal(target);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .exploration(ExplorationPolicy {
                epsilon: 0.0,
                ..ExplorationPolicy::default()
            })
            .seed(seed)
            .build()
            .unwrap();
        ManagedApp::new(driver, runtime).with_nominal_power_hint(10.0)
    }

    /// Drives the whole hierarchy against a platform mirroring each app's
    /// declared effects exactly; returns the final summary.
    fn drive(datacenter: &mut DatacenterArbiter, ticks: usize) -> DatacenterStepSummary {
        let mut now = 0.0;
        let mut last = None;
        for _ in 0..ticks {
            now += 1.0;
            for rack_index in 0..datacenter.len() {
                let handles: Vec<AppHandle> = (0..datacenter.rack(rack_index).coordinator().len())
                    .map(AppHandle::from_index)
                    .collect();
                for handle in handles {
                    let effect = {
                        let runtime =
                            datacenter.rack(rack_index).coordinator().app(handle).runtime();
                        runtime
                            .model()
                            .space()
                            .predicted_effect(runtime.current_configuration())
                            .unwrap()
                    };
                    datacenter.rack_mut(rack_index).advance(
                        handle,
                        now - 1.0,
                        now,
                        10.0 * effect.performance,
                        10.0 * effect.power,
                    );
                }
            }
            last = Some(datacenter.step(now).unwrap());
        }
        last.expect("at least one tick")
    }

    #[test]
    fn budget_flows_datacenter_to_rack_to_app() {
        let mut datacenter = DatacenterArbiter::new(40.0, Box::new(WeightedFair));
        for rack_index in 0..2 {
            let mut rack = RackCoordinator::new(
                format!("rack-{rack_index}"),
                Coordinator::new(40.0, Box::new(PerformanceMarket::default())),
            );
            for app in 0..3 {
                rack.register(managed_app(rack_index * 10 + app + 1, 1000.0));
            }
            datacenter.add_rack(rack);
        }
        let summary = drive(&mut datacenter, 25);
        assert_eq!(summary.active_racks, 2);
        assert_eq!(summary.active_apps, 6);
        assert!(
            summary.rack_awarded_watts_total <= 40.0 + 1e-9,
            "rack envelopes {} must conserve the datacenter budget",
            summary.rack_awarded_watts_total
        );
        assert!(
            summary.app_awarded_watts_total <= summary.rack_awarded_watts_total + 1e-9,
            "apps cannot be handed more than their racks were"
        );
        for rack in datacenter.racks() {
            assert!(rack.awarded_watts() > 0.0, "{}: both racks host apps", rack.name());
            assert!(rack.meter().elapsed_seconds() > 0.0);
            let fleet_total: f64 = rack.coordinator().awards().iter().sum();
            assert!(fleet_total <= rack.awarded_watts() * 0.95 + 1e-9);
        }
        assert!(format!("{datacenter:?}").contains("DatacenterArbiter"));
        assert!(format!("{:?}", datacenter.rack(0)).contains("rack-0"));
    }

    #[test]
    fn inactive_racks_are_awarded_nothing() {
        let mut datacenter = DatacenterArbiter::new(30.0, Box::new(StaticShare));
        let mut busy = RackCoordinator::new(
            "busy",
            Coordinator::new(30.0, Box::new(StaticShare)),
        );
        busy.register(managed_app(1, 100.0));
        datacenter.add_rack(busy);
        let mut idle = RackCoordinator::new(
            "idle",
            Coordinator::new(30.0, Box::new(StaticShare)),
        );
        idle.register(managed_app(2, 100.0).with_arrival(1_000));
        datacenter.add_rack(idle);
        let empty = RackCoordinator::new(
            "empty",
            Coordinator::new(30.0, Box::new(StaticShare)),
        );
        datacenter.add_rack(empty);

        let summary = drive(&mut datacenter, 5);
        assert_eq!(summary.active_racks, 1);
        assert_eq!(summary.active_apps, 1);
        assert_eq!(datacenter.rack_awards().len(), 3);
        assert_eq!(datacenter.rack(1).awarded_watts(), 0.0);
        assert_eq!(datacenter.rack(2).awarded_watts(), 0.0);
        // The busy rack is clamped at its one app's absorption ceiling:
        // 10 W nominal hint x the space's 2.6 max declared powerup.
        assert_eq!(datacenter.rack(0).awarded_watts(), 26.0);
    }

    #[test]
    fn pooled_rack_stepping_is_bit_identical_to_inline() {
        let build = |workers: usize| {
            let mut datacenter = DatacenterArbiter::new(35.0, Box::new(WeightedFair))
                .with_workers(workers);
            for rack_index in 0..3u64 {
                let mut rack = RackCoordinator::new(
                    format!("rack-{rack_index}"),
                    Coordinator::new(35.0, Box::new(PerformanceMarket::default())),
                );
                for app in 0..2 {
                    rack.register(managed_app(rack_index * 7 + app + 1, 1000.0));
                }
                datacenter.add_rack(rack);
            }
            datacenter
        };
        let trace = |mut datacenter: DatacenterArbiter| {
            let mut out = Vec::new();
            let mut now = 0.0;
            for _ in 0..15 {
                now += 1.0;
                for rack_index in 0..datacenter.len() {
                    for app in 0..datacenter.rack(rack_index).coordinator().len() {
                        let handle = AppHandle::from_index(app);
                        let effect = {
                            let runtime = datacenter
                                .rack(rack_index)
                                .coordinator()
                                .app(handle)
                                .runtime();
                            runtime
                                .model()
                                .space()
                                .predicted_effect(runtime.current_configuration())
                                .unwrap()
                        };
                        datacenter.rack_mut(rack_index).advance(
                            handle,
                            now - 1.0,
                            now,
                            10.0 * effect.performance,
                            10.0 * effect.power,
                        );
                    }
                }
                let summary = datacenter.step(now).unwrap();
                let awards = datacenter.rack_awards().to_vec();
                let fleet: Vec<Vec<f64>> = datacenter
                    .racks()
                    .iter()
                    .map(|rack| rack.coordinator().awards().to_vec())
                    .collect();
                out.push((summary, awards, fleet));
            }
            out
        };
        let inline = trace(build(1));
        for workers in [2, 5] {
            assert_eq!(inline, trace(build(workers)), "workers = {workers}");
        }
    }

    #[test]
    fn rack_meter_audits_awards() {
        let mut datacenter = DatacenterArbiter::new(1000.0, Box::new(StaticShare));
        let mut rack =
            RackCoordinator::new("r", Coordinator::new(1000.0, Box::new(StaticShare)));
        let handle = rack.register(managed_app(1, 10.0));
        datacenter.add_rack(rack);
        let mut now = 0.0;
        for _ in 0..10 {
            now += 1.0;
            datacenter.rack_mut(0).advance(handle, now - 1.0, now, 10.0, 10.0);
            datacenter.step(now).unwrap();
        }
        let meter = datacenter.rack(0).meter();
        assert_eq!(meter.elapsed_seconds(), 10.0);
        assert!((meter.mean_watts() - 10.0).abs() < 1e-9);
        // A 1000 W award over a 10 W draw: never violated.
        assert!(!meter.violated());
    }

    #[test]
    fn rack_errors_propagate_and_keep_the_hierarchy_in_lockstep() {
        let mut datacenter = DatacenterArbiter::new(30.0, Box::new(StaticShare));
        let mut healthy =
            RackCoordinator::new("healthy", Coordinator::new(30.0, Box::new(StaticShare)));
        healthy.register(managed_app(1, 100.0));
        datacenter.add_rack(healthy);
        let mut broken =
            RackCoordinator::new("broken", Coordinator::new(30.0, Box::new(StaticShare)));
        // An app without any goal: the rack step fails with NoGoal.
        let driver = HeartbeatedWorkload::new(Workload::new(SplashBenchmark::Barnes, 1));
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(actuators())
            .build()
            .unwrap();
        broken.register(ManagedApp::new(driver, runtime));
        datacenter.add_rack(broken);

        for step in 1..=3 {
            assert!(matches!(datacenter.step(step as f64), Err(SeecError::NoGoal)));
            // Every counter advanced in lockstep — the healthy rack
            // stepped, the broken one skipped, the datacenter moved on.
            assert_eq!(datacenter.quantum(), step);
            assert_eq!(datacenter.rack(0).coordinator().quantum(), step);
            assert_eq!(datacenter.rack(1).coordinator().quantum(), step);
        }
    }

    #[test]
    fn clamp_mode_prevents_rack_overdraw_audit_records_it() {
        // Three apps each physically drawing 10 W under a 15 W rack
        // envelope: a 2x overdraw every quantum.
        let run = |mode: EnforcementMode| {
            let mut datacenter = DatacenterArbiter::new(15.0, Box::new(StaticShare));
            let mut rack = RackCoordinator::new(
                "r",
                Coordinator::new(15.0, Box::new(StaticShare)),
            )
            .with_enforcement(mode);
            let handles: Vec<AppHandle> =
                (0..3).map(|app| rack.register(managed_app(app + 1, 10.0))).collect();
            datacenter.add_rack(rack);
            let mut now = 0.0;
            for _ in 0..10 {
                now += 1.0;
                for &handle in &handles {
                    datacenter.rack_mut(0).advance(handle, now - 1.0, now, 10.0, 10.0);
                }
                datacenter.step(now).unwrap();
            }
            datacenter
        };

        let audited = run(EnforcementMode::Audit);
        let rack = audited.rack(0);
        assert_eq!(rack.enforcement(), EnforcementMode::Audit);
        assert!(rack.meter().violated(), "audit records the overdraw");
        assert!((rack.meter().mean_watts() - 30.0).abs() < 1e-9);
        assert_eq!(rack.clamp_events(), 0);
        assert_eq!(rack.shed_joules(), 0.0);

        let clamped = run(EnforcementMode::Clamp);
        let rack = clamped.rack(0);
        assert_eq!(rack.enforcement(), EnforcementMode::Clamp);
        assert!(!rack.meter().violated(), "the breaker holds the envelope");
        assert!(
            rack.meter().mean_watts() <= 15.0 + 1e-9,
            "mean draw {} must fit the 15 W envelope",
            rack.meter().mean_watts()
        );
        assert!(rack.clamp_events() > 0);
        // 30 W demanded, 15 W admitted, 10 s: about 150 J refused.
        assert!((rack.shed_joules() - 150.0).abs() < 1.0, "{}", rack.shed_joules());
    }

    #[test]
    fn telemetry_reconciles_across_the_hierarchy_and_stays_passive() {
        // Same overdraw harness as the enforcement test, instrumented: the
        // recorder must count clamps and rack violations exactly, defer
        // step events into rack order, and move zero bits of the results.
        let run = |mode: EnforcementMode,
                   recorder: Option<Arc<Recorder>>,
                   workers: usize| {
            let mut datacenter = DatacenterArbiter::new(15.0, Box::new(StaticShare))
                .with_workers(workers);
            if let Some(recorder) = recorder {
                datacenter.set_obs(Some(recorder));
            }
            let mut rack = RackCoordinator::new(
                "r",
                Coordinator::new(15.0, Box::new(StaticShare)),
            )
            .with_enforcement(mode);
            let handles: Vec<AppHandle> =
                (0..3).map(|app| rack.register(managed_app(app + 1, 10.0))).collect();
            datacenter.add_rack(rack);
            let mut now = 0.0;
            for _ in 0..10 {
                now += 1.0;
                for &handle in &handles {
                    datacenter.rack_mut(0).advance(handle, now - 1.0, now, 10.0, 10.0);
                }
                datacenter.step(now).unwrap();
            }
            datacenter
        };

        let baseline = run(EnforcementMode::Clamp, None, 1);
        for workers in [1usize, 2] {
            let recorder = Arc::new(Recorder::in_memory());
            let observed = run(EnforcementMode::Clamp, Some(Arc::clone(&recorder)), workers);
            let rack = observed.rack(0);
            assert_eq!(
                rack.meter().mean_watts(),
                baseline.rack(0).meter().mean_watts(),
                "telemetry perturbed the metered draw at {workers} workers"
            );
            assert_eq!(rack.clamp_events(), baseline.rack(0).clamp_events());
            let snapshot = recorder.snapshot();
            assert_eq!(
                snapshot.counter(Counter::ClampEvents),
                rack.clamp_events(),
                "counter reconciles with the rack's own tally"
            );
            assert_eq!(
                snapshot.counter(Counter::RackMeterViolations),
                rack.meter().violation_intervals()
            );
            assert_eq!(snapshot.counter(Counter::QuantaStepped), 10);
            assert_eq!(snapshot.stage(Stage::DatacenterStep).count, 10);
            let clamps = snapshot
                .events
                .iter()
                .filter(|event| matches!(event.kind, EventKind::EnvelopeClamp { .. }))
                .count() as u64;
            assert_eq!(clamps, rack.clamp_events());
        }

        // Audit mode: violations counted, no clamp events.
        let recorder = Arc::new(Recorder::in_memory());
        let observed = run(EnforcementMode::Audit, Some(Arc::clone(&recorder)), 1);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter(Counter::ClampEvents), 0);
        assert_eq!(
            snapshot.counter(Counter::RackMeterViolations),
            observed.rack(0).meter().violation_intervals()
        );
        assert!(snapshot.counter(Counter::RackMeterViolations) > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_datacenter_budget_panics() {
        let _ = DatacenterArbiter::new(0.0, Box::new(StaticShare));
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn out_of_range_datacenter_headroom_panics() {
        let _ = DatacenterArbiter::new(10.0, Box::new(StaticShare)).with_headroom(0.0);
    }
}
