//! Phase behaviour: turning a profile into a sequence of per-quantum demands.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::{SplashBenchmark, WorkloadProfile};

/// The demand an application places on the hardware during one quantum.
///
/// Fields mirror [`WorkloadProfile`] but describe a single slice of the run;
/// experiment drivers convert this into the demand type of whichever
/// substrate they target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumDemand {
    /// Benchmark the quantum belongs to.
    pub benchmark: SplashBenchmark,
    /// Index of the quantum within the run.
    pub index: usize,
    /// Dynamic instructions in the quantum.
    pub instructions: f64,
    /// Work units (heartbeats' worth of progress) in the quantum.
    pub work_units: f64,
    /// Parallel fraction during the quantum.
    pub parallel_fraction: f64,
    /// Memory operations per instruction during the quantum.
    pub memory_ops_per_instruction: f64,
    /// Working-set size in bytes during the quantum.
    pub working_set_bytes: f64,
    /// Capacity sensitivity of the miss-rate curve.
    pub locality_exponent: f64,
    /// Fraction of memory operations touching shared data.
    pub sharing_fraction: f64,
    /// Explicit communication flits per instruction.
    pub communication_flits_per_instruction: f64,
    /// Load imbalance factor during the quantum.
    pub load_imbalance: f64,
    /// Base CPI during the quantum.
    pub base_cpi: f64,
    /// Xeon last-level-cache miss rate during the quantum.
    pub xeon_llc_miss_rate: f64,
}

/// A deterministic instance of one benchmark: the profile plus a seeded
/// phase/noise generator.
#[derive(Debug, Clone)]
pub struct Workload {
    profile: WorkloadProfile,
    seed: u64,
}

impl Workload {
    /// Creates a workload for `benchmark` with a deterministic `seed`.
    pub fn new(benchmark: SplashBenchmark, seed: u64) -> Self {
        Workload {
            profile: benchmark.profile(),
            seed,
        }
    }

    /// Creates a workload from an explicit profile (useful for what-if
    /// studies and tests).
    pub fn from_profile(profile: WorkloadProfile, seed: u64) -> Self {
        Workload { profile, seed }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The benchmark this workload models.
    pub fn benchmark(&self) -> SplashBenchmark {
        self.profile.benchmark
    }

    /// Splits the whole run into `count` quanta with deterministic
    /// phase-to-phase variation. The instructions and work units across all
    /// quanta sum to the profile totals; per-quantum rates wobble around the
    /// profile values with amplitude set by the profile's phase variability.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn quanta(&self, count: usize) -> Vec<QuantumDemand> {
        assert!(count > 0, "a workload must be split into at least one quantum");
        let mut rng = StdRng::seed_from_u64(self.seed ^ seed_mix(self.profile.benchmark));
        let p = &self.profile;
        let base_instructions = p.total_instructions / count as f64;
        let base_work = p.total_work_units / count as f64;

        // Phase weights: a slow sinusoidal drift plus per-quantum noise,
        // normalised so totals are preserved exactly.
        let mut weights: Vec<f64> = (0..count)
            .map(|i| {
                let phase = (i as f64 / count as f64) * std::f64::consts::TAU * 3.0;
                let drift = 1.0 + p.phase_variability * 0.5 * phase.sin();
                let noise = 1.0 + p.phase_variability * rng.gen_range(-0.5..0.5);
                (drift * noise).max(0.1)
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w *= count as f64 / weight_sum;
        }

        (0..count)
            .map(|i| {
                let w = weights[i];
                let wobble = |value: f64, amplitude: f64, rng: &mut StdRng| {
                    value * (1.0 + amplitude * rng.gen_range(-0.5..0.5))
                };
                QuantumDemand {
                    benchmark: p.benchmark,
                    index: i,
                    instructions: base_instructions * w,
                    work_units: base_work * w,
                    parallel_fraction: p.parallel_fraction,
                    memory_ops_per_instruction: wobble(
                        p.memory_ops_per_instruction,
                        p.phase_variability,
                        &mut rng,
                    ),
                    working_set_bytes: wobble(p.working_set_bytes, p.phase_variability, &mut rng),
                    locality_exponent: p.locality_exponent,
                    sharing_fraction: p.sharing_fraction,
                    communication_flits_per_instruction: p.communication_flits_per_instruction,
                    load_imbalance: (p.load_imbalance
                        * (1.0 + p.phase_variability * rng.gen_range(0.0..0.5)))
                    .max(1.0),
                    base_cpi: p.base_cpi,
                    xeon_llc_miss_rate: wobble(
                        p.xeon_llc_miss_rate,
                        p.phase_variability,
                        &mut rng,
                    )
                    .clamp(0.0, 1.0),
                }
            })
            .collect()
    }

    /// A single quantum representing the whole-run average (no phase noise).
    pub fn average_quantum(&self) -> QuantumDemand {
        let p = &self.profile;
        QuantumDemand {
            benchmark: p.benchmark,
            index: 0,
            instructions: p.total_instructions,
            work_units: p.total_work_units,
            parallel_fraction: p.parallel_fraction,
            memory_ops_per_instruction: p.memory_ops_per_instruction,
            working_set_bytes: p.working_set_bytes,
            locality_exponent: p.locality_exponent,
            sharing_fraction: p.sharing_fraction,
            communication_flits_per_instruction: p.communication_flits_per_instruction,
            load_imbalance: p.load_imbalance,
            base_cpi: p.base_cpi,
            xeon_llc_miss_rate: p.xeon_llc_miss_rate,
        }
    }
}

/// Mixes the benchmark identity into the RNG seed so two benchmarks sharing a
/// user seed still see different noise streams.
fn seed_mix(benchmark: SplashBenchmark) -> u64 {
    match benchmark {
        SplashBenchmark::Barnes => 0x0b1e_55ed_0000_0001,
        SplashBenchmark::OceanNonContiguous => 0x0b1e_55ed_0000_0002,
        SplashBenchmark::Raytrace => 0x0b1e_55ed_0000_0003,
        SplashBenchmark::WaterSpatial => 0x0b1e_55ed_0000_0004,
        SplashBenchmark::Volrend => 0x0b1e_55ed_0000_0005,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quanta_preserve_totals() {
        for b in SplashBenchmark::ALL {
            let workload = Workload::new(b, 7);
            let quanta = workload.quanta(128);
            let instructions: f64 = quanta.iter().map(|q| q.instructions).sum();
            let work: f64 = quanta.iter().map(|q| q.work_units).sum();
            let p = workload.profile();
            assert!((instructions - p.total_instructions).abs() < 1e-6 * p.total_instructions);
            assert!((work - p.total_work_units).abs() < 1e-6 * p.total_work_units);
        }
    }

    #[test]
    fn quanta_are_deterministic_for_a_seed() {
        let a = Workload::new(SplashBenchmark::Volrend, 99).quanta(64);
        let b = Workload::new(SplashBenchmark::Volrend, 99).quanta(64);
        assert_eq!(a, b);
        let c = Workload::new(SplashBenchmark::Volrend, 100).quanta(64);
        assert_ne!(a, c, "different seeds give different phase noise");
    }

    #[test]
    fn different_benchmarks_with_same_seed_differ() {
        let a = Workload::new(SplashBenchmark::Barnes, 5).quanta(16);
        let b = Workload::new(SplashBenchmark::Raytrace, 5).quanta(16);
        assert_ne!(
            a[0].memory_ops_per_instruction,
            b[0].memory_ops_per_instruction
        );
    }

    #[test]
    fn phase_variability_controls_spread() {
        let steady = Workload::new(SplashBenchmark::WaterSpatial, 1).quanta(256);
        let phasey = Workload::new(SplashBenchmark::Volrend, 1).quanta(256);
        let spread = |quanta: &[QuantumDemand]| {
            let mean = quanta.iter().map(|q| q.instructions).sum::<f64>() / quanta.len() as f64;
            let var = quanta
                .iter()
                .map(|q| (q.instructions - mean).powi(2))
                .sum::<f64>()
                / quanta.len() as f64;
            var.sqrt() / mean
        };
        assert!(spread(&phasey) > spread(&steady));
    }

    #[test]
    fn quantum_parameters_stay_in_domain() {
        for b in SplashBenchmark::ALL {
            for q in Workload::new(b, 3).quanta(64) {
                assert!(q.instructions > 0.0);
                assert!(q.work_units > 0.0);
                assert!((0.0..=1.0).contains(&q.parallel_fraction));
                assert!((0.0..=1.0).contains(&q.xeon_llc_miss_rate));
                assert!(q.load_imbalance >= 1.0);
                assert!(q.working_set_bytes > 0.0);
            }
        }
    }

    #[test]
    fn average_quantum_equals_profile_totals() {
        let workload = Workload::new(SplashBenchmark::Barnes, 0);
        let avg = workload.average_quantum();
        assert_eq!(avg.instructions, workload.profile().total_instructions);
        assert_eq!(avg.work_units, workload.profile().total_work_units);
        assert_eq!(workload.benchmark(), SplashBenchmark::Barnes);
    }

    #[test]
    #[should_panic(expected = "at least one quantum")]
    fn zero_quanta_panics() {
        let _ = Workload::new(SplashBenchmark::Barnes, 0).quanta(0);
    }
}
