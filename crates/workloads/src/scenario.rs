//! Multi-application scenario generation.
//!
//! The paper's premise is *many* self-aware applications sharing one
//! machine (§2): applications arrive, run their own observe–decide–act
//! loops, and leave, while the platform arbitrates shared resources. A
//! [`Scenario`] captures one such mix — which benchmarks run, when each
//! arrives and departs on the shared quantum schedule, its priority tier,
//! how demanding its performance goal is, and how tight the machine-level
//! power budget is. [`scenario_mixes`] generates a deterministic family of
//! heterogeneous mixes from a seed, used by the fig5 multi-application
//! experiment and reusable by examples and benches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::fault::{AppFault, FaultKind, FaultPlan};
use crate::profile::SplashBenchmark;

/// One application's slot in a multi-application scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioApp {
    /// Benchmark the application runs.
    pub benchmark: SplashBenchmark,
    /// Seed for the application's phase/noise stream (distinct seeds make
    /// two instances of the same benchmark phase-shift against each other).
    pub seed: u64,
    /// Arbitration weight (priority tier); higher is more important.
    pub weight: f64,
    /// First quantum (inclusive) of the shared schedule the app is present.
    pub arrival: usize,
    /// Quantum (exclusive) at which the app departs; `None` = stays to the
    /// end of the scenario.
    pub departure: Option<usize>,
    /// Fraction of the application's solo maximum heart rate it requests as
    /// its performance goal, in `(0, 1]`.
    pub target_fraction: f64,
    /// Which rack (fleet shard) hosts the application — consumed by the
    /// hierarchical (rack → datacenter) coordination experiments, ignored
    /// by single-machine runs. The original mixes put everything on rack 0.
    pub rack: usize,
}

impl ScenarioApp {
    /// Whether the app is present at shared quantum `quantum`.
    pub fn active_at(&self, quantum: usize) -> bool {
        quantum >= self.arrival && self.departure.is_none_or(|d| quantum < d)
    }
}


/// A mid-run step of the machine power budget: operator- or rack-level
/// power management changing how much the fleet may draw while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetStep {
    /// Quantum (on the shared schedule) the new budget takes effect.
    pub quantum: usize,
    /// The new budget, as a fraction of the platform's full-load power
    /// above idle, in `(0, 1]`.
    pub fraction: f64,
}

/// One multi-application mix on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable mix name.
    pub name: String,
    /// The applications, in registration order.
    pub apps: Vec<ScenarioApp>,
    /// Length of the shared quantum schedule.
    pub quanta: usize,
    /// Machine power budget as a fraction of the platform's full-load power
    /// above idle, in `(0, 1]`. This is the *initial* budget; it may step
    /// mid-run ([`Self::budget_steps`]).
    pub power_budget_fraction: f64,
    /// Mid-run budget changes, sorted by quantum (empty for the original
    /// mixes, whose budgets are constant).
    pub budget_steps: Vec<BudgetStep>,
    /// Scheduled application misbehaviour (empty for the well-behaved
    /// mixes; see [`crate::fault`]).
    pub fault_plan: FaultPlan,
    /// Relative request-delta tolerance for the coordinator's incremental
    /// arbitration engine, in `[0,` [`MAX_ARBITRATION_TOLERANCE`]`]`.
    /// `0.0` (the default for every generated mix) keeps the legacy full
    /// re-arbitration path; nonzero values let steady apps hold their
    /// awards between quanta.
    pub arbitration_tolerance: f64,
    /// Sleep horizon for the coordinator's wake scheduler, in quanta, in
    /// `[0,` [`MAX_WAKE_HORIZON`]`]`. `0` (the default for every generated
    /// mix) leaves the scheduler off; nonzero values let steady apps skip
    /// observation and decision entirely for up to this many quanta.
    /// Meaningful only alongside a nonzero [`Self::arbitration_tolerance`]
    /// (the scheduler rides on the incremental engine).
    pub wake_horizon: usize,
    /// Consecutive in-tolerance quanta before a slot is eligible to sleep,
    /// in `[1,` [`MAX_WAKE_STEADY_QUANTA`]`]` when [`Self::wake_horizon`]
    /// is nonzero, and exactly `0` when it is zero (the pair is kept
    /// canonical so knob-off scenarios serialise to their pre-knob bytes).
    pub wake_steady_quanta: u32,
}

// Serialisation is hand-written (instead of derived, as for every other
// scenario type) so the `fault_plan` field is *omitted* when empty: every
// pre-fault fixture under `tests/corpus/` keeps parsing, and fault-free
// scenarios keep serialising to the exact bytes they produced before the
// field existed (the corpus/report byte-identity pins depend on this).
impl Serialize for Scenario {
    fn to_value(&self) -> serde::ser::Value {
        let mut entries = vec![
            ("name".to_string(), self.name.to_value()),
            ("apps".to_string(), self.apps.to_value()),
            ("quanta".to_string(), self.quanta.to_value()),
            (
                "power_budget_fraction".to_string(),
                self.power_budget_fraction.to_value(),
            ),
            ("budget_steps".to_string(), self.budget_steps.to_value()),
        ];
        if !self.fault_plan.is_empty() {
            entries.push(("fault_plan".to_string(), self.fault_plan.to_value()));
        }
        // Same omission discipline as `fault_plan`: the field only appears
        // once a mutation actually turns the knob, so every tolerance-0
        // scenario serialises to its pre-knob bytes.
        if self.arbitration_tolerance != 0.0 {
            entries.push((
                "arbitration_tolerance".to_string(),
                self.arbitration_tolerance.to_value(),
            ));
        }
        // And again for the wake-scheduler pair: absent until a mutation
        // turns the scheduler on (sanitize zeroes `wake_steady_quanta`
        // whenever the horizon is zero, so one gate covers both).
        if self.wake_horizon != 0 {
            entries.push(("wake_horizon".to_string(), self.wake_horizon.to_value()));
            entries.push((
                "wake_steady_quanta".to_string(),
                self.wake_steady_quanta.to_value(),
            ));
        }
        serde::ser::Value::Object(entries)
    }
}

impl Deserialize for Scenario {
    fn from_value(value: &serde::ser::Value) -> Result<Self, serde::de::DeError> {
        let entries = serde::de::as_object(value, "Scenario")?;
        Ok(Scenario {
            name: serde::de::field(entries, "name", "Scenario")?,
            apps: serde::de::field(entries, "apps", "Scenario")?,
            quanta: serde::de::field(entries, "quanta", "Scenario")?,
            power_budget_fraction: serde::de::field(
                entries,
                "power_budget_fraction",
                "Scenario",
            )?,
            budget_steps: serde::de::field(entries, "budget_steps", "Scenario")?,
            // Absent in pre-fault fixtures: an absent plan is an empty plan.
            fault_plan: match entries.iter().find(|(key, _)| key == "fault_plan") {
                Some((_, plan)) => FaultPlan::from_value(plan).map_err(|e| {
                    serde::de::DeError::new(format!(
                        "field `fault_plan` of `Scenario`: {e}"
                    ))
                })?,
                None => FaultPlan::default(),
            },
            // Absent in pre-knob fixtures: an absent tolerance is zero.
            arbitration_tolerance: match entries
                .iter()
                .find(|(key, _)| key == "arbitration_tolerance")
            {
                Some((_, tolerance)) => {
                    f64::from_value(tolerance).map_err(|e| {
                        serde::de::DeError::new(format!(
                            "field `arbitration_tolerance` of `Scenario`: {e}"
                        ))
                    })?
                }
                None => 0.0,
            },
            // Absent in pre-knob fixtures: an absent horizon is zero (the
            // scheduler off), and likewise for the steady threshold.
            wake_horizon: match entries.iter().find(|(key, _)| key == "wake_horizon") {
                Some((_, horizon)) => usize::from_value(horizon).map_err(|e| {
                    serde::de::DeError::new(format!(
                        "field `wake_horizon` of `Scenario`: {e}"
                    ))
                })?,
                None => 0,
            },
            wake_steady_quanta: match entries
                .iter()
                .find(|(key, _)| key == "wake_steady_quanta")
            {
                Some((_, steady)) => u32::from_value(steady).map_err(|e| {
                    serde::de::DeError::new(format!(
                        "field `wake_steady_quanta` of `Scenario`: {e}"
                    ))
                })?,
                None => 0,
            },
        })
    }
}

impl Scenario {
    /// The largest number of apps simultaneously present at any quantum.
    pub fn peak_concurrency(&self) -> usize {
        (0..self.quanta)
            .map(|q| self.apps.iter().filter(|a| a.active_at(q)).count())
            .max()
            .unwrap_or(0)
    }

    /// Number of racks the mix spans: one more than the highest rack tag
    /// (at least 1, so untagged mixes read as single-rack).
    pub fn rack_count(&self) -> usize {
        self.apps.iter().map(|app| app.rack + 1).max().unwrap_or(1)
    }

    /// The budget fraction in force at `quantum`: the initial fraction
    /// until the first step at or before `quantum`, then the latest such
    /// step. Works whatever order `budget_steps` is in (ties on the same
    /// quantum resolve to the later list entry).
    pub fn budget_fraction_at(&self, quantum: usize) -> f64 {
        self.budget_steps
            .iter()
            .enumerate()
            .filter(|(_, step)| step.quantum <= quantum)
            .max_by_key(|(index, step)| (step.quantum, *index))
            .map_or(self.power_budget_fraction, |(_, step)| step.fraction)
    }
}

impl Scenario {
    /// Whether every field is inside the domain the generators promise and
    /// the experiment drivers assume (positive weights, `(0, 1]` fractions,
    /// arrivals before the horizon, departures inside `(arrival, quanta]`,
    /// budget steps before the horizon, racks within
    /// [`MAX_SCENARIO_RACKS`]).
    pub fn is_well_formed(&self) -> bool {
        self.quanta >= MIN_SCENARIO_QUANTA
            && self.quanta <= MAX_SCENARIO_QUANTA
            && self.power_budget_fraction >= MIN_BUDGET_FRACTION
            && self.power_budget_fraction <= 1.0
            && self.apps.iter().all(|app| {
                app.weight >= MIN_APP_WEIGHT
                    && app.weight <= MAX_APP_WEIGHT
                    && app.target_fraction >= MIN_TARGET_FRACTION
                    && app.target_fraction <= 1.0
                    && app.arrival < self.quanta
                    && app.rack < MAX_SCENARIO_RACKS
                    && app
                        .departure
                        .is_none_or(|d| d > app.arrival && d <= self.quanta)
            })
            && self.budget_steps.iter().all(|step| {
                step.quantum < self.quanta
                    && step.fraction >= MIN_BUDGET_FRACTION
                    && step.fraction <= 1.0
            })
            && self.fault_plan.is_well_formed(self.apps.len(), self.quanta)
            && self.arbitration_tolerance >= 0.0
            && self.arbitration_tolerance <= MAX_ARBITRATION_TOLERANCE
            && self.wake_horizon <= MAX_WAKE_HORIZON
            && if self.wake_horizon == 0 {
                self.wake_steady_quanta == 0
            } else {
                // The scheduler rides on the incremental engine, so an
                // enabled horizon requires a live tolerance, and the
                // steady threshold must be a real (bounded) count.
                self.arbitration_tolerance > 0.0
                    && (1..=MAX_WAKE_STEADY_QUANTA).contains(&self.wake_steady_quanta)
            }
    }

    /// Repairs the scenario in place into the well-formed domain by
    /// clamping every field: mutation engines may perturb freely and call
    /// this afterwards instead of special-casing each field's bounds.
    /// Idempotent, and the identity on already-well-formed scenarios.
    pub fn sanitize(&mut self) {
        self.quanta = self.quanta.clamp(MIN_SCENARIO_QUANTA, MAX_SCENARIO_QUANTA);
        self.power_budget_fraction = self
            .power_budget_fraction
            .clamp(MIN_BUDGET_FRACTION, 1.0);
        if !self.power_budget_fraction.is_finite() {
            self.power_budget_fraction = MIN_BUDGET_FRACTION;
        }
        let quanta = self.quanta;
        for app in &mut self.apps {
            app.weight = if app.weight.is_finite() {
                app.weight.clamp(MIN_APP_WEIGHT, MAX_APP_WEIGHT)
            } else {
                1.0
            };
            app.target_fraction = if app.target_fraction.is_finite() {
                app.target_fraction.clamp(MIN_TARGET_FRACTION, 1.0)
            } else {
                MIN_TARGET_FRACTION
            };
            app.arrival = app.arrival.min(quanta - 1);
            app.rack %= MAX_SCENARIO_RACKS;
            if let Some(departure) = app.departure {
                app.departure = Some(departure.clamp(app.arrival + 1, quanta));
            }
        }
        for step in &mut self.budget_steps {
            step.quantum = step.quantum.min(quanta - 1);
            step.fraction = if step.fraction.is_finite() {
                step.fraction.clamp(MIN_BUDGET_FRACTION, 1.0)
            } else {
                MIN_BUDGET_FRACTION
            };
        }
        self.fault_plan.sanitize(self.apps.len(), quanta);
        self.arbitration_tolerance = if self.arbitration_tolerance.is_finite() {
            self.arbitration_tolerance.clamp(0.0, MAX_ARBITRATION_TOLERANCE)
        } else {
            0.0
        };
        // Canonicalise the wake pair: the scheduler needs a live tolerance
        // to ride on, an enabled horizon needs a real steady threshold,
        // and a disabled one keeps both fields at their pre-knob zeroes.
        self.wake_horizon = self.wake_horizon.min(MAX_WAKE_HORIZON);
        if self.arbitration_tolerance == 0.0 {
            self.wake_horizon = 0;
        }
        self.wake_steady_quanta = if self.wake_horizon == 0 {
            0
        } else {
            self.wake_steady_quanta.clamp(1, MAX_WAKE_STEADY_QUANTA)
        };
    }
}

/// Shortest shared schedule a sanitized scenario may have.
pub const MIN_SCENARIO_QUANTA: usize = 2;

/// Longest shared schedule a sanitized scenario may have (bounds fuzz
/// executor cost).
pub const MAX_SCENARIO_QUANTA: usize = 4_096;

/// Exclusive upper bound on rack tags after sanitization (bounds hierarchy
/// width).
pub const MAX_SCENARIO_RACKS: usize = 16;

/// Smallest machine budget fraction after sanitization.
pub const MIN_BUDGET_FRACTION: f64 = 0.05;

/// Smallest per-app priority weight after sanitization.
pub const MIN_APP_WEIGHT: f64 = 0.1;

/// Largest per-app priority weight after sanitization.
pub const MAX_APP_WEIGHT: f64 = 8.0;

/// Smallest per-app target fraction after sanitization.
pub const MIN_TARGET_FRACTION: f64 = 0.01;

/// Largest incremental-arbitration tolerance after sanitization: a 50 %
/// relative request move always re-enters the fold, so no fuzzed scenario
/// can freeze arbitration outright.
pub const MAX_ARBITRATION_TOLERANCE: f64 = 0.5;

/// Largest wake-scheduler sleep horizon after sanitization: every sleeping
/// app re-enters observation within 128 quanta, so no fuzzed scenario can
/// put a slot to sleep for an unbounded stretch of the schedule.
pub const MAX_WAKE_HORIZON: usize = 128;

/// Largest steady-streak threshold after sanitization: demanding more than
/// 16 consecutive in-tolerance quanta before sleeping would make the
/// scheduler a no-op on the short fuzz horizons.
pub const MAX_WAKE_STEADY_QUANTA: u32 = 16;

/// The priority tiers scenario generation draws from (the paper's platform
/// distinguishes applications the operator cares about more).
const PRIORITY_TIERS: [f64; 3] = [1.0, 2.0, 4.0];

/// Racks the arrival-storm mix spreads its 100 applications across.
const STORM_RACKS: usize = 4;

/// Racks the budget-steps mix spreads its 1200 applications across.
const STEPPED_RACKS: usize = 8;

/// A deterministic family of heterogeneous multi-application mixes.
///
/// Three mixes of increasing hostility, all derived from `seed`:
///
/// * **steady-pair** — two long-lived apps, equal priority, a roomy budget:
///   the base case where arbitration should cost (almost) nothing.
/// * **staggered-arrivals** — four apps arriving in waves, one departing
///   early, mixed priorities: the budget must be re-divided as the
///   population changes.
/// * **tiered-crunch** — five apps (with benchmark repeats phase-shifted by
///   seed), all three priority tiers, a tight budget: sustained contention
///   where uncoordinated composition overshoots hardest.
pub fn scenario_mixes(seed: u64) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce7_a210_0000_0001);
    let mut pick = |exclude: Option<SplashBenchmark>| -> SplashBenchmark {
        loop {
            let candidate =
                SplashBenchmark::ALL[rng.gen_range(0..SplashBenchmark::ALL.len())];
            if Some(candidate) != exclude {
                return candidate;
            }
        }
    };

    let steady_a = pick(None);
    let steady_b = pick(Some(steady_a));
    let steady = Scenario {
        name: "steady-pair".to_string(),
        apps: vec![
            ScenarioApp {
                benchmark: steady_a,
                seed: seed.wrapping_add(1),
                weight: 1.0,
                arrival: 0,
                departure: None,
                target_fraction: 0.5,
                rack: 0,
            },
            ScenarioApp {
                benchmark: steady_b,
                seed: seed.wrapping_add(2),
                weight: 1.0,
                arrival: 0,
                departure: None,
                target_fraction: 0.5,
                rack: 0,
            },
        ],
        quanta: 96,
        power_budget_fraction: 0.6,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    let quanta = 120;
    let mut staggered_apps = Vec::new();
    for wave in 0..4 {
        let arrival = wave * quanta / 6;
        // The second wave departs two-thirds of the way through the run.
        let departure = (wave == 1).then_some(quanta * 2 / 3);
        let benchmark = pick(None);
        let weight = PRIORITY_TIERS[wave % 2];
        staggered_apps.push(ScenarioApp {
            benchmark,
            seed: seed.wrapping_add(10 + wave as u64),
            weight,
            arrival,
            departure,
            target_fraction: 0.5,
            rack: 0,
        });
    }
    let staggered = Scenario {
        name: "staggered-arrivals".to_string(),
        apps: staggered_apps,
        quanta,
        power_budget_fraction: 0.5,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    let mut tiered_apps = Vec::new();
    for slot in 0..5 {
        tiered_apps.push(ScenarioApp {
            benchmark: pick(None),
            seed: seed.wrapping_add(100 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival: 0,
            departure: None,
            // Demands vary across the tiers: 0.4, 0.5, or 0.6 of solo max.
            target_fraction: 0.4 + 0.1 * (slot % 3) as f64,
            rack: 0,
        });
    }
    let tiered = Scenario {
        name: "tiered-crunch".to_string(),
        apps: tiered_apps,
        quanta: 96,
        power_budget_fraction: 0.4,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    vec![steady, staggered, tiered]
}

/// The *extended* scenario family: mixes that exercise the coordinator's
/// runtime lifecycle and sharding at fleet sizes the original three mixes
/// never reach. Deterministic for a seed, like [`scenario_mixes`], but kept
/// separate so the original fig5 outputs stay byte-identical (the fig5
/// binary includes these only under `--extended`).
///
/// * **arrival-storm** — 100 applications: a 10-app resident base plus
///   three 30-app bursts that arrive within two quanta of each other and
///   retire ~20 quanta later. Per-app goals are small (4–10 % of solo max)
///   — the point is churn, not per-app headroom: the arbiter re-divides
///   the budget as ~30 apps register or retire at once.
/// * **budget-steps** — 1200 applications arriving in eight waves over the
///   first eight quanta, under a machine budget that *steps* mid-run
///   (70 % → 35 % → 55 % of full-load power above idle): the fleet must
///   absorb an operator-driven budget cut with no warning.
///
/// Both mixes are **rack-tagged** ([`ScenarioApp::rack`]): the storm
/// spreads its fleet round-robin over 4 racks and the stepped mix over 8,
/// so the hierarchical (rack → datacenter) coordination experiment can
/// partition them without inventing its own placement. Single-machine runs
/// ignore the tags, so flat results are unchanged.
pub fn extended_scenario_mixes(seed: u64) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce7_a210_0000_0002);
    let mut pick = || SplashBenchmark::ALL[rng.gen_range(0..SplashBenchmark::ALL.len())];

    // ---- arrival-storm: 10 residents + 3 bursts of 30 -----------------
    let quanta = 64;
    let mut storm_apps = Vec::new();
    for slot in 0..10 {
        storm_apps.push(ScenarioApp {
            benchmark: pick(),
            seed: seed.wrapping_add(1_000 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival: 0,
            departure: None,
            target_fraction: 0.08 + 0.02 * (slot % 2) as f64,
            rack: slot % STORM_RACKS,
        });
    }
    for burst in 0..3usize {
        let burst_start = 12 + burst * 14;
        for slot in 0..30usize {
            // Each burst lands within two quanta and retires ~20 later.
            let arrival = burst_start + slot % 3;
            storm_apps.push(ScenarioApp {
                benchmark: pick(),
                seed: seed.wrapping_add(2_000 + (burst * 100 + slot) as u64),
                weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
                arrival,
                departure: Some((arrival + 18 + slot % 4).min(quanta)),
                target_fraction: 0.04 + 0.01 * (slot % 3) as f64,
                rack: (burst * 30 + slot) % STORM_RACKS,
            });
        }
    }
    let storm = Scenario {
        name: "arrival-storm".to_string(),
        apps: storm_apps,
        quanta,
        power_budget_fraction: 0.5,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    // ---- budget-steps: 1200 apps under a stepping machine budget ------
    let quanta = 56;
    let mut stepped_apps = Vec::new();
    for slot in 0..1_200usize {
        // Eight arrival waves over the first eight quanta; a small slice
        // of the fleet (every 16th app) retires two-thirds through.
        let arrival = slot % 8;
        let departure = (slot % 16 == 7).then_some(quanta * 2 / 3);
        stepped_apps.push(ScenarioApp {
            benchmark: pick(),
            seed: seed.wrapping_add(10_000 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival,
            departure,
            target_fraction: 0.01 + 0.005 * (slot % 3) as f64,
            rack: slot % STEPPED_RACKS,
        });
    }
    let stepped = Scenario {
        name: "budget-steps".to_string(),
        apps: stepped_apps,
        quanta,
        power_budget_fraction: 0.7,
        budget_steps: vec![
            BudgetStep {
                quantum: 24,
                fraction: 0.35,
            },
            BudgetStep {
                quantum: 40,
                fraction: 0.55,
            },
        ],
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    vec![storm, stepped]
}

/// The adversarial *vocabulary* mixes: the seed corpus the scenario fuzzer
/// mutates from. Deterministic for a seed, like the other families, and
/// deliberately small (tens of apps, short horizons) so a fuzz iteration
/// stays cheap; the mutation engine grows them where that pays.
///
/// * **diurnal-budget** — a six-app resident fleet under a budget that
///   follows a day curve as a staircase (peak → trough → recovery, eight
///   steps): every step forces a re-division, and the trough is tight
///   enough that priority tiers matter.
/// * **flash-crowd** — four residents, then twenty-four applications
///   landing on the *same* quantum with aggressive goals, gone twelve
///   quanta later: the hardest single re-arbitration step, aimed at the
///   landing-quantum transient.
/// * **phase-shift** — three racks of four apps each, where the apps of a
///   rack share one workload seed (their compute/memory phases move in
///   lockstep) and each rack's arrivals shift by a fixed offset: rack
///   demand peaks are correlated within a rack and staggered across racks,
///   stressing envelope re-auditing at the datacenter level.
pub fn vocabulary_mixes(seed: u64) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce7_a210_0000_0003);
    let mut pick = || SplashBenchmark::ALL[rng.gen_range(0..SplashBenchmark::ALL.len())];

    // ---- diurnal-budget: staircase day curve over a resident fleet ----
    let quanta = 64;
    let diurnal_apps: Vec<ScenarioApp> = (0..6)
        .map(|slot| ScenarioApp {
            benchmark: pick(),
            seed: seed.wrapping_add(20_000 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival: 0,
            departure: None,
            target_fraction: 0.3 + 0.1 * (slot % 3) as f64,
            rack: 0,
        })
        .collect();
    // Eight steps of a (1 - cos) day curve between 25 % and 70 % of
    // full-load power: high at "midday", tight overnight.
    let budget_steps: Vec<BudgetStep> = (1..8)
        .map(|step| {
            let phase = step as f64 / 8.0 * std::f64::consts::TAU;
            let fraction = 0.25 + 0.45 * 0.5 * (1.0 - phase.cos());
            BudgetStep {
                quantum: step * quanta / 8,
                fraction: (fraction * 100.0).round() / 100.0,
            }
        })
        .collect();
    let diurnal = Scenario {
        name: "diurnal-budget".to_string(),
        apps: diurnal_apps,
        quanta,
        power_budget_fraction: 0.25,
        budget_steps,
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    // ---- flash-crowd: one-quantum mass landing ------------------------
    let quanta = 48;
    let crowd_lands = 16;
    let mut crowd_apps: Vec<ScenarioApp> = (0..4)
        .map(|slot| ScenarioApp {
            benchmark: pick(),
            seed: seed.wrapping_add(21_000 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival: 0,
            departure: None,
            target_fraction: 0.4,
            rack: 0,
        })
        .collect();
    for slot in 0..24usize {
        crowd_apps.push(ScenarioApp {
            benchmark: pick(),
            seed: seed.wrapping_add(22_000 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival: crowd_lands,
            departure: Some(crowd_lands + 12),
            target_fraction: 0.25 + 0.05 * (slot % 3) as f64,
            rack: 0,
        });
    }
    let flash_crowd = Scenario {
        name: "flash-crowd".to_string(),
        apps: crowd_apps,
        quanta,
        power_budget_fraction: 0.45,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    // ---- phase-shift: correlated phases within racks, staggered across -
    let quanta = 48;
    let mut shifted_apps = Vec::new();
    for rack in 0..3usize {
        // One workload seed per rack: the rack's apps phase-move together.
        let rack_seed = seed.wrapping_add(23_000 + rack as u64);
        let benchmark = pick();
        for slot in 0..4usize {
            shifted_apps.push(ScenarioApp {
                benchmark,
                seed: rack_seed,
                weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
                arrival: rack * 6,
                departure: None,
                target_fraction: 0.35,
                rack,
            });
        }
    }
    let phase_shift = Scenario {
        name: "phase-shift".to_string(),
        apps: shifted_apps,
        quanta,
        power_budget_fraction: 0.4,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan::default(),
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    vec![diurnal, flash_crowd, phase_shift]
}

/// The *chaos* mixes: fault-injected scenarios for the robustness
/// experiments and the watchdog/degradation ladder. Deterministic for a
/// seed, like the other families, and kept separate so every fault-free
/// pipeline's output stays byte-identical.
///
/// * **fault-storm** — eight applications on one machine, six scheduled
///   faults covering every [`FaultKind`]: a persistent ×3 power
///   over-reporter, a NaN-telemetry app, a persistent heartbeat stall, a
///   *transient* stall (clears mid-run, for recovery/readmission
///   measurement), a crash-without-retire, and a telemetry freeze that is
///   captured at a roomy budget just before an operator cut to 20 % —
///   so the frozen belief is materially over the post-cut envelope. Two
///   apps stay healthy throughout (the fairness control).
/// * **rack-rogues** — three racks of four applications, one rogue per
///   rack: a hungry ×0.35 power *under*-reporter (the enforcement story —
///   audit alone never catches it), a heartbeat stall, and a crash. Exercises
///   the hierarchy path: each rack must degrade locally while the
///   datacenter keeps netting envelopes.
pub fn chaos_mixes(seed: u64) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce7_a210_0000_0004);
    let mut pick = || SplashBenchmark::ALL[rng.gen_range(0..SplashBenchmark::ALL.len())];

    // ---- fault-storm: every fault kind on one machine ------------------
    let quanta = 48;
    let storm_apps: Vec<ScenarioApp> = (0..8)
        .map(|slot| ScenarioApp {
            benchmark: pick(),
            seed: seed.wrapping_add(30_000 + slot as u64),
            weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
            arrival: 0,
            departure: None,
            target_fraction: 0.3 + 0.1 * (slot % 3) as f64,
            rack: 0,
        })
        .collect();
    let fault_storm = Scenario {
        name: "fault-storm".to_string(),
        apps: storm_apps,
        quanta,
        power_budget_fraction: 0.6,
        // The freeze (quantum 20) captures its report under the roomy
        // budget; the cut at 24 strands that belief far over the envelope.
        budget_steps: vec![BudgetStep {
            quantum: 24,
            fraction: 0.2,
        }],
        fault_plan: FaultPlan {
            faults: vec![
                AppFault {
                    app: 1,
                    kind: FaultKind::MisreportPower { factor: 3.0 },
                    from: 10,
                    until: None,
                },
                AppFault {
                    app: 2,
                    kind: FaultKind::NonFiniteTelemetry,
                    from: 14,
                    until: None,
                },
                AppFault {
                    app: 3,
                    kind: FaultKind::StallHeartbeats,
                    from: 12,
                    until: None,
                },
                AppFault {
                    app: 4,
                    kind: FaultKind::Crash,
                    from: 18,
                    until: None,
                },
                AppFault {
                    app: 5,
                    kind: FaultKind::FreezeTelemetry,
                    from: 20,
                    until: None,
                },
                AppFault {
                    app: 6,
                    kind: FaultKind::StallHeartbeats,
                    from: 8,
                    until: Some(16),
                },
            ],
        },
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    // ---- rack-rogues: one misbehaving app per rack ---------------------
    let quanta = 48;
    let mut rogue_apps = Vec::new();
    for rack in 0..3usize {
        for slot in 0..4usize {
            rogue_apps.push(ScenarioApp {
                benchmark: pick(),
                seed: seed.wrapping_add(31_000 + (rack * 10 + slot) as u64),
                weight: PRIORITY_TIERS[slot % PRIORITY_TIERS.len()],
                arrival: 0,
                departure: None,
                target_fraction: 0.35,
                rack,
            });
        }
    }
    // The under-reporter is a *hungry* freeloader: top priority and a
    // near-saturating target, so its physical draw is large while its
    // claims stay small — the gap that pushes its rack over the awarded
    // envelope and that only the breaker (never audit) can contain.
    rogue_apps[0].weight = PRIORITY_TIERS[2];
    rogue_apps[0].target_fraction = 0.9;
    let rack_rogues = Scenario {
        name: "rack-rogues".to_string(),
        apps: rogue_apps,
        quanta,
        power_budget_fraction: 0.4,
        budget_steps: Vec::new(),
        fault_plan: FaultPlan {
            faults: vec![
                AppFault {
                    app: 0,
                    kind: FaultKind::MisreportPower { factor: 0.35 },
                    from: 8,
                    until: None,
                },
                AppFault {
                    app: 5,
                    kind: FaultKind::StallHeartbeats,
                    from: 10,
                    until: None,
                },
                AppFault {
                    app: 10,
                    kind: FaultKind::Crash,
                    from: 16,
                    until: None,
                },
            ],
        },
        arbitration_tolerance: 0.0,
        wake_horizon: 0,
        wake_steady_quanta: 0,
    };

    vec![fault_storm, rack_rogues]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic_for_a_seed() {
        assert_eq!(scenario_mixes(7), scenario_mixes(7));
        assert_ne!(scenario_mixes(7), scenario_mixes(8));
    }

    #[test]
    fn mixes_are_well_formed() {
        for scenario in scenario_mixes(2012) {
            assert!(!scenario.apps.is_empty(), "{}", scenario.name);
            assert!(scenario.quanta > 0);
            assert!(
                scenario.power_budget_fraction > 0.0 && scenario.power_budget_fraction <= 1.0
            );
            for app in &scenario.apps {
                assert!(app.weight > 0.0);
                assert!(app.target_fraction > 0.0 && app.target_fraction <= 1.0);
                assert!(app.arrival < scenario.quanta);
                if let Some(departure) = app.departure {
                    assert!(departure > app.arrival && departure <= scenario.quanta);
                }
            }
            assert!(scenario.peak_concurrency() >= 2, "{}", scenario.name);
            // The original single-machine mixes live entirely on rack 0.
            assert_eq!(scenario.rack_count(), 1, "{}", scenario.name);
        }
    }

    #[test]
    fn mixes_cover_arrivals_departures_and_tiers() {
        let mixes = scenario_mixes(2012);
        assert_eq!(mixes.len(), 3);
        let staggered = &mixes[1];
        assert!(staggered.apps.iter().any(|a| a.arrival > 0), "staggered arrivals");
        assert!(staggered.apps.iter().any(|a| a.departure.is_some()), "a departure");
        let tiered = &mixes[2];
        let mut weights: Vec<f64> = tiered.apps.iter().map(|a| a.weight).collect();
        weights.sort_by(f64::total_cmp);
        weights.dedup();
        assert!(weights.len() >= 3, "three priority tiers, got {weights:?}");
    }

    #[test]
    fn extended_mixes_reach_coordinator_scale() {
        let mixes = extended_scenario_mixes(2012);
        assert_eq!(extended_scenario_mixes(2012), mixes, "deterministic");
        assert_eq!(mixes.len(), 2);

        let storm = &mixes[0];
        assert_eq!(storm.name, "arrival-storm");
        assert_eq!(storm.apps.len(), 100);
        assert!(storm.budget_steps.is_empty());
        // Rack-tagged: four racks, each hosting a non-trivial share.
        assert_eq!(storm.rack_count(), 4);
        for rack in 0..4 {
            let hosted = storm.apps.iter().filter(|a| a.rack == rack).count();
            assert!(hosted >= 20, "rack {rack} hosts only {hosted} apps");
        }
        // Bursty: each 30-app burst lands over three consecutive quanta,
        // so some quantum sees 10 registrations in a single step.
        let arrivals_at = |q: usize| storm.apps.iter().filter(|a| a.arrival == q).count();
        assert!(
            (0..storm.quanta).any(|q| arrivals_at(q) >= 10),
            "the storm must land many apps in one quantum"
        );
        assert!(storm.apps.iter().any(|a| a.departure.is_some()));

        let stepped = &mixes[1];
        assert_eq!(stepped.name, "budget-steps");
        assert!(stepped.apps.len() >= 1_000, "thousand-app scale");
        assert_eq!(stepped.rack_count(), 8);
        assert_eq!(stepped.budget_steps.len(), 2);
        assert!(stepped
            .budget_steps
            .windows(2)
            .all(|pair| pair[0].quantum < pair[1].quantum));
        assert_eq!(stepped.budget_fraction_at(0), 0.7);
        assert_eq!(stepped.budget_fraction_at(24), 0.35);
        assert_eq!(stepped.budget_fraction_at(39), 0.35);
        assert_eq!(stepped.budget_fraction_at(55), 0.55);
        // Robust to unsorted steps: the latest step at or before the
        // quantum wins regardless of list order.
        let mut unsorted = stepped.clone();
        unsorted.budget_steps.reverse();
        assert_eq!(unsorted.budget_fraction_at(30), 0.35);
        assert_eq!(unsorted.budget_fraction_at(55), 0.55);

        for scenario in &mixes {
            for app in &scenario.apps {
                assert!(app.weight > 0.0);
                assert!(app.target_fraction > 0.0 && app.target_fraction <= 1.0);
                assert!(app.arrival < scenario.quanta);
                if let Some(departure) = app.departure {
                    assert!(departure > app.arrival && departure <= scenario.quanta);
                }
            }
        }
    }

    #[test]
    fn vocabulary_mixes_cover_the_adversarial_shapes() {
        let mixes = vocabulary_mixes(2012);
        assert_eq!(vocabulary_mixes(2012), mixes, "deterministic");
        assert_ne!(vocabulary_mixes(7), mixes);
        assert_eq!(mixes.len(), 3);
        for scenario in &mixes {
            assert!(scenario.is_well_formed(), "{}", scenario.name);
        }

        let diurnal = &mixes[0];
        assert_eq!(diurnal.name, "diurnal-budget");
        assert!(diurnal.budget_steps.len() >= 6, "a staircase day curve");
        let fractions: Vec<f64> = (0..diurnal.quanta)
            .map(|q| diurnal.budget_fraction_at(q))
            .collect();
        let peak = fractions.iter().copied().fold(0.0, f64::max);
        let trough = fractions.iter().copied().fold(1.0, f64::min);
        assert!(peak >= 0.6 && trough <= 0.3, "peak {peak}, trough {trough}");

        let crowd = &mixes[1];
        assert_eq!(crowd.name, "flash-crowd");
        let landing = crowd
            .apps
            .iter()
            .filter(|a| a.arrival > 0)
            .map(|a| a.arrival)
            .collect::<Vec<_>>();
        assert!(landing.len() >= 20);
        assert!(
            landing.windows(2).all(|w| w[0] == w[1]),
            "the crowd lands on one quantum"
        );

        let shifted = &mixes[2];
        assert_eq!(shifted.name, "phase-shift");
        assert_eq!(shifted.rack_count(), 3);
        for rack in 0..3 {
            let seeds: Vec<u64> = shifted
                .apps
                .iter()
                .filter(|a| a.rack == rack)
                .map(|a| a.seed)
                .collect();
            assert!(seeds.len() >= 2);
            assert!(
                seeds.windows(2).all(|w| w[0] == w[1]),
                "rack {rack} phases are correlated"
            );
        }
        let mut arrivals: Vec<usize> = shifted.apps.iter().map(|a| a.arrival).collect();
        arrivals.sort_unstable();
        arrivals.dedup();
        assert!(arrivals.len() >= 3, "arrivals stagger across racks");
    }

    #[test]
    fn sanitize_repairs_arbitrary_damage_and_is_idempotent() {
        let mut wrecked = Scenario {
            name: "wreck".to_string(),
            apps: vec![ScenarioApp {
                benchmark: SplashBenchmark::Volrend,
                seed: 3,
                weight: f64::NAN,
                arrival: 10_000,
                departure: Some(0),
                target_fraction: -2.0,
                rack: 99,
            }],
            quanta: 0,
            power_budget_fraction: f64::INFINITY,
            budget_steps: vec![BudgetStep {
                quantum: usize::MAX,
                fraction: 0.0,
            }],
            fault_plan: FaultPlan {
                faults: vec![AppFault {
                    app: 7,
                    kind: FaultKind::MisreportPower {
                        factor: f64::INFINITY,
                    },
                    from: usize::MAX,
                    until: Some(0),
                }],
            },
            arbitration_tolerance: f64::NAN,
            wake_horizon: usize::MAX,
            wake_steady_quanta: u32::MAX,
        };
        assert!(!wrecked.is_well_formed());
        wrecked.sanitize();
        assert!(wrecked.is_well_formed(), "{wrecked:?}");
        let once = wrecked.clone();
        wrecked.sanitize();
        assert_eq!(wrecked, once, "sanitize is idempotent");

        // Sanitize is the identity on every generated mix.
        for scenario in scenario_mixes(5)
            .into_iter()
            .chain(extended_scenario_mixes(5))
            .chain(vocabulary_mixes(5))
            .chain(chaos_mixes(5))
        {
            let mut sanitized = scenario.clone();
            sanitized.sanitize();
            assert_eq!(sanitized, scenario, "{}", scenario.name);
        }
    }

    #[test]
    fn chaos_mixes_cover_every_fault_kind() {
        let mixes = chaos_mixes(2012);
        assert_eq!(chaos_mixes(2012), mixes, "deterministic");
        assert_ne!(chaos_mixes(7), mixes);
        assert_eq!(mixes.len(), 2);
        for scenario in &mixes {
            assert!(scenario.is_well_formed(), "{}", scenario.name);
            assert!(!scenario.fault_plan.is_empty(), "{}", scenario.name);
        }

        let storm = &mixes[0];
        assert_eq!(storm.name, "fault-storm");
        assert_eq!(storm.rack_count(), 1);
        let kinds: Vec<FaultKind> =
            storm.fault_plan.faults.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FaultKind::StallHeartbeats));
        assert!(kinds.contains(&FaultKind::FreezeTelemetry));
        assert!(kinds.contains(&FaultKind::NonFiniteTelemetry));
        assert!(kinds.contains(&FaultKind::Crash));
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, FaultKind::MisreportPower { .. })),
            "a power misreporter"
        );
        assert!(
            storm
                .fault_plan
                .faults
                .iter()
                .any(|f| f.until.is_some()),
            "a transient fault, for recovery measurement"
        );
        let healthy = (0..storm.apps.len())
            .filter(|&app| !storm.fault_plan.targets_app(app))
            .count();
        assert!(healthy >= 2, "healthy controls remain, got {healthy}");

        let rogues = &mixes[1];
        assert_eq!(rogues.name, "rack-rogues");
        assert_eq!(rogues.rack_count(), 3);
        // One rogue per rack.
        for rack in 0..3 {
            let rogue_count = rogues
                .fault_plan
                .faults
                .iter()
                .filter(|f| rogues.apps[f.app].rack == rack)
                .count();
            assert_eq!(rogue_count, 1, "rack {rack}");
        }
    }

    #[test]
    fn fault_free_scenarios_serialize_without_the_fault_field() {
        // Byte-compat pin: adding FaultPlan must not disturb the JSON of
        // fault-free scenarios (corpus/report byte-identity depends on it).
        let steady = &scenario_mixes(2012)[0];
        let text = serde_json::to_string_pretty(steady).unwrap();
        assert!(!text.contains("fault_plan"), "{text}");
        let back: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(&back, steady, "absent plan reads back as empty");

        // Fault-carrying scenarios round-trip the plan.
        for scenario in chaos_mixes(2012) {
            let text = serde_json::to_string_pretty(&scenario).unwrap();
            assert!(text.contains("fault_plan"), "{}", scenario.name);
            let back: Scenario = serde_json::from_str(&text).unwrap();
            assert_eq!(back, scenario, "{}", scenario.name);
        }
    }

    #[test]
    fn wake_knobs_serialize_only_when_enabled() {
        // Byte-compat pin: knob-off scenarios must not mention the wake
        // fields at all (same discipline as fault_plan and tolerance).
        let steady = &scenario_mixes(2012)[0];
        let text = serde_json::to_string_pretty(steady).unwrap();
        assert!(!text.contains("wake_horizon"), "{text}");

        let mut on = steady.clone();
        on.arbitration_tolerance = 0.1;
        on.wake_horizon = 32;
        on.wake_steady_quanta = 2;
        assert!(on.is_well_formed());
        let text = serde_json::to_string_pretty(&on).unwrap();
        assert!(text.contains("wake_horizon"), "{text}");
        assert!(text.contains("wake_steady_quanta"), "{text}");
        let back: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(back, on, "the wake pair round-trips");
    }

    #[test]
    fn sanitize_keeps_the_wake_pair_canonical() {
        let mut scenario = scenario_mixes(2012)[0].clone();
        // A horizon without a tolerance has no engine to ride on: the
        // whole pair collapses back to off.
        scenario.wake_horizon = 40;
        scenario.wake_steady_quanta = 3;
        assert!(!scenario.is_well_formed());
        scenario.sanitize();
        assert_eq!((scenario.wake_horizon, scenario.wake_steady_quanta), (0, 0));
        assert!(scenario.is_well_formed());
        // Enabled but out of range: both knobs clamp into the canonical
        // domain (horizon to the cap, a zero streak up to one).
        scenario.arbitration_tolerance = 0.2;
        scenario.wake_horizon = 9_999;
        scenario.wake_steady_quanta = 0;
        scenario.sanitize();
        assert_eq!(scenario.wake_horizon, MAX_WAKE_HORIZON);
        assert_eq!(scenario.wake_steady_quanta, 1);
        assert!(scenario.is_well_formed());
    }

    #[test]
    fn activity_window_is_half_open() {
        let app = ScenarioApp {
            benchmark: SplashBenchmark::Barnes,
            seed: 1,
            weight: 1.0,
            arrival: 10,
            departure: Some(20),
            target_fraction: 0.5,
            rack: 0,
        };
        assert!(!app.active_at(9));
        assert!(app.active_at(10));
        assert!(app.active_at(19));
        assert!(!app.active_at(20));
        let forever = ScenarioApp {
            departure: None,
            ..app
        };
        assert!(forever.active_at(1_000_000));
    }
}
