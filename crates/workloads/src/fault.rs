//! Deterministic fault injection: serializable schedules of application
//! misbehaviour.
//!
//! The coordination experiments assume well-behaved applications — they
//! beat, they report finite telemetry, they retire when they leave. A
//! [`FaultPlan`] scripts the opposite: per-app windows on the shared
//! quantum schedule during which an application stalls its heartbeats,
//! freezes or corrupts its telemetry, misreports its power draw, or
//! crashes without retiring. Plans are plain data attached to
//! [`crate::Scenario`], so the scenario fuzzer mutates them like any other
//! scenario field and a pinned fixture replays the exact same misbehaviour
//! forever.
//!
//! The plan only *describes* faults; the experiment harness interprets it
//! when feeding telemetry to the platform (see
//! [`FaultKind::corrupt_telemetry`]). The coordinator never reads the plan
//! — it must detect the misbehaviour from the telemetry alone, which is
//! exactly what its watchdog ladder is for.

use serde::{Deserialize, Serialize};

/// Smallest power-misreport factor a sanitized plan may carry.
pub const MIN_MISREPORT_FACTOR: f64 = 0.25;

/// Largest power-misreport factor a sanitized plan may carry.
pub const MAX_MISREPORT_FACTOR: f64 = 8.0;

/// Most faults a sanitized plan may schedule (bounds fuzz executor cost).
pub const MAX_PLAN_FAULTS: usize = 8;

/// What a faulty application does while its fault window is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The heartbeat pipe wedges: no beats or power samples reach the
    /// platform, but the application keeps executing (and drawing power).
    StallHeartbeats,
    /// Telemetry freezes: the application reports its last pre-fault work
    /// and power every quantum, regardless of what it actually does.
    FreezeTelemetry,
    /// Telemetry corrupts: reported power becomes NaN.
    NonFiniteTelemetry,
    /// The application misreports its power draw by a multiplicative
    /// factor (its believed power is off by ×factor); actual draw is
    /// unchanged.
    MisreportPower {
        /// Multiplier applied to the reported power.
        factor: f64,
    },
    /// The application dies without retiring: it stops executing (drawing
    /// nothing, reporting nothing) but stays registered forever.
    Crash,
}

impl FaultKind {
    /// Whether the application stops executing (and drawing power) under
    /// this fault.
    pub fn halts_execution(&self) -> bool {
        matches!(self, FaultKind::Crash)
    }

    /// Applies the fault to one quantum's telemetry report. `work` and
    /// `power` are the ground truth the quantum produced; `frozen` is the
    /// last pre-fault report (captured by the harness at fault onset).
    /// Returns the corrupted `(work, power)` report, or `None` when no
    /// report reaches the platform at all.
    pub fn corrupt_telemetry(
        &self,
        work: f64,
        power: f64,
        frozen: Option<(f64, f64)>,
    ) -> Option<(f64, f64)> {
        match self {
            FaultKind::StallHeartbeats | FaultKind::Crash => None,
            FaultKind::FreezeTelemetry => Some(frozen.unwrap_or((work, power))),
            FaultKind::NonFiniteTelemetry => Some((work, f64::NAN)),
            FaultKind::MisreportPower { factor } => Some((work, power * factor)),
        }
    }
}

/// One scheduled fault window for one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppFault {
    /// Index of the target application in [`crate::Scenario::apps`].
    pub app: usize,
    /// What the application does during the window.
    pub kind: FaultKind,
    /// First shared quantum (inclusive) the fault is active.
    pub from: usize,
    /// Quantum (exclusive) at which the fault clears; `None` = the fault
    /// persists to the end of the run.
    pub until: Option<usize>,
}

impl AppFault {
    /// Whether the fault window covers shared quantum `quantum`.
    pub fn active_at(&self, quantum: usize) -> bool {
        quantum >= self.from && self.until.is_none_or(|u| quantum < u)
    }
}

/// A deterministic, serializable schedule of fault injections over one
/// scenario's shared quantum timeline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in injection order. When two windows cover
    /// the same app and quantum, the earliest list entry wins.
    pub faults: Vec<AppFault>,
}

impl FaultPlan {
    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault (if any) governing `app` at `quantum`: the earliest list
    /// entry whose window covers the pair.
    pub fn active_fault(&self, app: usize, quantum: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|fault| fault.app == app && fault.active_at(quantum))
            .map(|fault| fault.kind)
    }

    /// Whether any fault window ever targets `app`.
    pub fn targets_app(&self, app: usize) -> bool {
        self.faults.iter().any(|fault| fault.app == app)
    }

    /// Whether every fault is inside the domain the experiment drivers
    /// assume for a scenario with `apps` applications and `quanta` quanta.
    pub fn is_well_formed(&self, apps: usize, quanta: usize) -> bool {
        self.faults.len() <= MAX_PLAN_FAULTS
            && self.faults.iter().all(|fault| {
                fault.app < apps.max(1)
                    && fault.from < quanta
                    && fault.until.is_none_or(|u| u > fault.from && u <= quanta)
                    && match fault.kind {
                        FaultKind::MisreportPower { factor } => {
                            (MIN_MISREPORT_FACTOR..=MAX_MISREPORT_FACTOR).contains(&factor)
                        }
                        _ => true,
                    }
            })
            && (apps > 0 || self.faults.is_empty())
    }

    /// Repairs the plan in place for a scenario with `apps` applications
    /// and `quanta` quanta (clamping mirrors
    /// [`crate::Scenario::sanitize`]). Idempotent, and the identity on
    /// already-well-formed plans.
    pub fn sanitize(&mut self, apps: usize, quanta: usize) {
        if apps == 0 || quanta == 0 {
            self.faults.clear();
            return;
        }
        self.faults.truncate(MAX_PLAN_FAULTS);
        for fault in &mut self.faults {
            fault.app %= apps;
            fault.from = fault.from.min(quanta - 1);
            if let Some(until) = fault.until {
                fault.until = Some(until.clamp(fault.from + 1, quanta));
            }
            if let FaultKind::MisreportPower { factor } = &mut fault.kind {
                *factor = if factor.is_finite() {
                    factor.clamp(MIN_MISREPORT_FACTOR, MAX_MISREPORT_FACTOR)
                } else {
                    2.0
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            faults: vec![
                AppFault {
                    app: 0,
                    kind: FaultKind::StallHeartbeats,
                    from: 4,
                    until: Some(8),
                },
                AppFault {
                    app: 1,
                    kind: FaultKind::MisreportPower { factor: 3.0 },
                    from: 2,
                    until: None,
                },
            ],
        }
    }

    #[test]
    fn windows_are_half_open_and_earliest_entry_wins() {
        let plan = plan();
        assert_eq!(plan.active_fault(0, 3), None);
        assert_eq!(plan.active_fault(0, 4), Some(FaultKind::StallHeartbeats));
        assert_eq!(plan.active_fault(0, 7), Some(FaultKind::StallHeartbeats));
        assert_eq!(plan.active_fault(0, 8), None);
        assert_eq!(
            plan.active_fault(1, 100),
            Some(FaultKind::MisreportPower { factor: 3.0 })
        );
        assert_eq!(plan.active_fault(2, 4), None);
        assert!(plan.targets_app(0) && plan.targets_app(1) && !plan.targets_app(2));

        let mut overlapping = plan.clone();
        overlapping.faults.push(AppFault {
            app: 0,
            kind: FaultKind::Crash,
            from: 0,
            until: None,
        });
        assert_eq!(
            overlapping.active_fault(0, 5),
            Some(FaultKind::StallHeartbeats),
            "the earliest list entry governs an overlap"
        );
    }

    #[test]
    fn corruption_matches_the_fault_semantics() {
        assert_eq!(
            FaultKind::StallHeartbeats.corrupt_telemetry(3.0, 10.0, None),
            None
        );
        assert_eq!(FaultKind::Crash.corrupt_telemetry(3.0, 10.0, None), None);
        assert_eq!(
            FaultKind::FreezeTelemetry.corrupt_telemetry(3.0, 10.0, Some((5.0, 20.0))),
            Some((5.0, 20.0))
        );
        assert_eq!(
            FaultKind::FreezeTelemetry.corrupt_telemetry(3.0, 10.0, None),
            Some((3.0, 10.0))
        );
        let (work, power) = FaultKind::NonFiniteTelemetry
            .corrupt_telemetry(3.0, 10.0, None)
            .unwrap();
        assert_eq!(work, 3.0);
        assert!(power.is_nan());
        assert_eq!(
            FaultKind::MisreportPower { factor: 2.0 }.corrupt_telemetry(3.0, 10.0, None),
            Some((3.0, 20.0))
        );
        assert!(FaultKind::Crash.halts_execution());
        assert!(!FaultKind::StallHeartbeats.halts_execution());
    }

    #[test]
    fn sanitize_repairs_and_is_idempotent() {
        let mut wrecked = FaultPlan {
            faults: vec![
                AppFault {
                    app: 99,
                    kind: FaultKind::MisreportPower { factor: f64::NAN },
                    from: 1_000,
                    until: Some(0),
                },
                AppFault {
                    app: 1,
                    kind: FaultKind::Crash,
                    from: 0,
                    until: Some(100),
                },
            ],
        };
        assert!(!wrecked.is_well_formed(3, 16));
        wrecked.sanitize(3, 16);
        assert!(wrecked.is_well_formed(3, 16), "{wrecked:?}");
        let once = wrecked.clone();
        wrecked.sanitize(3, 16);
        assert_eq!(wrecked, once, "sanitize is idempotent");

        let mut well_formed = plan();
        let before = well_formed.clone();
        well_formed.sanitize(2, 16);
        assert_eq!(well_formed, before, "identity on well-formed plans");

        let mut appless = plan();
        appless.sanitize(0, 16);
        assert!(appless.is_empty(), "no apps, no faults");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = plan();
        let text = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
    }
}
