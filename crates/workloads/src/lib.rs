//! # Synthetic SPLASH-2 workload models
//!
//! The paper's evaluation (§5.1) uses five applications from the SPLASH-2
//! benchmark suite — `barnes`, `ocean` (non-contiguous), `raytrace`, `water`
//! (spatial), and `volrend` — each instrumented with the Application
//! Heartbeats API. The real binaries (and the inputs the authors expanded to
//! run for more than a second) are not available here, so this crate models
//! each application analytically: a [`WorkloadProfile`] captures the
//! published execution characteristics that matter to the hardware model
//! (parallelism, memory intensity, working set, sharing, load imbalance),
//! and a [`Workload`] turns the profile into a deterministic sequence of
//! per-quantum demands with phase behaviour and noise.
//!
//! SEEC never looks inside an application — it only sees heartbeats — so a
//! model that emits heartbeats whose rate responds to resources the way the
//! real code does preserves the behaviour the experiments measure (see
//! DESIGN.md, "Substitutions").
//!
//! ```
//! use workloads::{SplashBenchmark, Workload};
//!
//! let workload = Workload::new(SplashBenchmark::Barnes, 42);
//! let quanta = workload.quanta(100);
//! assert_eq!(quanta.len(), 100);
//! let total: f64 = quanta.iter().map(|q| q.instructions).sum();
//! assert!((total - workload.profile().total_instructions).abs() < 1e-3 * total);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod driver;
pub mod fault;
mod phases;
mod profile;
mod scenario;

pub use driver::HeartbeatedWorkload;
pub use fault::{
    AppFault, FaultKind, FaultPlan, MAX_MISREPORT_FACTOR, MAX_PLAN_FAULTS, MIN_MISREPORT_FACTOR,
};
pub use phases::{QuantumDemand, Workload};
pub use profile::{SplashBenchmark, WorkloadProfile};
pub use scenario::{
    chaos_mixes, extended_scenario_mixes, scenario_mixes, vocabulary_mixes, BudgetStep, Scenario,
    ScenarioApp, MAX_APP_WEIGHT, MAX_ARBITRATION_TOLERANCE, MAX_SCENARIO_QUANTA,
    MAX_SCENARIO_RACKS, MAX_WAKE_HORIZON, MAX_WAKE_STEADY_QUANTA, MIN_APP_WEIGHT,
    MIN_BUDGET_FRACTION, MIN_SCENARIO_QUANTA, MIN_TARGET_FRACTION,
};
