//! Per-benchmark execution profiles.

use serde::{Deserialize, Serialize};

/// The five SPLASH-2 applications used in the paper's evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SplashBenchmark {
    /// Barnes-Hut hierarchical N-body simulation.
    Barnes,
    /// Ocean current simulation, non-contiguous partitions variant.
    OceanNonContiguous,
    /// Ray tracer with image-space task parallelism.
    Raytrace,
    /// Water molecular dynamics, spatial decomposition variant.
    WaterSpatial,
    /// Volume renderer.
    Volrend,
}

impl SplashBenchmark {
    /// Every benchmark in the evaluation, in the order the paper lists them.
    pub const ALL: [SplashBenchmark; 5] = [
        SplashBenchmark::Barnes,
        SplashBenchmark::OceanNonContiguous,
        SplashBenchmark::Raytrace,
        SplashBenchmark::WaterSpatial,
        SplashBenchmark::Volrend,
    ];

    /// Short name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SplashBenchmark::Barnes => "barnes",
            SplashBenchmark::OceanNonContiguous => "ocean",
            SplashBenchmark::Raytrace => "raytrace",
            SplashBenchmark::WaterSpatial => "water",
            SplashBenchmark::Volrend => "volrend",
        }
    }

    /// The calibrated profile for this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        WorkloadProfile::for_benchmark(self)
    }
}

impl std::fmt::Display for SplashBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution characteristics of one application, expressed in the
/// substrate-neutral terms both hardware models consume.
///
/// The values are calibrated to the published characterisation of SPLASH-2
/// (Woo et al., ISCA 1995) and to the qualitative behaviour the paper relies
/// on: `barnes` scales almost linearly, `ocean` is memory- and
/// cache-capacity-bound, `raytrace` suffers load imbalance, `water` is
/// compute-bound with a small working set, and `volrend` alternates phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Which benchmark this profile describes.
    pub benchmark: SplashBenchmark,
    /// Total dynamic instructions for the (expanded) input.
    pub total_instructions: f64,
    /// Total application work units (heartbeats' worth of work).
    pub total_work_units: f64,
    /// Fraction of the work that can execute in parallel.
    pub parallel_fraction: f64,
    /// Memory operations per instruction.
    pub memory_ops_per_instruction: f64,
    /// Working-set size in bytes.
    pub working_set_bytes: f64,
    /// Exponent of the power-law miss-rate curve (capacity sensitivity).
    pub locality_exponent: f64,
    /// Fraction of memory operations touching shared data.
    pub sharing_fraction: f64,
    /// Explicit communication flits per instruction.
    pub communication_flits_per_instruction: f64,
    /// Load imbalance factor (≥ 1.0).
    pub load_imbalance: f64,
    /// Base cycles per instruction with an ideal memory system.
    pub base_cpi: f64,
    /// Last-level-cache miss rate on the fixed-hierarchy Xeon platform.
    pub xeon_llc_miss_rate: f64,
    /// Relative amplitude of phase-to-phase variation in demand (0 = steady).
    pub phase_variability: f64,
}

impl WorkloadProfile {
    /// The calibrated profile of `benchmark`.
    pub fn for_benchmark(benchmark: SplashBenchmark) -> Self {
        let mib = 1024.0 * 1024.0;
        match benchmark {
            SplashBenchmark::Barnes => WorkloadProfile {
                benchmark,
                total_instructions: 8.0e9,
                total_work_units: 2048.0,
                parallel_fraction: 0.998,
                memory_ops_per_instruction: 0.25,
                working_set_bytes: 8.0 * mib,
                locality_exponent: 0.45,
                sharing_fraction: 0.10,
                communication_flits_per_instruction: 0.004,
                load_imbalance: 1.05,
                base_cpi: 1.0,
                xeon_llc_miss_rate: 0.010,
                phase_variability: 0.10,
            },
            SplashBenchmark::OceanNonContiguous => WorkloadProfile {
                benchmark,
                total_instructions: 6.0e9,
                total_work_units: 1536.0,
                parallel_fraction: 0.99,
                memory_ops_per_instruction: 0.45,
                working_set_bytes: 56.0 * mib,
                locality_exponent: 1.0,
                sharing_fraction: 0.25,
                communication_flits_per_instruction: 0.012,
                load_imbalance: 1.02,
                base_cpi: 0.9,
                xeon_llc_miss_rate: 0.050,
                phase_variability: 0.15,
            },
            SplashBenchmark::Raytrace => WorkloadProfile {
                benchmark,
                total_instructions: 7.0e9,
                total_work_units: 1792.0,
                parallel_fraction: 0.995,
                memory_ops_per_instruction: 0.30,
                working_set_bytes: 32.0 * mib,
                locality_exponent: 0.40,
                sharing_fraction: 0.15,
                communication_flits_per_instruction: 0.006,
                load_imbalance: 1.35,
                base_cpi: 1.1,
                xeon_llc_miss_rate: 0.030,
                phase_variability: 0.30,
            },
            SplashBenchmark::WaterSpatial => WorkloadProfile {
                benchmark,
                total_instructions: 9.0e9,
                total_work_units: 2304.0,
                parallel_fraction: 0.985,
                memory_ops_per_instruction: 0.15,
                working_set_bytes: 2.0 * mib,
                locality_exponent: 0.30,
                sharing_fraction: 0.05,
                communication_flits_per_instruction: 0.003,
                load_imbalance: 1.02,
                base_cpi: 1.2,
                xeon_llc_miss_rate: 0.005,
                phase_variability: 0.05,
            },
            SplashBenchmark::Volrend => WorkloadProfile {
                benchmark,
                total_instructions: 5.0e9,
                total_work_units: 1280.0,
                parallel_fraction: 0.96,
                memory_ops_per_instruction: 0.35,
                working_set_bytes: 16.0 * mib,
                locality_exponent: 0.60,
                sharing_fraction: 0.20,
                communication_flits_per_instruction: 0.008,
                load_imbalance: 1.20,
                base_cpi: 1.0,
                xeon_llc_miss_rate: 0.020,
                phase_variability: 0.40,
            },
        }
    }

    /// Instructions per application work unit (per heartbeat).
    pub fn instructions_per_work_unit(&self) -> f64 {
        if self.total_work_units > 0.0 {
            self.total_instructions / self.total_work_units
        } else {
            self.total_instructions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_distinct_names_and_profiles() {
        let mut names: Vec<_> = SplashBenchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        for b in SplashBenchmark::ALL {
            assert_eq!(b.profile().benchmark, b);
            assert_eq!(b.to_string(), b.name());
        }
    }

    #[test]
    fn profiles_are_within_physical_domains() {
        for b in SplashBenchmark::ALL {
            let p = b.profile();
            assert!(p.total_instructions > 0.0);
            assert!(p.total_work_units > 0.0);
            assert!((0.0..=1.0).contains(&p.parallel_fraction));
            assert!((0.0..=1.0).contains(&p.sharing_fraction));
            assert!((0.0..=1.0).contains(&p.xeon_llc_miss_rate));
            assert!(p.load_imbalance >= 1.0);
            assert!(p.base_cpi > 0.0);
            assert!(p.working_set_bytes > 0.0);
            assert!(p.instructions_per_work_unit() > 0.0);
        }
    }

    #[test]
    fn barnes_is_the_most_scalable_benchmark() {
        let barnes = SplashBenchmark::Barnes.profile();
        for b in SplashBenchmark::ALL {
            if b != SplashBenchmark::Barnes {
                assert!(barnes.parallel_fraction >= b.profile().parallel_fraction);
            }
        }
    }

    #[test]
    fn ocean_is_the_most_memory_bound_benchmark() {
        let ocean = SplashBenchmark::OceanNonContiguous.profile();
        for b in SplashBenchmark::ALL {
            if b != SplashBenchmark::OceanNonContiguous {
                let p = b.profile();
                assert!(ocean.memory_ops_per_instruction >= p.memory_ops_per_instruction);
                assert!(ocean.working_set_bytes >= p.working_set_bytes);
            }
        }
    }

    #[test]
    fn raytrace_has_the_worst_load_imbalance() {
        let raytrace = SplashBenchmark::Raytrace.profile();
        for b in SplashBenchmark::ALL {
            if b != SplashBenchmark::Raytrace {
                assert!(raytrace.load_imbalance >= b.profile().load_imbalance);
            }
        }
    }

    #[test]
    fn water_has_the_smallest_working_set() {
        let water = SplashBenchmark::WaterSpatial.profile();
        for b in SplashBenchmark::ALL {
            if b != SplashBenchmark::WaterSpatial {
                assert!(water.working_set_bytes <= b.profile().working_set_bytes);
            }
        }
    }
}
