//! Heartbeat instrumentation: coupling a workload model to the heartbeat API.
//!
//! The paper instruments each SPLASH-2 application with the Application
//! Heartbeats API so that it emits one heartbeat per unit of work and states
//! a performance goal (§5.1). [`HeartbeatedWorkload`] plays that role for the
//! synthetic models: the experiment driver reports how much work the
//! substrate completed and at what simulated time, and the instrumentation
//! emits the corresponding heartbeats into a registry the SEEC runtime
//! observes.

use heartbeats::{Goal, HeartbeatIssuer, HeartbeatMonitor, HeartbeatRegistry, PerformanceGoal};

use crate::phases::Workload;
use crate::profile::SplashBenchmark;

/// A workload instrumented with the Application Heartbeats API.
#[derive(Debug)]
pub struct HeartbeatedWorkload {
    workload: Workload,
    registry: HeartbeatRegistry,
    issuer: HeartbeatIssuer,
    completed_work: f64,
    emitted_beats: u64,
    work_per_beat: f64,
}

impl HeartbeatedWorkload {
    /// Instruments `workload` so that one heartbeat is emitted per work unit.
    pub fn new(workload: Workload) -> Self {
        Self::with_work_per_beat(workload, 1.0)
    }

    /// Instruments `workload` emitting one heartbeat every `work_per_beat`
    /// work units.
    ///
    /// # Panics
    ///
    /// Panics if `work_per_beat` is not positive.
    pub fn with_work_per_beat(workload: Workload, work_per_beat: f64) -> Self {
        assert!(work_per_beat > 0.0, "work per beat must be positive");
        let registry = HeartbeatRegistry::new(workload.benchmark().name());
        let issuer = registry.issuer();
        HeartbeatedWorkload {
            workload,
            registry,
            issuer,
            completed_work: 0.0,
            emitted_beats: 0,
            work_per_beat,
        }
    }

    /// The benchmark being modelled.
    pub fn benchmark(&self) -> SplashBenchmark {
        self.workload.benchmark()
    }

    /// The underlying workload model.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The shared heartbeat registry (attach monitors from here).
    pub fn registry(&self) -> &HeartbeatRegistry {
        &self.registry
    }

    /// A fresh observer handle onto the application's heartbeats.
    pub fn monitor(&self) -> HeartbeatMonitor {
        self.registry.monitor()
    }

    /// Declares the application's performance goal as a target heart rate.
    pub fn set_heart_rate_goal(&self, beats_per_second: f64) {
        self.issuer
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(
                beats_per_second,
            )));
    }

    /// Total work units completed so far.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Total heartbeats emitted so far.
    pub fn emitted_beats(&self) -> u64 {
        self.emitted_beats
    }

    /// Fraction of the whole run completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.completed_work / self.workload.profile().total_work_units).clamp(0.0, 1.0)
    }

    /// Whether every work unit of the run has been completed.
    pub fn is_finished(&self) -> bool {
        self.completed_work >= self.workload.profile().total_work_units - 1e-9
    }

    /// Reports that the substrate completed `work_units` of application work
    /// by simulation time `now` (seconds). Emits one heartbeat per
    /// `work_per_beat` units crossed, all stamped at `now` (within a quantum
    /// the substrate does not resolve finer timing). Returns the number of
    /// heartbeats emitted.
    pub fn advance(&mut self, now: f64, work_units: f64) -> u64 {
        self.completed_work += work_units.max(0.0);
        let due = (self.completed_work / self.work_per_beat).floor() as u64;
        let mut emitted = 0;
        while self.emitted_beats < due {
            self.issuer.heartbeat(now);
            self.emitted_beats += 1;
            emitted += 1;
        }
        emitted
    }

    /// Reports that the substrate completed `work_units` of application
    /// work over the interval `[start, end]` while drawing
    /// `power_above_idle_watts`, stamping each emitted beat at the time its
    /// work boundary was crossed (linear interpolation over the interval)
    /// and recording one power sample per beat at the same timestamps.
    ///
    /// [`Self::advance`] stamps a whole interval's beats at its end, which
    /// systematically over-estimates window heart rates when the
    /// observation window spans only a few intervals (the window's time
    /// span misses up to one whole interval while keeping all its beats) —
    /// harmless when only orderings matter, but biased feedback for a
    /// controller that must track a target closely. The interpolated form
    /// removes that bias and keeps the power-sample horizon aligned with
    /// the beat window. Returns the number of beats emitted.
    pub fn advance_metered(
        &mut self,
        start: f64,
        end: f64,
        work_units: f64,
        power_above_idle_watts: f64,
    ) -> u64 {
        let work_units = work_units.max(0.0);
        let span = (end - start).max(0.0);
        let before = self.completed_work;
        self.completed_work += work_units;
        let due = (self.completed_work / self.work_per_beat).floor() as u64;
        let monitor = self.registry.monitor();
        let mut emitted = 0;
        while self.emitted_beats < due {
            let boundary = (self.emitted_beats + 1) as f64 * self.work_per_beat;
            let fraction = if work_units > 0.0 {
                ((boundary - before) / work_units).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let timestamp = start + fraction * span;
            self.issuer.heartbeat(timestamp);
            monitor.record_power_sample(timestamp, power_above_idle_watts);
            self.emitted_beats += 1;
            emitted += 1;
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heartbeats::GoalKind;

    fn instrumented() -> HeartbeatedWorkload {
        HeartbeatedWorkload::new(Workload::new(SplashBenchmark::Barnes, 1))
    }

    #[test]
    fn advance_emits_one_beat_per_work_unit() {
        let mut app = instrumented();
        let emitted = app.advance(0.1, 3.0);
        assert_eq!(emitted, 3);
        assert_eq!(app.emitted_beats(), 3);
        assert_eq!(app.monitor().stats().total_beats, 3);
    }

    #[test]
    fn fractional_work_accumulates_before_beating() {
        let mut app = instrumented();
        assert_eq!(app.advance(0.1, 0.4), 0);
        assert_eq!(app.advance(0.2, 0.4), 0);
        assert_eq!(app.advance(0.3, 0.4), 1);
        assert_eq!(app.emitted_beats(), 1);
        assert!((app.completed_work() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn heart_rate_reflects_progress_speed() {
        let mut app = instrumented();
        for i in 0..50 {
            app.advance(i as f64 * 0.1, 1.0); // 10 work units (beats) per second
        }
        let rate = app.monitor().window_heart_rate();
        assert!((rate - 10.0).abs() < 0.5, "expected ~10 beats/s, got {rate}");
    }

    #[test]
    fn advance_metered_interpolates_beats_and_records_power() {
        let mut app = instrumented();
        // 4 work units over [10, 14]: beats at 11, 12, 13, 14.
        let emitted = app.advance_metered(10.0, 14.0, 4.0, 25.0);
        assert_eq!(emitted, 4);
        let monitor = app.monitor();
        let stats = monitor.heart_rate();
        assert_eq!(stats.beats_in_window, 4);
        // Interpolated stamps make the window rate exact: 3 intervals / 3 s.
        assert!((stats.window - 1.0).abs() < 1e-9);
        assert_eq!(monitor.last_beat_timestamp(), Some(14.0));
        assert_eq!(monitor.mean_power(), Some(25.0));
        // Fractional carry lands mid-interval: 1.5 more units over [14, 16]
        // crosses one boundary at 14 + (1/1.5) * 2.
        let emitted = app.advance_metered(14.0, 16.0, 1.5, 30.0);
        assert_eq!(emitted, 1);
        let last = monitor.last_beat_timestamp().unwrap();
        assert!((last - (14.0 + 2.0 / 1.5)).abs() < 1e-9);
        // Degenerate inputs are safe.
        assert_eq!(app.advance_metered(16.0, 16.0, 0.0, 30.0), 0);
        assert_eq!(app.advance_metered(17.0, 16.0, 10.0, 30.0), 10);
    }

    #[test]
    fn goal_is_visible_to_monitors() {
        let app = instrumented();
        app.set_heart_rate_goal(30.0);
        let monitor = app.monitor();
        assert_eq!(monitor.target_heart_rate(), Some(30.0));
        assert!(monitor.goal_of_kind(GoalKind::Performance).is_some());
        assert_eq!(&*monitor.name(), "barnes");
    }

    #[test]
    fn progress_and_finished_track_total_work() {
        let mut app = instrumented();
        let total = app.workload().profile().total_work_units;
        assert_eq!(app.progress(), 0.0);
        assert!(!app.is_finished());
        app.advance(1.0, total / 2.0);
        assert!((app.progress() - 0.5).abs() < 1e-9);
        app.advance(2.0, total);
        assert_eq!(app.progress(), 1.0);
        assert!(app.is_finished());
    }

    #[test]
    fn custom_work_per_beat_changes_granularity() {
        let workload = Workload::new(SplashBenchmark::WaterSpatial, 2);
        let mut app = HeartbeatedWorkload::with_work_per_beat(workload, 4.0);
        assert_eq!(app.advance(0.5, 9.0), 2);
        assert_eq!(app.emitted_beats(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_work_per_beat_panics() {
        let workload = Workload::new(SplashBenchmark::Volrend, 2);
        let _ = HeartbeatedWorkload::with_work_per_beat(workload, 0.0);
    }
}
