//! Property pin: scenario specs round-trip through JSON as the identity.
//!
//! The scenario fuzzer's corpus and the shrunk regression fixtures under
//! `tests/corpus/` are plain JSON files holding [`Scenario`] values. This
//! suite pins the contract that makes those files trustworthy: for
//! arbitrary scenarios (names with escapes, any app mix, optional
//! departures, budget staircases), `serde_json::from_str ∘
//! serde_json::to_string` is the identity — both compact and
//! pretty-printed — so a fixture replayed later reconstructs exactly the
//! scenario that was shrunk.

use proptest::prelude::*;
use workloads::{
    AppFault, BudgetStep, FaultKind, FaultPlan, Scenario, ScenarioApp, SplashBenchmark,
};

/// The fault vocabulary a proptest-drawn plan cycles through.
const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::StallHeartbeats,
    FaultKind::FreezeTelemetry,
    FaultKind::NonFiniteTelemetry,
    FaultKind::MisreportPower { factor: 2.5 },
    FaultKind::Crash,
];

/// Names exercise the string escaping paths (quotes, control characters,
/// multi-byte UTF-8, emptiness).
const NAMES: [&str; 5] = [
    "plain-name",
    "with \"quotes\" and \\ backslash",
    "new\nline\tand tab",
    "ünïcode-日本語-😀",
    "",
];

#[allow(clippy::too_many_arguments)] // one parameter per proptest-drawn axis
fn decode_scenario(
    name_pick: usize,
    benches: &[usize],
    seeds: &[u64],
    weights: &[f64],
    arrivals: &[usize],
    departures: &[usize],
    targets: &[f64],
    racks: &[usize],
    quanta: usize,
    budget: f64,
    step_quanta: &[usize],
    step_fractions: &[f64],
    fault_picks: &[usize],
    arbitration_tolerance: f64,
    wake: (usize, u32),
) -> Scenario {
    let apps: Vec<ScenarioApp> = benches
        .iter()
        .enumerate()
        .map(|(i, &bench)| ScenarioApp {
            benchmark: SplashBenchmark::ALL[bench % SplashBenchmark::ALL.len()],
            seed: seeds[i],
            weight: weights[i],
            arrival: arrivals[i] % quanta,
            // Departure scalar 0 = resident; otherwise a half-open window.
            departure: (departures[i] > 0)
                .then(|| (arrivals[i] % quanta + departures[i]).min(quanta)),
            target_fraction: targets[i],
            rack: racks[i],
        })
        .collect();
    let budget_steps: Vec<BudgetStep> = step_quanta
        .iter()
        .enumerate()
        .map(|(i, &at)| BudgetStep {
            quantum: at % quanta,
            fraction: step_fractions[i],
        })
        .collect();
    let faults: Vec<AppFault> = fault_picks
        .iter()
        .enumerate()
        .map(|(i, &pick)| {
            let from = (pick * 7 + i) % quanta;
            AppFault {
                app: pick % apps.len(),
                kind: FAULT_KINDS[pick % FAULT_KINDS.len()],
                // Alternate persistent and bounded windows.
                from,
                until: (pick % 2 == 0).then(|| (from + 1 + pick % 9).min(quanta)),
            }
        })
        .collect();
    Scenario {
        name: NAMES[name_pick % NAMES.len()].to_string(),
        apps,
        quanta,
        power_budget_fraction: budget,
        budget_steps,
        fault_plan: FaultPlan { faults },
        arbitration_tolerance,
        wake_horizon: wake.0,
        wake_steady_quanta: wake.1,
    }
}

/// Tolerances a proptest pick maps onto: zero (the omitted-field encoding)
/// must stay heavily represented so the round trip keeps covering both
/// serialised shapes.
const TOLERANCES: [f64; 5] = [0.0, 0.0, 0.1, 0.25, 0.5];

/// Wake-scheduler pairs a proptest pick maps onto — off (the omitted
/// encoding) stays heavily represented, like [`TOLERANCES`].
const WAKES: [(usize, u32); 5] = [(0, 0), (0, 0), (8, 1), (32, 2), (128, 16)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scenario_json_round_trip_is_identity(
        name_pick in 0usize..8,
        benches in proptest::collection::vec(0usize..8, 1..12),
        seeds in proptest::collection::vec(0u64..1_000_000_000_000, 12),
        weights in proptest::collection::vec(0.1..8.0f64, 12),
        arrivals in proptest::collection::vec(0usize..4_096, 12),
        departures in proptest::collection::vec(0usize..4_096, 12),
        targets in proptest::collection::vec(0.01..1.0f64, 12),
        racks in proptest::collection::vec(0usize..16, 12),
        quanta in 2usize..4_096,
        budget in 0.05..1.0f64,
        step_quanta in proptest::collection::vec(0usize..4_096, 0..4),
        step_fractions in proptest::collection::vec(0.05..1.0f64, 4),
        fault_picks in proptest::collection::vec(0usize..1_000, 0..8),
        tolerance_pick in 0usize..8,
        wake_pick in 0usize..8,
    ) {
        let scenario = decode_scenario(
            name_pick, &benches, &seeds, &weights, &arrivals, &departures, &targets,
            &racks, quanta, budget, &step_quanta, &step_fractions, &fault_picks,
            TOLERANCES[tolerance_pick % TOLERANCES.len()],
            WAKES[wake_pick % WAKES.len()],
        );

        let compact = serde_json::to_string(&scenario).unwrap();
        let from_compact: Scenario = serde_json::from_str(&compact).unwrap();
        prop_assert_eq!(&from_compact, &scenario);

        let pretty = serde_json::to_string_pretty(&scenario).unwrap();
        let from_pretty: Scenario = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(&from_pretty, &scenario);

        // Serialisation is canonical: one more lap produces identical text.
        prop_assert_eq!(serde_json::to_string(&from_compact).unwrap(), compact);
    }

    #[test]
    fn generated_mixes_round_trip(seed in 0u64..1_000_000) {
        for scenario in workloads::scenario_mixes(seed)
            .into_iter()
            .chain(workloads::vocabulary_mixes(seed))
            .chain(workloads::chaos_mixes(seed))
        {
            let text = serde_json::to_string_pretty(&scenario).unwrap();
            let back: Scenario = serde_json::from_str(&text).unwrap();
            prop_assert_eq!(back, scenario);
        }
    }
}
