//! Vendored, offline stand-in for the [`proptest`](https://proptest-rs.github.io/proptest/)
//! crate.
//!
//! The build environment has no network access, so the real proptest cannot
//! be fetched. This crate implements the subset the workspace's property
//! suite uses with identical syntax:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `arg in strategy` parameter lists,
//! * range strategies (`0.5..2.0f64`, `0u32..8`, `1usize..=8`),
//! * [`collection::vec`] for `Vec` strategies,
//! * [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assert_ne!`].
//!
//! Unlike the real proptest, generation is **deterministic** (seeded from
//! the test name) and failing cases are not shrunk — failures report the
//! exact generated arguments instead. Determinism is a feature for a
//! reproduction repository: CI failures are always reproducible locally.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, carrying the rendered failure message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic pseudo-random generator (xorshift64*), seeded per property
/// from the property's name so every run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, never zero (xorshift fixpoint).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash.max(1),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at property-test scale.
        self.next_u64() % bound
    }
}

/// A source of generated values, the stand-in for proptest's `Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_strategy_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A concrete collection-length range.
    ///
    /// Like the real proptest's `SizeRange`, this is a concrete type with
    /// `From` conversions rather than a generic `Strategy<Value = usize>`
    /// bound: an unsuffixed literal range (`2..100`) then has exactly one
    /// conversion candidate, so inference resolves it to `usize` instead of
    /// falling back to `i32`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive upper bound.
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                start: range.start,
                end: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *range.start(),
                end: range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, 2..100)` — a `Vec` strategy.
    pub fn vec<E>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E>
    where
        E: Strategy,
    {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let len = (self.size.start..self.size.end).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Defines property tests.
///
/// Matches the real proptest surface syntax: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// parameters are written `name in strategy`. Each function body runs once
/// per generated case; [`prop_assert!`]-family failures abort the case with
/// the generated arguments in the panic message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function at a
/// time, threading the configuration expression through the recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        @config($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let case_args = {
                    let mut rendered = String::new();
                    $(rendered.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)*
                    rendered
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\nwith arguments:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        case_args
                    );
                }
            }
        }
        $crate::__proptest_fns! { @config($config) $($rest)* }
    };
    ( @config($config:expr) ) => {};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// its generated arguments) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind to a bool first so clippy's `neg_cmp_op_on_partial_ord` does
        // not fire on negated float comparisons at every call site.
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("property");
        let mut b = TestRng::from_name("property");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let f = (0.25..4.0f64).generate(&mut rng);
            assert!((0.25..4.0).contains(&f));
            let u = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let s = (1usize..=8).generate(&mut rng);
            assert!((1..=8).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = crate::collection::vec(0.0..1.0f64, 2..100).generate(&mut rng);
            assert!((2..100).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 1.0e-3..1.0f64, n in 1usize..=4) {
            prop_assert!(x > 0.0);
            prop_assert_eq!(n * 2, n + n);
            prop_assert_ne!(n, 0);
        }
    }
}
