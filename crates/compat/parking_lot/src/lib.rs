//! Vendored, offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: lock
//! acquisition returns guards directly instead of `Result`s. A poisoned lock
//! (a thread panicked while holding it) propagates the panic, which matches
//! how callers of the real parking_lot behave under the same failure.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's non-poisoning guard API.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's non-poisoning guard API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trips() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new("a".to_string());
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
