//! Vendored, offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually contains — non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, and struct variants) — without any
//! dependency on `syn`/`quote`, which cannot be fetched in this offline
//! build environment. The generated `Serialize` impl lowers the type into
//! the `serde::ser::Value` tree following serde's externally-tagged JSON
//! conventions; the generated `Deserialize` impl inverts it, lifting the
//! type back out of the same tree so derived round trips are the identity.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by lowering the type into `serde::ser::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => serialize_struct_body(fields),
        Shape::Enum(variants) => serialize_enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::ser::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::ser::Value {{\n{}\n}}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` by lifting the type out of
/// `serde::ser::Value`, inverting the derived `Serialize` conventions.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => deserialize_struct_body(&item.name, fields),
        Shape::Enum(variants) => deserialize_enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::ser::Value) \
                 -> ::core::result::Result<Self, ::serde::de::DeError> {{\n{body}\n}}\n\
         }}",
        name = item.name,
        body = body
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// The field list of a struct or of one enum variant.
enum Fields {
    /// `struct S;` or `Variant`
    Unit,
    /// `struct S(A, B);` or `Variant(A, B)` — only the arity matters.
    Unnamed(usize),
    /// `struct S { a: A }` or `Variant { a: A }` — field names in order.
    Named(Vec<String>),
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::ser::Value::Null".to_string(),
        Fields::Unnamed(1) => "::serde::ser::Serialize::to_value(&self.0)".to_string(),
        Fields::Unnamed(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::ser::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::ser::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::ser::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::ser::Value::Object(vec![{}])", entries.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(vname, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{vname} => ::serde::ser::Value::String(\"{vname}\".to_string()),"
            ),
            Fields::Unnamed(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::ser::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::ser::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{vname}({binds}) => ::serde::ser::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),",
                    binds = binds.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let entries: Vec<String> = fnames
                    .iter()
                    .map(|f| {
                        format!("(\"{f}\".to_string(), ::serde::ser::Serialize::to_value({f}))")
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {fields} }} => ::serde::ser::Value::Object(vec![(\"{vname}\".to_string(), ::serde::ser::Value::Object(vec![{entries}]))]),",
                    fields = fnames.join(", "),
                    entries = entries.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        // Unit structs serialise to `Null`; accept any value so a bare
        // `null` in hand-edited JSON still round-trips.
        Fields::Unit => format!("let _ = value;\nOk({name})"),
        Fields::Unnamed(1) => {
            format!("Ok({name}(::serde::de::Deserialize::from_value(value)?))")
        }
        Fields::Unnamed(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::de::as_array(value, {n}, \"{name}\")?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Fields::Named(names) => {
            let fields: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(entries, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let entries = ::serde::de::as_object(value, \"{name}\")?;\n\
                 Ok({name} {{ {} }})",
                fields.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    // Externally tagged: unit variants are a bare string, payload-carrying
    // variants a single-entry `{tag: payload}` object.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, fields)| matches!(fields, Fields::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(vname, fields)| {
            let body = match fields {
                Fields::Unit => return None,
                Fields::Unnamed(1) => format!(
                    "Ok({name}::{vname}(::serde::de::Deserialize::from_value(payload)?))"
                ),
                Fields::Unnamed(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::de::Deserialize::from_value(&items[{i}])?")
                        })
                        .collect();
                    format!(
                        "{{ let items = \
                             ::serde::de::as_array(payload, {n}, \"{name}::{vname}\")?;\n\
                         Ok({name}::{vname}({})) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fnames) => {
                    let fields: Vec<String> = fnames
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::de::field(fields, \"{f}\", \"{name}::{vname}\")?"
                            )
                        })
                        .collect();
                    format!(
                        "{{ let fields = \
                             ::serde::de::as_object(payload, \"{name}::{vname}\")?;\n\
                         Ok({name}::{vname} {{ {} }}) }}",
                        fields.join(", ")
                    )
                }
            };
            Some(format!("\"{vname}\" => {body},"))
        })
        .collect();
    format!(
        "match value {{\n\
             ::serde::ser::Value::String(tag) => match tag.as_str() {{\n\
                 {unit}\n\
                 other => Err(::serde::de::DeError::unknown_variant(\"{name}\", other)),\n\
             }},\n\
             ::serde::ser::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                     {tagged}\n\
                     other => Err(::serde::de::DeError::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
             }},\n\
             other => Err(::serde::de::DeError::mismatch(\n\
                 \"string or single-entry object for `{name}`\", other)),\n\
         }}",
        unit = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
        name = name
    )
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` and friends
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("serde derive: expected `struct` or `enum` in input"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported; type `{name}`");
        }
    }
    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Unnamed(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde derive: unexpected struct body for `{name}`: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body for `{name}`: {other:?}"),
        }
    };
    Item { name, shape }
}

/// Skips `#[...]` attributes (including doc comments) at `tokens[i]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            *i += 2;
        } else {
            break;
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility qualifier at `tokens[i]`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances `i` past tokens until (and including) a comma at angle-bracket
/// depth zero, or to the end of the token list.
fn skip_past_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // `:`
        skip_past_top_level_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        skip_past_top_level_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Unnamed(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip any `= discriminant` and the trailing comma.
        skip_past_top_level_comma(&tokens, &mut i);
        variants.push((vname, fields));
    }
    variants
}
