//! The deserialisation half of the vendored serde stand-in.
//!
//! Mirrors [`crate::ser`]: text is first parsed (by the vendored
//! `serde_json`) into the same [`Value`] tree the serialiser lowers into,
//! and [`Deserialize`] impls lift values back out of that tree. Because
//! both directions share one intermediate representation and one set of
//! conventions (externally-tagged enums, `null` for `None`), a
//! derive-generated round trip is the identity for every finite value.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use crate::ser::Value;

/// Deserialisation error: a human-readable description of the mismatch
/// between the expected shape and the [`Value`] actually found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// `expected` shape, but found a value of a different kind.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        DeError::new(format!("expected {expected}, found {}", found.kind()))
    }

    /// A required field was absent from an object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError::new(format!("missing field `{field}` for `{ty}`"))
    }

    /// An enum tag named no known variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError::new(format!("unknown variant `{tag}` for enum `{ty}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Lifts `Self` back out of a [`Value`] tree.
///
/// This replaces serde's visitor-based `Deserialize` trait with the inverse
/// of [`crate::ser::Serialize::to_value`]: the simplest API that supports
/// the workspace's needs (reading back its own JSON report/corpus files).
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the JSON-like intermediate representation.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when `value`'s shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Views `value` as an object's entry list (derive-macro helper).
///
/// # Errors
///
/// Errors unless `value` is [`Value::Object`].
pub fn as_object<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match value {
        Value::Object(entries) => Ok(entries),
        other => Err(DeError::mismatch(&format!("object for `{ty}`"), other)),
    }
}

/// Views `value` as an array of exactly `len` elements (derive-macro helper).
///
/// # Errors
///
/// Errors unless `value` is a [`Value::Array`] of length `len`.
pub fn as_array<'a>(value: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], DeError> {
    match value {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(DeError::new(format!(
            "expected array of {len} elements for `{ty}`, found {}",
            items.len()
        ))),
        other => Err(DeError::mismatch(&format!("array for `{ty}`"), other)),
    }
}

/// Extracts and deserialises the field `name` from an object's entries
/// (derive-macro helper). A missing key deserialises from [`Value::Null`],
/// so `Option` fields absent from the text default to `None` while any
/// other type reports a missing field.
///
/// # Errors
///
/// Errors when the field is present but malformed, or absent and `T` does
/// not accept `null`.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => T::from_value(value)
            .map_err(|e| DeError::new(format!("field `{name}` of `{ty}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError::missing_field(ty, name)),
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

fn int_from_value(value: &Value) -> Result<i64, DeError> {
    match value {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) => i64::try_from(*u)
            .map_err(|_| DeError::new(format!("integer {u} overflows i64"))),
        other => Err(DeError::mismatch("integer", other)),
    }
}

fn uint_from_value(value: &Value) -> Result<u64, DeError> {
    match value {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) => u64::try_from(*i)
            .map_err(|_| DeError::new(format!("integer {i} is negative"))),
        other => Err(DeError::mismatch("integer", other)),
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let i = int_from_value(value)?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::new(format!(
                        "integer {i} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let u = uint_from_value(value)?;
                <$t>::try_from(u)
                    .map_err(|_| DeError::new(format!(
                        "integer {u} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize);
impl_deserialize_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // The JSON layer prints non-finite floats as `null` (matching
            // real serde_json), so reading `null` back as NaN keeps the
            // round trip total.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::mismatch("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError::new(format!(
                        "expected single-character string, found {s:?}"
                    ))),
                }
            }
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn seq_from_value<T: Deserialize>(value: &Value) -> Result<Vec<T>, DeError> {
    match value {
        Value::Array(items) => items.iter().map(T::from_value).collect(),
        other => Err(DeError::mismatch("array", other)),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        seq_from_value(value)
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        seq_from_value(value).map(VecDeque::from)
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        seq_from_value(value).map(|v| v.into_iter().collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        seq_from_value(value).map(|v| v.into_iter().collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = as_array(value, N, "array")?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length changed during deserialisation"))
    }
}

/// Reconstructs a map key from the string form
/// [`Value::into_object_key`](crate::ser::Value::into_object_key) rendered
/// it into: first as a string value (covers `String` keys and unit-variant
/// enum keys), then re-tagged as a number or bool when the string parses as
/// one.
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    let retagged = if key == "true" || key == "false" {
        Value::Bool(key == "true")
    } else if let Ok(u) = key.parse::<u64>() {
        Value::UInt(u)
    } else if let Ok(i) = key.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(f) = key.parse::<f64>() {
        Value::Float(f)
    } else {
        return Err(DeError::new(format!("unusable map key {key:?}")));
    };
    K::from_value(&retagged)
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    let entries = as_object(value, "map")?;
    entries
        .iter()
        .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
        .collect()
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries_from_value(value).map(|v| v.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries_from_value(value).map(|v| v.into_iter().collect())
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = as_array(value, $len, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::Serialize;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u32::from_value(&3u32.to_value()).unwrap(), 3);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn cross_kind_integers_convert_when_in_range() {
        assert_eq!(u8::from_value(&Value::Int(7)).unwrap(), 7);
        assert_eq!(i8::from_value(&Value::UInt(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(i8::from_value(&Value::UInt(400)).is_err());
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
    }

    #[test]
    fn missing_fields_default_options_but_fail_required_types() {
        let entries = vec![("present".to_string(), Value::UInt(1))];
        let opt: Option<u8> = field(&entries, "absent", "T").unwrap();
        assert_eq!(opt, None);
        assert!(field::<u8>(&entries, "absent", "T").is_err());
        let present: u8 = field(&entries, "present", "T").unwrap();
        assert_eq!(present, 1);
    }

    #[test]
    fn shape_mismatches_are_reported() {
        let err = bool::from_value(&Value::UInt(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        assert!(as_array(&Value::Array(vec![Value::Null]), 2, "Pair").is_err());
        assert!(as_object(&Value::Null, "S").is_err());
    }
}
