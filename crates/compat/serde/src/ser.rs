//! The serialisation half of the vendored serde stand-in.
//!
//! Values lower into a [`Value`] tree (a minimal JSON data model); the
//! vendored `serde_json` crate renders that tree as text. This indirection
//! keeps the derive macro trivial and the printer in one place.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A JSON-like value tree: the intermediate representation every
/// [`Serialize`] impl lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (matches derive field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as a JSON object key (objects require string keys).
    pub fn into_object_key(self) -> String {
        match self {
            Value::String(s) => s,
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Null => "null".to_string(),
            Value::Array(_) | Value::Object(_) => {
                panic!("composite values cannot be used as JSON object keys")
            }
        }
    }
}

/// Lowers `self` into a [`Value`] tree.
///
/// This replaces serde's visitor-based `Serialize` trait with the simplest
/// API that supports the workspace's needs (JSON report files).
pub trait Serialize {
    /// Converts `self` into the JSON-like intermediate representation.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // No sort key without an Ord bound; callers needing deterministic
        // output should prefer BTreeSet (as the workspace does).
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().into_object_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().into_object_key(), v.to_value()))
            .collect();
        // Sort for deterministic output; HashMap iteration order is random.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn hash_map_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u8);
        m.insert("a".to_string(), 2u8);
        let Value::Object(entries) = m.to_value() else {
            panic!("expected object");
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
