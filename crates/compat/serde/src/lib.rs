//! Vendored, offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment for this repository has no network access, so the
//! real `serde` cannot be fetched from crates.io. This crate implements the
//! small slice of serde's surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (re-exported from the companion [`serde_derive`] proc-macro crate),
//! * a [`Serialize`] trait that lowers values into a JSON-like [`ser::Value`]
//!   tree, which the vendored `serde_json` crate renders as text,
//! * a [`Deserialize`] trait that lifts values back out of the same tree,
//!   which the vendored `serde_json` parser produces from text (used by the
//!   scenario-fuzz corpus and regression-fixture loaders).
//!
//! Swapping back to the real serde later only requires replacing the three
//! `crates/compat/serde*` path dependencies with crates.io versions — the
//! call sites (`derive`, `use serde::{Serialize, Deserialize}`,
//! `serde_json::to_string_pretty`, `serde_json::from_str`) are
//! source-compatible.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod de;
pub mod ser;

pub use de::{DeError, Deserialize};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
