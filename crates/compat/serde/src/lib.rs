//! Vendored, offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment for this repository has no network access, so the
//! real `serde` cannot be fetched from crates.io. This crate implements the
//! small slice of serde's surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (re-exported from the companion [`serde_derive`] proc-macro crate),
//! * a [`Serialize`] trait that lowers values into a JSON-like [`ser::Value`]
//!   tree, which the vendored `serde_json` crate renders as text,
//! * a [`Deserialize`] marker trait (nothing in the workspace deserialises
//!   yet; the derive emits an empty impl so signatures stay compatible).
//!
//! Swapping back to the real serde later only requires replacing the three
//! `crates/compat/serde*` path dependencies with crates.io versions — the
//! call sites (`derive`, `use serde::{Serialize, Deserialize}`,
//! `serde_json::to_string_pretty`) are source-compatible.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ser;

pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for serde's `Deserialize`.
///
/// The workspace only serialises (figure binaries write JSON reports), so
/// this trait carries no methods; the derive macro emits an empty impl to
/// keep `#[derive(Serialize, Deserialize)]` lines source-compatible with the
/// real serde.
pub trait Deserialize: Sized {}
