//! Vendored, offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! [`Rng::gen_range`] (over `f64` and integer ranges) and [`Rng::gen_bool`].
//! The generator is xorshift64* — not the real StdRng's ChaCha12, but the
//! workspace only relies on determinism-given-a-seed, which both provide.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::Range;

/// A source of randomness, the stand-in for rand's `RngCore` + `Rng`.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform value from `self`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// No `Range<f32>` impl: unsuffixed float ranges like `-0.5..0.5` must see a
// single floating-point candidate for inference to pick `f64`, matching how
// such call sites compile against the real rand.

macro_rules! impl_sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The named generators rand ships.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed avoids weak low-entropy starts; state
            // must be non-zero for xorshift.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)).max(1),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
