//! Vendored, offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs/book/)
//! benchmark harness.
//!
//! The build environment has no network access, so the real criterion cannot
//! be fetched. This crate keeps the workspace's benches source-compatible:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! wall-clock sampler — one timed call per sample, reporting min/mean/max —
//! with none of criterion's statistical machinery. Numbers it prints are
//! indicative, not publication grade; the benches still serve their main
//! purposes of regenerating figure reports and catching gross regressions.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmark's result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real criterion defaults to 100 samples; that is affordable
        // here because each sample is a single call.
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Benchmarks `f` under `name` with the driver's default sample count.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }
}

/// A named group of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one call per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up call, then `sample_size` timed calls.
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Summary statistics of a set of timing samples.
///
/// The median is reported alongside min/mean/max because single-sample
/// scheduler noise (a preemption, a page-fault storm) skews the mean and
/// max arbitrarily, while the median of even a handful of samples is
/// robust — machine-readable bench output keys on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (mean of the two middle samples for even counts).
    pub median: Duration,
    /// Arithmetic mean of the samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of samples summarised.
    pub samples: usize,
}

/// Summarises timing samples into min/median/mean/max.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(samples: &[Duration]) -> Summary {
    assert!(!samples.is_empty(), "cannot summarise zero samples");
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    let total: Duration = sorted.iter().sum();
    Summary {
        min: sorted[0],
        median,
        mean: total / n as u32,
        max: sorted[n - 1],
        samples: n,
    }
}

fn run_bench<F>(name: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let summary = summarize(&bencher.samples);
    println!(
        "{name:<48} [min {} / median {} / mean {} / max {}] over {} samples",
        human(summary.min),
        human(summary.median),
        human(summary.mean),
        human(summary.max),
        summary.samples
    );
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
///
/// Command-line arguments (`cargo bench` passes `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn summary_reports_robust_median() {
        let samples = [
            Duration::from_micros(10),
            Duration::from_micros(12),
            Duration::from_micros(11),
            Duration::from_micros(500), // scheduler outlier
            Duration::from_micros(13),
        ];
        let summary = summarize(&samples);
        assert_eq!(summary.min, Duration::from_micros(10));
        assert_eq!(summary.median, Duration::from_micros(12));
        assert_eq!(summary.max, Duration::from_micros(500));
        assert_eq!(summary.samples, 5);
        // The outlier drags the mean far above the median.
        assert!(summary.mean > summary.median * 2);
        // Even counts interpolate the middle pair.
        let even = summarize(&samples[..4]);
        assert_eq!(even.median, (Duration::from_micros(11) + Duration::from_micros(12)) / 2);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn summary_of_nothing_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn human_formats_each_magnitude() {
        assert_eq!(human(Duration::from_nanos(12)), "12 ns");
        assert_eq!(human(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(human(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(human(Duration::from_secs(2)), "2.00 s");
    }
}
