//! Vendored, offline stand-in for the `serde_json` crate.
//!
//! Renders the [`serde::ser::Value`] trees produced by the vendored serde
//! stand-in as JSON text, and parses JSON text back into the same trees.
//! Only the entry points this workspace uses are provided: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`from_value`]. Output
//! conventions follow the real serde_json: 2-space pretty indentation,
//! `null` for non-finite floats, externally-tagged enum variants (handled
//! by the derive layer), and standard string escaping.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::de::DeError;
use serde::ser::Value;
use serde::{Deserialize, Serialize};

/// Serialisation or deserialisation error.
///
/// The vendored serialiser is infallible (every `Serialize` impl lowers into
/// a [`Value`] tree), so serialisation entry points never produce this;
/// [`from_str`] produces it for malformed text or shape mismatches.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the vendored serialiser; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON with 2-space indentation.
///
/// # Errors
///
/// Never fails with the vendored serialiser; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialises a `T` from JSON text.
///
/// # Errors
///
/// Errors on malformed JSON, trailing input, or when the parsed value's
/// shape does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_text(text)?;
    Ok(T::from_value(&value)?)
}

/// Deserialises a `T` from an already-parsed [`Value`] tree.
///
/// # Errors
///
/// Errors when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

fn parse_value_text(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Recursive-descent JSON parser over the input bytes. Positions index
/// bytes; multi-byte UTF-8 only occurs inside strings, where content is
/// re-decoded through `str` slices.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{keyword}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            // `str::parse::<f64>` is the exact inverse of Rust's shortest
            // float printing, so finite floats round-trip bit-for-bit.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("malformed number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("integer out of range"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let code =
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("unpaired surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("malformed \\u escape"))?;
        let unit =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("malformed \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let mut s = f.to_string();
        // Keep floats visually distinct from integers, as serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        // Real serde_json emits null for NaN and infinities.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("barnes".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Float(2.5)]),
            ),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Wrapper(value)).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"barnes\",\n  \"rows\": [\n    1.0,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn compact_output_and_escaping() {
        struct Wrapper;
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                Value::Object(vec![(
                    "k\"ey".to_string(),
                    Value::Array(vec![Value::Null, Value::Bool(false), Value::Int(-1)]),
                )])
            }
        }
        assert_eq!(to_string(&Wrapper).unwrap(), "{\"k\\\"ey\":[null,false,-1]}");
    }

    #[test]
    fn parses_nested_structures_back_into_values() {
        let value: Value =
            from_str("{\n  \"name\": \"barnes\",\n  \"rows\": [1.0, -2, 3, null, true]\n}")
                .unwrap();
        assert_eq!(
            value,
            Value::Object(vec![
                ("name".to_string(), Value::String("barnes".to_string())),
                (
                    "rows".to_string(),
                    Value::Array(vec![
                        Value::Float(1.0),
                        Value::Int(-2),
                        Value::UInt(3),
                        Value::Null,
                        Value::Bool(true),
                    ]),
                ),
            ])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let value: Value = from_str("\"a\\n\\\"b\\\\c\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(value, Value::String("a\n\"b\\cA\u{1f600}".to_string()));
    }

    #[test]
    fn finite_floats_round_trip_through_text() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -1.5e-300, 0.95_f64.powi(7)] {
            let mut text = String::new();
            write_float(&mut text, f);
            let value: Value = from_str(&text).unwrap();
            assert_eq!(value, Value::Float(f));
        }
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(from_str::<Value>("{\"a\": 1,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn typed_from_str_reports_shape_mismatches() {
        let parsed: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, -2]").is_err());
        assert!(from_str::<bool>("1").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        struct Wrapper;
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                Value::Array(vec![Value::Float(f64::NAN), Value::Float(f64::INFINITY)])
            }
        }
        assert_eq!(to_string(&Wrapper).unwrap(), "[null,null]");
    }
}
