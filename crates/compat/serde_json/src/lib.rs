//! Vendored, offline stand-in for the `serde_json` crate.
//!
//! Renders the [`serde::ser::Value`] trees produced by the vendored serde
//! stand-in as JSON text. Only the entry points this workspace uses are
//! provided: [`to_string`] and [`to_string_pretty`]. Output conventions
//! follow the real serde_json: 2-space pretty indentation, `null` for
//! non-finite floats, externally-tagged enum variants (handled by the derive
//! layer), and standard string escaping.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::ser::Value;
use serde::Serialize;

/// Serialisation error.
///
/// The vendored serialiser is infallible (every `Serialize` impl lowers into
/// a [`Value`] tree), so this error is never produced; it exists so call
/// sites written against the real serde_json's fallible API compile
/// unchanged.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the vendored serialiser; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON with 2-space indentation.
///
/// # Errors
///
/// Never fails with the vendored serialiser; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let mut s = f.to_string();
        // Keep floats visually distinct from integers, as serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        // Real serde_json emits null for NaN and infinities.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("barnes".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Float(2.5)]),
            ),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Wrapper(value)).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"barnes\",\n  \"rows\": [\n    1.0,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn compact_output_and_escaping() {
        struct Wrapper;
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                Value::Object(vec![(
                    "k\"ey".to_string(),
                    Value::Array(vec![Value::Null, Value::Bool(false), Value::Int(-1)]),
                )])
            }
        }
        assert_eq!(to_string(&Wrapper).unwrap(), "{\"k\\\"ey\":[null,false,-1]}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        struct Wrapper;
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                Value::Array(vec![Value::Float(f64::NAN), Value::Float(f64::INFINITY)])
            }
        }
        assert_eq!(to_string(&Wrapper).unwrap(), "[null,null]");
    }
}
