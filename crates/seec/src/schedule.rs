//! Time-division actuation schedules.
//!
//! Actuator settings are discrete, but the speedup a goal requires is
//! continuous. SEEC closes the gap the way the underlying controller papers
//! do (Maggio et al., CDC 2010): it alternates between the two
//! configurations that bracket the required speedup, spending a fraction of
//! the time in each so that the *average* speedup matches the requirement
//! while the *average* power stays below running flat-out in the faster
//! configuration.

use actuation::Configuration;
use serde::{Deserialize, Serialize};

/// A two-configuration, time-division schedule for one decision period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuationSchedule {
    /// Configuration used for `upper_fraction` of the period.
    pub upper: Configuration,
    /// Configuration used for the remaining time.
    pub lower: Configuration,
    /// Fraction of the period spent in `upper`, in `[0, 1]`.
    pub upper_fraction: f64,
    /// Average speedup the schedule is expected to deliver.
    pub expected_speedup: f64,
}

impl ActuationSchedule {
    /// A schedule that stays in a single configuration for the whole period.
    pub fn steady(config: Configuration, expected_speedup: f64) -> Self {
        ActuationSchedule {
            upper: config.clone(),
            lower: config,
            upper_fraction: 1.0,
            expected_speedup,
        }
    }

    /// Builds the schedule that meets `required_speedup` by dividing time
    /// between `upper` (believed speedup `upper_speedup`) and `lower`
    /// (believed speedup `lower_speedup`).
    ///
    /// If the requirement is outside the `[lower_speedup, upper_speedup]`
    /// range the schedule saturates at the nearer end.
    pub fn bracketing(
        upper: Configuration,
        upper_speedup: f64,
        lower: Configuration,
        lower_speedup: f64,
        required_speedup: f64,
    ) -> Self {
        if upper_speedup <= lower_speedup {
            return ActuationSchedule::steady(upper, upper_speedup);
        }
        let (fraction, expected) = split_fraction(upper_speedup, lower_speedup, required_speedup);
        ActuationSchedule {
            upper,
            lower,
            upper_fraction: fraction,
            expected_speedup: expected,
        }
    }

    /// Whether the schedule actually alternates between two configurations.
    pub fn is_split(&self) -> bool {
        self.upper != self.lower && self.upper_fraction > 0.0 && self.upper_fraction < 1.0
    }

    /// The configuration to apply for this decision period, given a
    /// deterministic accumulator carried between periods (supplied by the
    /// caller, starting at 0.0). The accumulator technique spreads the
    /// upper/lower periods evenly instead of bunching them.
    pub fn configuration_for_period(&self, accumulator: &mut f64) -> Configuration {
        *accumulator += self.upper_fraction;
        if *accumulator >= 1.0 - 1e-12 {
            *accumulator -= 1.0;
            self.upper.clone()
        } else {
            self.lower.clone()
        }
    }
}

/// The (upper-fraction, expected-speedup) pair of a time-division split
/// meeting `required_speedup` between two bracketing speedups.
///
/// Time-weighted *rate* averaging: running a fraction `f` of the time in the
/// upper configuration yields average speedup `f * upper + (1 - f) * lower`.
/// Shared by [`ActuationSchedule::bracketing`] and the id-based schedule the
/// runtime's hot path uses, so the two can never disagree.
pub(crate) fn split_fraction(
    upper_speedup: f64,
    lower_speedup: f64,
    required_speedup: f64,
) -> (f64, f64) {
    let fraction = ((required_speedup - lower_speedup) / (upper_speedup - lower_speedup))
        .clamp(0.0, 1.0);
    let expected = fraction * upper_speedup + (1.0 - fraction) * lower_speedup;
    (fraction, expected)
}

/// A time-division schedule over interned configuration ids — the
/// allocation-free twin of [`ActuationSchedule`] used inside the decision
/// loop. Materialise it with [`ActuationSchedule`] constructors only at the
/// [`crate::Decision`] boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct IdSchedule {
    pub upper: actuation::ConfigId,
    pub lower: actuation::ConfigId,
    pub upper_fraction: f64,
    pub expected_speedup: f64,
}

impl IdSchedule {
    /// A schedule that stays in a single configuration.
    pub fn steady(id: actuation::ConfigId, expected_speedup: f64) -> Self {
        IdSchedule {
            upper: id,
            lower: id,
            upper_fraction: 1.0,
            expected_speedup,
        }
    }

    /// The id-based twin of [`ActuationSchedule::bracketing`].
    pub fn bracketing(
        upper: actuation::ConfigId,
        upper_speedup: f64,
        lower: actuation::ConfigId,
        lower_speedup: f64,
        required_speedup: f64,
    ) -> Self {
        if upper_speedup <= lower_speedup {
            return IdSchedule::steady(upper, upper_speedup);
        }
        let (fraction, expected) = split_fraction(upper_speedup, lower_speedup, required_speedup);
        IdSchedule {
            upper,
            lower,
            upper_fraction: fraction,
            expected_speedup: expected,
        }
    }

    /// The id to apply for this decision period; same accumulator technique
    /// as [`ActuationSchedule::configuration_for_period`], minus the clone.
    pub fn id_for_period(&self, accumulator: &mut f64) -> actuation::ConfigId {
        *accumulator += self.upper_fraction;
        if *accumulator >= 1.0 - 1e-12 {
            *accumulator -= 1.0;
            self.upper
        } else {
            self.lower
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(settings: Vec<usize>) -> Configuration {
        Configuration::new(settings)
    }

    #[test]
    fn steady_schedule_never_splits() {
        let s = ActuationSchedule::steady(cfg(vec![1, 2]), 2.0);
        assert!(!s.is_split());
        assert_eq!(s.upper_fraction, 1.0);
        let mut acc = 0.0;
        for _ in 0..5 {
            assert_eq!(s.configuration_for_period(&mut acc), cfg(vec![1, 2]));
        }
    }

    #[test]
    fn bracketing_interpolates_the_required_speedup() {
        let s = ActuationSchedule::bracketing(cfg(vec![1]), 4.0, cfg(vec![0]), 1.0, 2.5);
        assert!(s.is_split());
        assert!((s.upper_fraction - 0.5).abs() < 1e-12);
        assert!((s.expected_speedup - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bracketing_saturates_outside_the_range() {
        let high = ActuationSchedule::bracketing(cfg(vec![1]), 4.0, cfg(vec![0]), 1.0, 9.0);
        assert_eq!(high.upper_fraction, 1.0);
        assert!((high.expected_speedup - 4.0).abs() < 1e-12);
        let low = ActuationSchedule::bracketing(cfg(vec![1]), 4.0, cfg(vec![0]), 1.0, 0.5);
        assert_eq!(low.upper_fraction, 0.0);
        assert!((low.expected_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_bracket_collapses_to_steady() {
        let s = ActuationSchedule::bracketing(cfg(vec![1]), 2.0, cfg(vec![0]), 2.0, 3.0);
        assert!(!s.is_split());
        assert_eq!(s.upper, cfg(vec![1]));
    }

    #[test]
    fn period_assignment_matches_the_fraction_in_the_long_run() {
        let s = ActuationSchedule::bracketing(cfg(vec![1]), 4.0, cfg(vec![0]), 1.0, 3.0);
        let mut acc = 0.0;
        let periods = 1000;
        let upper_count = (0..periods)
            .filter(|_| s.configuration_for_period(&mut acc) == cfg(vec![1]))
            .count();
        let observed_fraction = upper_count as f64 / periods as f64;
        assert!((observed_fraction - s.upper_fraction).abs() < 0.01);
    }

    #[test]
    fn id_schedule_mirrors_the_configuration_schedule() {
        use actuation::ConfigId;
        let cfg_schedule = ActuationSchedule::bracketing(cfg(vec![1]), 4.0, cfg(vec![0]), 1.0, 2.5);
        let id_schedule = IdSchedule::bracketing(ConfigId(1), 4.0, ConfigId(0), 1.0, 2.5);
        assert_eq!(
            cfg_schedule.upper_fraction.to_bits(),
            id_schedule.upper_fraction.to_bits()
        );
        assert_eq!(
            cfg_schedule.expected_speedup.to_bits(),
            id_schedule.expected_speedup.to_bits()
        );
        let mut cfg_acc = 0.0;
        let mut id_acc = 0.0;
        for _ in 0..100 {
            let by_cfg = cfg_schedule.configuration_for_period(&mut cfg_acc);
            let by_id = id_schedule.id_for_period(&mut id_acc);
            assert_eq!(by_cfg, cfg(vec![by_id.index()]));
        }
        let degenerate = IdSchedule::bracketing(ConfigId(1), 2.0, ConfigId(0), 2.0, 3.0);
        assert_eq!(degenerate, IdSchedule::steady(ConfigId(1), 2.0));
    }

    #[test]
    fn period_assignment_interleaves_rather_than_bunching() {
        let s = ActuationSchedule::bracketing(cfg(vec![1]), 2.0, cfg(vec![0]), 1.0, 1.5);
        let mut acc = 0.0;
        let sequence: Vec<_> = (0..6).map(|_| s.configuration_for_period(&mut acc)).collect();
        // With a 0.5 fraction the schedule must alternate, not bunch.
        assert_ne!(sequence[0], sequence[1]);
        assert_ne!(sequence[2], sequence[3]);
    }
}
