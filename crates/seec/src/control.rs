//! Classical and adaptive control elements of the SEEC decision engine.
//!
//! At its lowest level SEEC acts as a classical control system: feedback in
//! the form of heartbeats is used to tune actuators to meet goals (DAC 2012
//! §3.3, citing the CDC 2010 controller). On top of that sits an adaptive
//! layer that keeps the controller calibrated when the application's
//! behaviour drifts: a one-dimensional Kalman filter tracks the heart rate
//! the application would achieve in the nominal configuration, so the
//! controller always reasons about *speedup relative to nominal* rather than
//! absolute rates.

use serde::{Deserialize, Serialize};

/// A discrete-time PI controller producing the speedup required to drive the
/// observed heart rate to the target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    integral: f64,
    /// Per-period retention factor of the integral state (1.0 = a classical,
    /// perfectly-retaining integral). See [`PiController::with_leak`].
    leak: f64,
    /// Bounds on the speedup the controller may request.
    min_output: f64,
    max_output: f64,
}

impl PiController {
    /// Creates a controller with the given gains and output range
    /// `[min_output, max_output]`.
    ///
    /// # Panics
    ///
    /// Panics if the output range is empty or the bounds are not positive.
    pub fn new(kp: f64, ki: f64, min_output: f64, max_output: f64) -> Self {
        assert!(
            min_output > 0.0 && max_output >= min_output,
            "output range must be positive and non-empty"
        );
        PiController {
            kp,
            ki,
            integral: 0.0,
            leak: 1.0,
            min_output,
            max_output,
        }
    }

    /// Makes the integral *leaky*: each decision period the accumulated
    /// integral is multiplied by `leak` before the new error is added, so
    /// error mass absorbed during a transient decays geometrically (time
    /// constant `-1/ln(leak)` periods) instead of having to be unwound by
    /// errors of the opposite sign. The default of 1.0 is the classical
    /// perfectly-retaining integral and is **bit-for-bit** the historical
    /// behaviour (`x * 1.0` is an identity for every float, `-0.0` and
    /// `NaN` included), so existing figure outputs are unchanged unless a
    /// caller opts in.
    ///
    /// The steady-state trade-off: a leaky integral can no longer hold an
    /// arbitrary constant offset (its fixed point is `error / (1 - leak)`
    /// rather than unbounded), so `leak` should stay close to 1 — the
    /// controller here already carries the feed-forward `target/base_rate`
    /// term, leaving the integral only modelling residue to sweep up.
    ///
    /// # Panics
    ///
    /// Panics unless `leak` is in `(0, 1]`.
    pub fn with_leak(mut self, leak: f64) -> Self {
        assert!(
            leak > 0.0 && leak <= 1.0,
            "integral leak must be in (0, 1], got {leak}"
        );
        self.leak = leak;
        self
    }

    /// The per-period integral retention factor (1.0 = no leak).
    pub fn leak(&self) -> f64 {
        self.leak
    }

    /// A tuning that works well for heart-rate tracking: unity proportional
    /// response with a slow integral term, allowed to request speedups
    /// between 1/64 and 64.
    pub fn default_tuning() -> Self {
        PiController::new(1.0, 0.2, 1.0 / 64.0, 64.0)
    }

    /// Advances the controller one decision period.
    ///
    /// `target` and `observed` are heart rates; `base_rate` is the current
    /// estimate of the rate the application achieves in the nominal
    /// configuration (from the adaptive layer). The return value is the
    /// speedup over nominal the next period should apply.
    pub fn next_speedup(&mut self, target: f64, observed: f64, base_rate: f64) -> f64 {
        if base_rate <= 0.0 || target <= 0.0 {
            return 1.0;
        }
        // Error in units of "speedups over nominal". The leak multiplies
        // first, so saturation's anti-windup undo below leaves exactly the
        // decayed prior state.
        let error = (target - observed) / base_rate;
        self.integral = self.integral * self.leak + error;
        // Feed-forward term: the speedup that would hit the target if the
        // model were perfect, plus PI correction of residual error.
        let feed_forward = target / base_rate;
        let output = feed_forward + self.kp * error * 0.0 + self.ki * self.integral;
        // (The proportional term is folded into the feed-forward: the error
        // is already the difference between the feed-forward and observed
        // speedups, so a separate kp term would double-count. kp is kept for
        // callers who tune the controller differently.)
        let clamped = output.clamp(self.min_output, self.max_output);
        if clamped != output {
            // Anti-windup: stop integrating when saturated.
            self.integral -= error;
        }
        clamped
    }

    /// Resets the integral state (used when the goal changes).
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }
}

impl Default for PiController {
    fn default() -> Self {
        PiController::default_tuning()
    }
}

/// A one-dimensional Kalman filter estimating the application's heart rate
/// in the nominal configuration.
///
/// Observations are `observed_rate / applied_speedup`: what the application
/// would have achieved at nominal, according to the current action model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanEstimator {
    estimate: f64,
    variance: f64,
    /// Process noise: how quickly the underlying application speed drifts.
    pub process_noise: f64,
    /// Measurement noise: how noisy individual heart-rate windows are.
    pub measurement_noise: f64,
    initialised: bool,
}

impl KalmanEstimator {
    /// Creates an estimator with the given noise parameters.
    pub fn new(process_noise: f64, measurement_noise: f64) -> Self {
        KalmanEstimator {
            estimate: 0.0,
            variance: 1.0,
            process_noise,
            measurement_noise,
            initialised: false,
        }
    }

    /// Noise settings suited to window-averaged heart rates.
    pub fn default_tuning() -> Self {
        KalmanEstimator::new(0.01, 0.1)
    }

    /// Whether at least one observation has been absorbed.
    pub fn is_initialised(&self) -> bool {
        self.initialised
    }

    /// Current estimate of the nominal-configuration heart rate.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Current estimate variance (relative).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Absorbs one observation of the nominal-equivalent heart rate.
    pub fn observe(&mut self, nominal_rate: f64) -> f64 {
        if !nominal_rate.is_finite() || nominal_rate <= 0.0 {
            return self.estimate;
        }
        if !self.initialised {
            self.estimate = nominal_rate;
            self.variance = self.measurement_noise;
            self.initialised = true;
            return self.estimate;
        }
        // Predict.
        let predicted_variance = self.variance + self.process_noise;
        // Update.
        let gain = predicted_variance / (predicted_variance + self.measurement_noise);
        self.estimate += gain * (nominal_rate - self.estimate);
        self.variance = (1.0 - gain) * predicted_variance;
        self.estimate
    }
}

impl Default for KalmanEstimator {
    fn default() -> Self {
        KalmanEstimator::default_tuning()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_requests_feed_forward_speedup_when_on_model() {
        let mut pi = PiController::default_tuning();
        // Base rate 10, target 20, currently observing exactly 20.
        let speedup = pi.next_speedup(20.0, 20.0, 10.0);
        assert!((speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn controller_raises_request_when_underperforming() {
        let mut pi = PiController::default_tuning();
        let mut request = 0.0;
        for _ in 0..10 {
            request = pi.next_speedup(20.0, 12.0, 10.0);
        }
        assert!(request > 2.0, "persistent shortfall must raise the request");
    }

    #[test]
    fn controller_lowers_request_when_overshooting() {
        let mut pi = PiController::default_tuning();
        let mut request = f64::MAX;
        for _ in 0..10 {
            request = pi.next_speedup(20.0, 30.0, 10.0);
        }
        assert!(request < 2.0, "overshoot must lower the request");
    }

    #[test]
    fn controller_output_is_clamped_with_anti_windup() {
        let mut pi = PiController::new(1.0, 1.0, 0.5, 4.0);
        for _ in 0..100 {
            let out = pi.next_speedup(100.0, 1.0, 1.0);
            assert!(out <= 4.0);
        }
        // After the huge shortfall disappears the controller recovers quickly
        // because the integral did not wind up.
        let out = pi.next_speedup(2.0, 2.0, 1.0);
        assert!(out <= 4.0);
        pi.reset();
        assert_eq!(pi.next_speedup(2.0, 2.0, 1.0), 2.0);
    }

    #[test]
    fn controller_handles_degenerate_inputs() {
        let mut pi = PiController::default_tuning();
        assert_eq!(pi.next_speedup(10.0, 5.0, 0.0), 1.0);
        assert_eq!(pi.next_speedup(0.0, 5.0, 10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "output range")]
    fn empty_output_range_panics() {
        let _ = PiController::new(1.0, 1.0, 2.0, 1.0);
    }

    #[test]
    fn unit_leak_is_bit_identical_to_the_historical_integral() {
        let mut classic = PiController::default_tuning();
        let mut unit_leak = PiController::default_tuning().with_leak(1.0);
        assert_eq!(unit_leak.leak(), 1.0);
        // A jagged trace with saturation episodes: outputs must agree
        // bit-for-bit at every step.
        for step in 0..200 {
            let observed = 5.0 + 20.0 * ((step % 17) as f64 - 8.0).abs();
            let a = classic.next_speedup(40.0, observed, 10.0);
            let b = unit_leak.next_speedup(40.0, observed, 10.0);
            assert!(a.to_bits() == b.to_bits(), "step {step}: {a} vs {b}");
        }
    }

    #[test]
    fn leaky_integral_recovers_faster_after_a_transient() {
        // Both controllers absorb a long shortfall transient, then the
        // plant returns to the target. The classical integral must unwind
        // its accumulated mass through overshoot; the leaky one forgets it
        // geometrically and re-converges to the feed-forward request first.
        let run = |leak: f64| {
            let mut pi = PiController::new(1.0, 0.05, 1.0 / 64.0, 64.0).with_leak(leak);
            for _ in 0..40 {
                pi.next_speedup(20.0, 12.0, 10.0); // transient: 40% short
            }
            // Settled again: the right answer is the feed-forward 2.0.
            let mut settled_at = None;
            let mut request = 0.0;
            for step in 0..200 {
                request = pi.next_speedup(20.0, 20.0, 10.0);
                if settled_at.is_none() && (request - 2.0).abs() < 0.05 {
                    settled_at = Some(step);
                }
            }
            (settled_at.unwrap_or(usize::MAX), request)
        };
        let (classic_settle, _) = run(1.0);
        let (leaky_settle, leaky_final) = run(0.9);
        assert!(
            leaky_settle < classic_settle,
            "leaky should settle sooner: {leaky_settle} vs {classic_settle}"
        );
        assert!((leaky_final - 2.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "leak")]
    fn out_of_range_leak_panics() {
        let _ = PiController::default_tuning().with_leak(0.0);
    }

    #[test]
    fn kalman_converges_to_a_constant_signal() {
        let mut k = KalmanEstimator::default_tuning();
        assert!(!k.is_initialised());
        for _ in 0..50 {
            k.observe(42.0);
        }
        assert!(k.is_initialised());
        assert!((k.estimate() - 42.0).abs() < 1e-6);
        assert!(k.variance() < 0.1);
    }

    #[test]
    fn kalman_tracks_a_phase_change() {
        let mut k = KalmanEstimator::default_tuning();
        for _ in 0..30 {
            k.observe(10.0);
        }
        for _ in 0..60 {
            k.observe(30.0);
        }
        assert!((k.estimate() - 30.0).abs() < 2.0, "estimate must follow the new phase");
    }

    #[test]
    fn kalman_smooths_noise() {
        let mut k = KalmanEstimator::default_tuning();
        let noisy = [9.0, 11.0, 10.5, 9.5, 10.0, 10.2, 9.8, 10.1, 9.9, 10.0];
        for value in noisy {
            k.observe(value);
        }
        assert!((k.estimate() - 10.0).abs() < 0.5);
    }

    #[test]
    fn kalman_ignores_invalid_observations() {
        let mut k = KalmanEstimator::default_tuning();
        k.observe(10.0);
        let before = k.estimate();
        k.observe(f64::NAN);
        k.observe(-5.0);
        k.observe(0.0);
        assert_eq!(k.estimate(), before);
    }
}
