//! Error types reported by the SEEC runtime.

use std::error::Error;
use std::fmt;

use actuation::ActuationError;

/// Errors reported by the SEEC runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SeecError {
    /// The runtime was built without any actuators to control.
    NoActuators,
    /// The observed application registered no performance goal and no
    /// explicit target was supplied.
    NoGoal,
    /// Applying a configuration to an actuator failed.
    Actuation(ActuationError),
    /// A runtime parameter was invalid.
    InvalidParameter(String),
}

impl fmt::Display for SeecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeecError::NoActuators => write!(f, "no actuators registered with the runtime"),
            SeecError::NoGoal => {
                write!(f, "the application registered no performance goal to meet")
            }
            SeecError::Actuation(err) => write!(f, "actuation failed: {err}"),
            SeecError::InvalidParameter(reason) => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for SeecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SeecError::Actuation(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ActuationError> for SeecError {
    fn from(err: ActuationError) -> Self {
        SeecError::Actuation(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SeecError::NoActuators.to_string().contains("actuators"));
        assert!(SeecError::NoGoal.to_string().contains("goal"));
        assert!(SeecError::InvalidParameter("x".into()).to_string().contains('x'));
    }

    #[test]
    fn actuation_errors_convert_and_chain() {
        let inner = ActuationError::InvalidSpec("empty".into());
        let err: SeecError = inner.clone().into();
        assert_eq!(err, SeecError::Actuation(inner));
        assert!(err.source().is_some());
        assert!(SeecError::NoGoal.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SeecError>();
    }
}
